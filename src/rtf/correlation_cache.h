#ifndef CROWDRTSE_RTF_CORRELATION_CACHE_H_
#define CROWDRTSE_RTF_CORRELATION_CACHE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rtf/correlation_table.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace crowdrtse::rtf {

/// Behaviour knobs of the Gamma_R cache.
struct CorrelationCacheOptions {
  /// Upper bound, in bytes of CorrelationTable::MemoryBytes(), on the
  /// resident tables. 0 (the default) disables eviction, preserving the
  /// grow-without-bound behaviour of the pre-cache code. When the budget is
  /// smaller than a single table, that table is still kept (evicting the
  /// only copy would just thrash).
  std::size_t memory_budget_bytes = 0;

  /// Directory for warm-start persistence. When non-empty, every computed
  /// table is saved as `<persist_dir>/gamma_slot_<slot>.bin` and cache
  /// misses first try to reload from there (see also WarmStart), so a
  /// process restart does not re-pay one Dijkstra per road per slot.
  /// Empty (the default) disables persistence.
  std::string persist_dir;

  /// Number of lock shards the per-slot entries spread over. More shards
  /// means less contention on the entry-lookup step (the per-slot state
  /// itself is individually locked regardless).
  int num_shards = 16;

  /// Threads for the per-source Dijkstra fan-out inside one table
  /// computation. 0 means hardware concurrency; 1 disables the fan-out
  /// pool entirely.
  int fanout_threads = 0;

  /// When > 0, warm-loaded files whose road count differs are rejected
  /// (they were computed against a different network) and recomputed.
  int expected_num_roads = 0;

  /// Expected CorrelationTable::hop_radius() of warm-loaded files: 0 for
  /// dense tables, C for the sparse C-hop-bounded closure. Files computed
  /// under a different radius are rejected and recomputed — a dense table
  /// masquerading as a sparse one (or a wider/narrower radius) would
  /// silently change OCS candidate pruning.
  int expected_hop_radius = 0;
};

/// Concurrent, memory-budgeted, persistent cache of per-slot Gamma_R
/// closures. This replaces the map-under-one-global-mutex in CrowdRtse: a
/// cold-slot computation (~one Dijkstra per road, n^2 doubles) no longer
/// stalls queries for other slots.
///
///   - Sharded per-slot locking: every slot has its own entry mutex; a
///     lookup touches one shard map lock (briefly) plus that entry lock.
///   - Singleflight compute: concurrent first touches of the *same* slot
///     coalesce onto one computation — the first arrival computes, the rest
///     wait on the entry's condition variable; other slots never block.
///   - Dijkstra fan-out: the compute callback is handed the cache's
///     util::ThreadPool when it is free (the pool runs one ParallelFor at a
///     time, so concurrent cold slots beyond the first compute serially in
///     their own thread rather than queue on the pool).
///   - LRU eviction: tables are evicted least-recently-used when resident
///     bytes exceed the budget. Lookups hand out shared_ptrs, so a reader
///     holding a table keeps it alive across eviction.
///   - Warm persistence: computed tables are saved to persist_dir and
///     reloaded on miss or eagerly via WarmStart.
///
/// Thread-safe for any number of concurrent GetOrCompute/Invalidate/stats
/// callers. The compute callback runs outside all cache locks and may be
/// invoked concurrently for *different* slots — it must be safe for that
/// (pure functions of an immutable model are; see CrowdRtse for the CCD
/// caveat).
class CorrelationCache {
 public:
  /// Result handle: shared ownership so eviction can never invalidate a
  /// table a reader is still using.
  using TablePtr = std::shared_ptr<const CorrelationTable>;

  /// Computes the table for `slot`. `fanout` is the cache's Dijkstra pool
  /// when available, nullptr otherwise (compute serially then).
  using ComputeFn = std::function<util::Result<CorrelationTable>(
      int slot, util::ThreadPool* fanout)>;

  /// Point-in-time cache statistics (counters are monotonic since
  /// construction; resident_* reflect the current moment).
  struct StatsSnapshot {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t coalesced = 0;        // same-slot first touches that waited
    int64_t evictions = 0;
    int64_t warm_loads = 0;       // misses satisfied from persist_dir
    int64_t persist_failures = 0; // unreadable/mismatched/unwritable files
    int64_t patches = 0;           // PatchInPlace calls that patched
    int64_t patch_fallbacks = 0;   // PatchInPlace calls that invalidated
    int64_t resident_tables = 0;
    int64_t resident_bytes = 0;
    util::metrics::LatencySnapshot compute_latency;

    /// One-line counters plus the compute-latency distribution.
    std::string ToString() const;
  };

  explicit CorrelationCache(CorrelationCacheOptions options = {});
  /// Calls Drain(): destruction while another thread is mid-compute would
  /// otherwise tear the Dijkstra fan-out pool down under that thread.
  ~CorrelationCache();

  CorrelationCache(const CorrelationCache&) = delete;
  CorrelationCache& operator=(const CorrelationCache&) = delete;

  /// Blocks until no GetOrCompute slow path (warm load or compute) is in
  /// flight. Callers must still stop issuing new lookups themselves —
  /// Drain does not reject them, it only waits out the current ones; the
  /// serving layer's QueryEngine::Drain provides the admission stop.
  void Drain();

  /// Returns the cached table for `slot`, warm-loading or computing it via
  /// `compute` on a miss. Errors are returned to every coalesced waiter but
  /// not cached — the next call retries.
  util::Result<TablePtr> GetOrCompute(int slot, const ComputeFn& compute);

  /// Drops the cached table for `slot` (and its persisted file), e.g. after
  /// the model parameters it was computed from changed. No-op when absent.
  /// A compute already in flight for the slot is not interrupted, but its
  /// result is discarded (not cached, not persisted) and recomputed from
  /// the post-invalidation state — stale tables never resurface.
  void Invalidate(int slot);

  /// What a PatchInPlace attempt did.
  enum class PatchOutcome {
    kPatched,      // resident table transformed and reinstalled
    kInvalidated,  // nothing usable to patch (absent table, in-flight
                   // compute, or a concurrent Invalidate won): the entry is
                   // invalidated and the next lookup recomputes in full
    kError,        // the patch function failed; entry left invalidated
  };

  /// Transforms the resident table for `slot` into its successor, e.g. an
  /// incremental Gamma_R refresh after CCD changed a few parameters.
  using PatchFn = std::function<util::Result<CorrelationTable>(
      const CorrelationTable& current, util::ThreadPool* fanout)>;

  /// Invalidate-with-a-shortcut: semantically equivalent to Invalidate
  /// followed by the next GetOrCompute, but the new table is derived from
  /// the resident one by `patch` (rows-only recompute) instead of from
  /// scratch. The generation is bumped exactly as Invalidate does — any
  /// compute in flight for the slot discards its (stale) result — and
  /// concurrent lookups park on the singleflight gate until the patched
  /// table is installed, so the pre-patch table is never served once this
  /// call has begun. Falls back to plain Invalidate when there is nothing
  /// resident to patch.
  PatchOutcome PatchInPlace(int slot, const PatchFn& patch);

  /// Eagerly loads persisted tables for slots [0, num_slots) until the
  /// memory budget is reached. Returns the number of tables loaded.
  int WarmStart(int num_slots);

  StatsSnapshot stats() const;

  const CorrelationCacheOptions& options() const { return options_; }

  /// `<persist_dir>/gamma_slot_<slot>.bin`; empty when persistence is off.
  std::string PersistPath(int slot) const;

 private:
  struct Entry {
    std::mutex mutex;
    std::condition_variable computed;
    bool computing = false;
    /// Bumped by Invalidate so an in-flight compute started against the
    /// old parameters discards its result instead of resurrecting them.
    uint64_t generation = 0;
    util::Status error;  // outcome handed to coalesced waiters (never OK
                         // while table is null after a finished compute)
    TablePtr table;
  };
  struct Shard {
    std::mutex mutex;
    std::map<int, std::shared_ptr<Entry>> entries;
  };
  struct LruNode {
    std::list<int>::iterator position;
    std::size_t bytes = 0;
  };

  std::shared_ptr<Entry> EntryFor(int slot);
  /// Moves `slot` to the LRU front if still resident.
  void Touch(int slot);
  /// Accounts a newly resident table and evicts LRU victims over budget.
  void Publish(int slot, const TablePtr& table);
  /// Tries persist_dir; returns nullptr when absent/invalid.
  TablePtr TryLoadPersisted(int slot);
  void Persist(int slot, const CorrelationTable& table);

  CorrelationCacheOptions options_;
  std::unique_ptr<Shard[]> shards_;

  // LRU bookkeeping; never held together with an entry mutex (Publish and
  // Touch run after the entry lock is released, eviction takes each
  // victim's entry lock only after the LRU lock is dropped).
  mutable std::mutex lru_mutex_;
  std::list<int> lru_;  // front = most recently used
  std::map<int, LruNode> lru_index_;
  std::size_t resident_bytes_ = 0;

  // Dijkstra fan-out pool, created lazily and try-locked per compute: the
  // pool runs one ParallelFor at a time, so a second concurrent cold slot
  // computes serially instead of blocking on the first.
  std::mutex fanout_mutex_;
  std::unique_ptr<util::ThreadPool> fanout_;

  // Drain bookkeeping: slow paths in flight (see Drain()).
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  int64_t computes_in_flight_ = 0;

  util::metrics::Counter hits_;
  util::metrics::Counter misses_;
  util::metrics::Counter coalesced_;
  util::metrics::Counter evictions_;
  util::metrics::Counter warm_loads_;
  util::metrics::Counter persist_failures_;
  util::metrics::Counter patches_;
  util::metrics::Counter patch_fallbacks_;
  util::metrics::LatencyHistogram compute_latency_;
};

}  // namespace crowdrtse::rtf

#endif  // CROWDRTSE_RTF_CORRELATION_CACHE_H_
