#include "rtf/moment_accumulator.h"

#include <algorithm>

namespace crowdrtse::rtf {

MomentAccumulator::MomentAccumulator(const graph::Graph& graph,
                                     int num_slots, int slot_window,
                                     double min_sigma)
    : graph_(graph),
      num_slots_(num_slots),
      slot_window_(std::max(0, slot_window)),
      min_sigma_(min_sigma),
      node_stats_(static_cast<size_t>(num_slots) *
                  static_cast<size_t>(graph.num_roads())),
      edge_stats_(static_cast<size_t>(num_slots) *
                  static_cast<size_t>(graph.num_edges())) {}

util::Status MomentAccumulator::AbsorbDay(const traffic::DayMatrix& day) {
  if (day.num_roads() != graph_.num_roads()) {
    return util::Status::InvalidArgument(
        "day matrix road count does not match the graph");
  }
  if (day.num_slots() != num_slots_) {
    return util::Status::InvalidArgument("day matrix slot count mismatch");
  }
  // Each observation of source slot s contributes to every pooled target
  // slot within the window (the transpose of the pooling in the batch
  // estimator, which yields identical sums).
  for (int s = 0; s < num_slots_; ++s) {
    const double* speeds = day.SlotPtr(s);
    for (int w = -slot_window_; w <= slot_window_; ++w) {
      const int target = (s + w % num_slots_ + num_slots_) % num_slots_;
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        node_stats_[NodeIndex(target, r)].Add(speeds[r]);
      }
      for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
        const auto [i, j] = graph_.EdgeEndpoints(e);
        edge_stats_[EdgeIndex(target, e)].Add(speeds[i], speeds[j]);
      }
    }
  }
  ++num_days_;
  return util::Status::Ok();
}

util::Status MomentAccumulator::AbsorbHistory(
    const traffic::HistoryStore& history) {
  if (history.num_slots() != num_slots_) {
    return util::Status::InvalidArgument("history slot count mismatch");
  }
  if (history.num_roads() != graph_.num_roads()) {
    return util::Status::InvalidArgument("history road count mismatch");
  }
  traffic::DayMatrix day(num_slots_, graph_.num_roads());
  for (int d = 0; d < history.num_days(); ++d) {
    for (int slot = 0; slot < num_slots_; ++slot) {
      double* speeds = day.SlotPtr(slot);
      for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
        speeds[r] = history.At(d, slot, r);
      }
    }
    CROWDRTSE_RETURN_IF_ERROR(AbsorbDay(day));
  }
  return util::Status::Ok();
}

util::Result<RtfModel> MomentAccumulator::EmitModel() const {
  if (num_days_ < 2) {
    return util::Status::FailedPrecondition(
        "need at least 2 absorbed days to estimate variances");
  }
  RtfModel model(graph_, num_slots_);
  for (int slot = 0; slot < num_slots_; ++slot) {
    for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
      const util::RunningStats& stats = node_stats_[NodeIndex(slot, r)];
      model.SetMu(slot, r, stats.Mean());
      model.SetSigma(slot, r, std::max(stats.StdDev(), min_sigma_));
    }
    for (graph::EdgeId e = 0; e < graph_.num_edges(); ++e) {
      const double rho = std::clamp(
          edge_stats_[EdgeIndex(slot, e)].Correlation(), RtfModel::kMinRho,
          RtfModel::kMaxRho);
      model.SetRho(slot, e, rho);
    }
  }
  model.ClampParameters();
  return model;
}

}  // namespace crowdrtse::rtf
