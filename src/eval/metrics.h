#ifndef CROWDRTSE_EVAL_METRICS_H_
#define CROWDRTSE_EVAL_METRICS_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::eval {

/// Absolute percentage error |est - truth| / truth (paper §VII-C metric).
/// Truth at or below zero yields 0 contribution guarded by the caller.
double AbsolutePercentageError(double estimate, double truth);

/// Histogram of APE values over fixed bins — the paper's DAPE plot.
struct DapeHistogram {
  /// Upper edges of the bins; the last bin is open-ended.
  std::vector<double> bin_edges;
  /// Fraction of test cases per bin (sums to 1 unless empty).
  std::vector<double> fractions;
  size_t total_cases = 0;
};

/// Aggregate quality of one estimation run over the queried roads.
struct QualityMetrics {
  double mape = 0.0;      // mean APE
  double fer = 0.0;       // fraction of cases with APE > threshold
  double median_ape = 0.0;
  size_t cases = 0;
};

/// The paper's false-estimation threshold phi.
inline constexpr double kDefaultFerThreshold = 0.2;

/// Computes MAPE / FER / median APE of `estimates` against `truth` over
/// `roads`. Roads whose truth is <= 0 are skipped (undefined APE).
util::Result<QualityMetrics> ComputeQuality(
    const std::vector<double>& estimates, const std::vector<double>& truth,
    const std::vector<graph::RoadId>& roads,
    double fer_threshold = kDefaultFerThreshold);

/// DAPE over default bins 0..0.5 step 0.05 plus an open tail.
util::Result<DapeHistogram> ComputeDape(
    const std::vector<double>& estimates, const std::vector<double>& truth,
    const std::vector<graph::RoadId>& roads);

/// Accumulates quality metrics across repeated trials (different query
/// slots / days) and reports their means.
class QualityAccumulator {
 public:
  void Add(const QualityMetrics& metrics);
  QualityMetrics Mean() const;
  size_t trials() const { return trials_; }

 private:
  double mape_sum_ = 0.0;
  double fer_sum_ = 0.0;
  double median_sum_ = 0.0;
  size_t case_sum_ = 0;
  size_t trials_ = 0;
};

}  // namespace crowdrtse::eval

#endif  // CROWDRTSE_EVAL_METRICS_H_
