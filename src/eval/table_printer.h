#ifndef CROWDRTSE_EVAL_TABLE_PRINTER_H_
#define CROWDRTSE_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace crowdrtse::eval {

/// Column-aligned ASCII tables for the bench harness output — each bench
/// prints the same rows/series its paper figure or table reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: numeric row, fixed precision.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int precision = 4);

  /// Renders the aligned table.
  std::string ToString() const;

  /// Renders as CSV (for plotting the bench series externally).
  std::string ToCsv() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crowdrtse::eval

#endif  // CROWDRTSE_EVAL_TABLE_PRINTER_H_
