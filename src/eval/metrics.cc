#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace crowdrtse::eval {

double AbsolutePercentageError(double estimate, double truth) {
  return std::fabs(estimate - truth) / truth;
}

namespace {

util::Result<std::vector<double>> CollectApes(
    const std::vector<double>& estimates, const std::vector<double>& truth,
    const std::vector<graph::RoadId>& roads) {
  if (estimates.size() != truth.size()) {
    return util::Status::InvalidArgument(
        "estimate/truth vectors differ in length");
  }
  std::vector<double> apes;
  apes.reserve(roads.size());
  for (graph::RoadId r : roads) {
    if (r < 0 || static_cast<size_t>(r) >= truth.size()) {
      return util::Status::InvalidArgument("road out of range");
    }
    const double t = truth[static_cast<size_t>(r)];
    if (t <= 0.0) continue;  // APE undefined
    apes.push_back(
        AbsolutePercentageError(estimates[static_cast<size_t>(r)], t));
  }
  return apes;
}

}  // namespace

util::Result<QualityMetrics> ComputeQuality(
    const std::vector<double>& estimates, const std::vector<double>& truth,
    const std::vector<graph::RoadId>& roads, double fer_threshold) {
  util::Result<std::vector<double>> apes =
      CollectApes(estimates, truth, roads);
  if (!apes.ok()) return apes.status();
  QualityMetrics metrics;
  metrics.cases = apes->size();
  if (apes->empty()) return metrics;
  double sum = 0.0;
  size_t false_count = 0;
  for (double ape : *apes) {
    sum += ape;
    if (ape > fer_threshold) ++false_count;
  }
  metrics.mape = sum / static_cast<double>(apes->size());
  metrics.fer =
      static_cast<double>(false_count) / static_cast<double>(apes->size());
  metrics.median_ape = util::Median(*apes);
  return metrics;
}

util::Result<DapeHistogram> ComputeDape(
    const std::vector<double>& estimates, const std::vector<double>& truth,
    const std::vector<graph::RoadId>& roads) {
  util::Result<std::vector<double>> apes =
      CollectApes(estimates, truth, roads);
  if (!apes.ok()) return apes.status();
  DapeHistogram hist;
  for (double edge = 0.05; edge <= 0.501; edge += 0.05) {
    hist.bin_edges.push_back(edge);
  }
  hist.fractions.assign(hist.bin_edges.size() + 1, 0.0);
  hist.total_cases = apes->size();
  if (apes->empty()) return hist;
  for (double ape : *apes) {
    size_t bin = hist.bin_edges.size();  // open tail by default
    for (size_t i = 0; i < hist.bin_edges.size(); ++i) {
      if (ape <= hist.bin_edges[i]) {
        bin = i;
        break;
      }
    }
    hist.fractions[bin] += 1.0;
  }
  for (double& f : hist.fractions) {
    f /= static_cast<double>(hist.total_cases);
  }
  return hist;
}

void QualityAccumulator::Add(const QualityMetrics& metrics) {
  mape_sum_ += metrics.mape;
  fer_sum_ += metrics.fer;
  median_sum_ += metrics.median_ape;
  case_sum_ += metrics.cases;
  ++trials_;
}

QualityMetrics QualityAccumulator::Mean() const {
  QualityMetrics mean;
  if (trials_ == 0) return mean;
  mean.mape = mape_sum_ / static_cast<double>(trials_);
  mean.fer = fer_sum_ / static_cast<double>(trials_);
  mean.median_ape = median_sum_ / static_cast<double>(trials_);
  mean.cases = case_sum_;
  return mean;
}

}  // namespace crowdrtse::eval
