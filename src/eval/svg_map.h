#ifndef CROWDRTSE_EVAL_SVG_MAP_H_
#define CROWDRTSE_EVAL_SVG_MAP_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::eval {

/// Options of the SVG map renderer.
struct SvgMapOptions {
  int width_px = 900;
  int height_px = 900;
  double node_radius_px = 4.0;
  /// Road markers for probed roads are drawn larger with a ring.
  double probe_radius_px = 7.0;
  std::string title;
};

/// Renders a traffic snapshot as an SVG "city map": roads are dots placed
/// at their synthetic coordinates, adjacencies are lines, and each road is
/// coloured by its speed ratio estimate/expected (green = free flow,
/// yellow = slow, red = blocked). Probed roads get a ring marker. Useful
/// for eyeballing what GSP inferred between the probes.
///
/// `positions` are unit-square coordinates (graph::RoadNetwork exports
/// them); `speed_ratio[r]` should be estimate/expected clamped by the
/// caller only if desired — the renderer clamps to [0, 1.2] for colour.
util::Result<std::string> RenderSvgMap(
    const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const std::vector<double>& speed_ratio,
    const std::vector<graph::RoadId>& probed_roads,
    const SvgMapOptions& options = {});

/// Renders and writes to `path`.
util::Status WriteSvgMap(
    const std::string& path, const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const std::vector<double>& speed_ratio,
    const std::vector<graph::RoadId>& probed_roads,
    const SvgMapOptions& options = {});

/// The colour used for a speed ratio, exposed for tests: hex "#rrggbb".
std::string SpeedRatioColor(double ratio);

}  // namespace crowdrtse::eval

#endif  // CROWDRTSE_EVAL_SVG_MAP_H_
