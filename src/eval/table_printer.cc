#include "eval/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowdrtse::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CROWDRTSE_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(util::FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "  ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing pad.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) rule += "  ";
    rule.append(widths[i], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  util::CsvTable table;
  table.header = header_;
  table.rows = rows_;
  return util::ToCsv(table);
}

void TablePrinter::Print() const {
  const std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

}  // namespace crowdrtse::eval
