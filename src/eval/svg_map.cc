#include "eval/svg_map.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace crowdrtse::eval {

namespace {

std::string HexByte(int value) {
  char buffer[3];
  std::snprintf(buffer, sizeof(buffer), "%02x",
                std::clamp(value, 0, 255));
  return buffer;
}

}  // namespace

std::string SpeedRatioColor(double ratio) {
  // Piecewise red -> yellow -> green over ratio 0.3 .. 1.0.
  const double t =
      std::clamp((std::clamp(ratio, 0.0, 1.2) - 0.3) / 0.7, 0.0, 1.0);
  int red;
  int green;
  if (t < 0.5) {
    red = 220;
    green = static_cast<int>(2.0 * t * 190);
  } else {
    red = static_cast<int>((1.0 - 2.0 * (t - 0.5)) * 220);
    green = 190;
  }
  return "#" + HexByte(red) + HexByte(green) + HexByte(40);
}

util::Result<std::string> RenderSvgMap(
    const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const std::vector<double>& speed_ratio,
    const std::vector<graph::RoadId>& probed_roads,
    const SvgMapOptions& options) {
  const size_t n = static_cast<size_t>(graph.num_roads());
  if (positions.size() != n) {
    return util::Status::InvalidArgument(
        "positions must cover every road");
  }
  if (speed_ratio.size() != n) {
    return util::Status::InvalidArgument(
        "speed ratios must cover every road");
  }
  std::vector<bool> probed(n, false);
  for (graph::RoadId r : probed_roads) {
    if (r < 0 || static_cast<size_t>(r) >= n) {
      return util::Status::InvalidArgument("probed road out of range");
    }
    probed[static_cast<size_t>(r)] = true;
  }

  const double margin = 20.0;
  const auto px = [&](double x) {
    return margin + x * (options.width_px - 2.0 * margin);
  };
  const auto py = [&](double y) {
    return margin + y * (options.height_px - 2.0 * margin);
  };

  std::string svg;
  char line[512];
  std::snprintf(line, sizeof(line),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
                options.width_px, options.height_px, options.width_px,
                options.height_px);
  svg += line;
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"#101418\"/>\n";
  if (!options.title.empty()) {
    std::snprintf(line, sizeof(line),
                  "<text x=\"%f\" y=\"%f\" fill=\"#d0d4d8\" "
                  "font-family=\"monospace\" font-size=\"16\">",
                  margin, margin - 4.0);
    svg += line;
    svg += options.title;
    svg += "</text>\n";
  }
  // Adjacencies first, under the road markers.
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    std::snprintf(line, sizeof(line),
                  "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                  "stroke=\"#3a424a\" stroke-width=\"1\"/>\n",
                  px(positions[static_cast<size_t>(a)].first),
                  py(positions[static_cast<size_t>(a)].second),
                  px(positions[static_cast<size_t>(b)].first),
                  py(positions[static_cast<size_t>(b)].second));
    svg += line;
  }
  for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
    const std::string color = SpeedRatioColor(speed_ratio[static_cast<size_t>(r)]);
    const double radius = probed[static_cast<size_t>(r)]
                              ? options.probe_radius_px
                              : options.node_radius_px;
    std::snprintf(line, sizeof(line),
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" "
                  "fill=\"%s\"%s/>\n",
                  px(positions[static_cast<size_t>(r)].first),
                  py(positions[static_cast<size_t>(r)].second), radius,
                  color.c_str(),
                  probed[static_cast<size_t>(r)]
                      ? " stroke=\"#ffffff\" stroke-width=\"1.5\""
                      : "");
    svg += line;
  }
  svg += "</svg>\n";
  return svg;
}

util::Status WriteSvgMap(
    const std::string& path, const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const std::vector<double>& speed_ratio,
    const std::vector<graph::RoadId>& probed_roads,
    const SvgMapOptions& options) {
  util::Result<std::string> svg =
      RenderSvgMap(graph, positions, speed_ratio, probed_roads, options);
  if (!svg.ok()) return svg.status();
  std::ofstream file(path, std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open " + path);
  file << *svg;
  if (!file) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

}  // namespace crowdrtse::eval
