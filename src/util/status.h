#ifndef CROWDRTSE_UTIL_STATUS_H_
#define CROWDRTSE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace crowdrtse::util {

/// Error categories used across the library. Kept deliberately small: the
/// code that can fail is I/O, configuration validation, and numerical
/// routines fed with degenerate inputs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kNumericalError,
  kUnimplemented,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight status object in the RocksDB/Arrow idiom: cheap to return by
/// value, carries a code plus a free-form message. Functions that can fail
/// return `Status` (or `Result<T>` below) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-status holder. On success holds a `T`; on failure holds the
/// error `Status`. Accessing `value()` on an error status aborts, so callers
/// must check `ok()` first (mirrors absl::StatusOr contract).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the success path reads naturally:
  /// `return some_t;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace crowdrtse::util

/// Propagates a non-OK Status out of the current function.
#define CROWDRTSE_RETURN_IF_ERROR(expr)                 \
  do {                                                  \
    ::crowdrtse::util::Status _status = (expr);         \
    if (!_status.ok()) return _status;                  \
  } while (false)

#endif  // CROWDRTSE_UTIL_STATUS_H_
