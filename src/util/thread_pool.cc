#include "util/thread_pool.h"

#include <algorithm>

namespace crowdrtse::util {

namespace {

/// Contiguous chunk [begin, end) of worker `index` out of `parts`.
std::pair<size_t, size_t> Chunk(size_t total, int parts, int index) {
  const size_t base = total / static_cast<size_t>(parts);
  const size_t extra = total % static_cast<size_t>(parts);
  const size_t begin = static_cast<size_t>(index) * base +
                       std::min<size_t>(static_cast<size_t>(index), extra);
  const size_t size = base + (static_cast<size_t>(index) < extra ? 1 : 0);
  return {begin, begin + size};
}

// Spin iterations before a worker parks on the condition variable. GSP
// dispatches thousands of small jobs per propagation; during a burst the
// workers stay hot and dispatch costs ~a hundred nanoseconds, while an
// idle pool still ends up parked instead of burning a core.
constexpr int kSpinLimit = 1 << 14;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutting_down_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    size_t total, const std::function<void(size_t, size_t)>& body) {
  if (total == 0) return;
  if (num_threads_ == 1 || total == 1) {
    body(0, total);
    return;
  }
  body_ = &body;
  total_ = total;
  remaining_.store(num_threads_ - 1, std::memory_order_relaxed);
  job_id_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    work_ready_.notify_all();
  }
  // The caller works on chunk 0, then spins for the stragglers.
  const auto [begin, end] = Chunk(total, num_threads_, 0);
  if (begin < end) body(begin, end);
  int spins = 0;
  while (remaining_.load(std::memory_order_acquire) != 0) {
    if (++spins > kSpinLimit) {
      std::this_thread::yield();
      spins = 0;
    }
  }
  body_ = nullptr;
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t last_job = 0;
  for (;;) {
    // Hot path: spin for the next job.
    uint64_t job = 0;
    int spins = 0;
    for (;;) {
      if (shutting_down_.load(std::memory_order_acquire)) return;
      job = job_id_.load(std::memory_order_acquire);
      if (job != last_job) break;
      if (++spins > kSpinLimit) {
        // Cold path: park until something changes.
        std::unique_lock<std::mutex> lock(mutex_);
        parked_.fetch_add(1, std::memory_order_release);
        work_ready_.wait(lock, [this, last_job] {
          return shutting_down_.load(std::memory_order_acquire) ||
                 job_id_.load(std::memory_order_acquire) != last_job;
        });
        parked_.fetch_sub(1, std::memory_order_release);
        if (shutting_down_.load(std::memory_order_acquire)) return;
        job = job_id_.load(std::memory_order_acquire);
        break;
      }
    }
    last_job = job;
    const auto [begin, end] = Chunk(total_, num_threads_, worker_index);
    if (begin < end) (*body_)(begin, end);
    remaining_.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace crowdrtse::util
