#ifndef CROWDRTSE_UTIL_THREAD_POOL_H_
#define CROWDRTSE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace crowdrtse::util {

/// Fixed-size worker pool for data-parallel loops. Parallel GSP runs one
/// ParallelFor per (BFS level, colour class) per sweep; spawning threads —
/// or even taking a mutex — at that granularity would dominate the
/// propagation itself, so dispatch is lock-free (a job counter the hot
/// workers spin on) and workers only park on a condition variable after an
/// idle spell.
///
/// Not a general task scheduler: one ParallelFor runs at a time, invoked
/// from a single caller thread, which also participates in the work.
class ThreadPool {
 public:
  /// Starts `num_threads - 1` workers (the calling thread is the Nth).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(begin, end) over [0, total) split into contiguous chunks,
  /// one per thread, in parallel; returns when every chunk is done. The
  /// body must not call ParallelFor on the same pool reentrantly.
  void ParallelFor(size_t total,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop(int worker_index);

  int num_threads_;
  std::vector<std::thread> workers_;

  // Job slot: written by ParallelFor before the job_id_ release-increment,
  // read by workers after its acquire-load.
  const std::function<void(size_t, size_t)>* body_ = nullptr;
  size_t total_ = 0;
  std::atomic<uint64_t> job_id_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> shutting_down_{false};

  // Cold-path parking.
  std::atomic<int> parked_{0};
  std::mutex mutex_;
  std::condition_variable work_ready_;
};

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_THREAD_POOL_H_
