#ifndef CROWDRTSE_UTIL_STRING_UTIL_H_
#define CROWDRTSE_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace crowdrtse::util {

/// Splits `text` on `sep` keeping empty pieces.
std::vector<std::string> Split(const std::string& text, char sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& text);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Strict numeric parsers: the whole (trimmed) string must parse.
Result<double> ParseDouble(const std::string& text);
Result<int> ParseInt(const std::string& text);

/// Formats a double with `precision` fractional digits (fixed notation).
std::string FormatDouble(double value, int precision = 4);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(const std::string& text, const std::string& prefix);

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the structured logger, the
/// metrics JSON renderer, and the Chrome trace exporter.
std::string JsonEscape(const std::string& text);

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_STRING_UTIL_H_
