#ifndef CROWDRTSE_UTIL_RNG_H_
#define CROWDRTSE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace crowdrtse::util {

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// All stochastic components of the library (traffic simulation, crowd
/// answer noise, random road costs, random selection baselines) draw from an
/// explicitly seeded `Rng` so experiments are bit-reproducible across runs
/// and platforms. The generator is small (4x64-bit state), fast, and passes
/// BigCrush; we deliberately avoid std::mt19937 whose streams differ subtly
/// across standard-library implementations for the distribution adaptors.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds yield uncorrelated
  /// streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound) using Lemire's multiply-shift
  /// rejection method (unbiased). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns a standard normal deviate (Box-Muller with caching).
  double Normal();

  /// Returns a normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns `k` distinct indices drawn uniformly from [0, n) via partial
  /// Fisher-Yates. If k >= n, returns all n indices (shuffled).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformUint64(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent stream: deterministic function of this generator's
  /// current state, useful to hand child components their own generators.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_RNG_H_
