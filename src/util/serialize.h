#ifndef CROWDRTSE_UTIL_SERIALIZE_H_
#define CROWDRTSE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace crowdrtse::util {

/// Append-only little-endian binary encoder used for model persistence
/// (RTF parameters, correlation tables). The format is
/// length-prefixed and versioned by the callers via magic tags.
class BinaryWriter {
 public:
  void WriteUint32(uint32_t value);
  void WriteUint64(uint64_t value);
  void WriteInt32(int32_t value);
  void WriteDouble(double value);
  void WriteString(const std::string& value);
  void WriteDoubleVector(const std::vector<double>& values);
  void WriteInt32Vector(const std::vector<int32_t>& values);

  const std::string& buffer() const { return buffer_; }

  /// Writes the accumulated buffer to `path`, overwriting.
  Status Flush(const std::string& path) const;

 private:
  void AppendRaw(const void* data, size_t size);

  std::string buffer_;
};

/// Sequential decoder matching BinaryWriter. All reads are bounds-checked
/// and report OutOfRange on truncated input rather than crashing.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Loads the whole file at `path` into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint32_t> ReadUint32();
  Result<uint64_t> ReadUint64();
  Result<int32_t> ReadInt32();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();
  Result<std::vector<int32_t>> ReadInt32Vector();

  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  Status ReadRaw(void* out, size_t size);

  std::string data_;
  size_t offset_ = 0;
};

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_SERIALIZE_H_
