#ifndef CROWDRTSE_UTIL_TIMER_H_
#define CROWDRTSE_UTIL_TIMER_H_

#include <chrono>

namespace crowdrtse::util {

/// Monotonic wall-clock stopwatch used by the experiment harness to report
/// per-phase running times (the paper's ORT metric).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_TIMER_H_
