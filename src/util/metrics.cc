#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace crowdrtse::util::metrics {
namespace {

// Geometric bucket grid: bound(i) = kFirstBoundMs * kGrowth^i. With 48
// buckets this spans 0.001 ms .. ~105 s.
constexpr double kFirstBoundMs = 1e-3;
constexpr double kGrowth = 1.6;

struct BucketTable {
  std::array<double, LatencyHistogram::kNumBuckets> bounds;
  BucketTable() {
    double b = kFirstBoundMs;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      bounds[static_cast<size_t>(i)] = b;
      b *= kGrowth;
    }
  }
};

const BucketTable& Table() {
  static const BucketTable table;
  return table;
}

}  // namespace

std::string LatencySnapshot::ToString() const {
  return "n=" + std::to_string(count) + " mean=" + FormatDouble(mean_ms, 3) +
         "ms p50=" + FormatDouble(p50_ms, 3) + "ms p95=" +
         FormatDouble(p95_ms, 3) + "ms p99=" + FormatDouble(p99_ms, 3) +
         "ms max=" + FormatDouble(max_ms, 3) + "ms";
}

double LatencyHistogram::BucketUpperBound(int i) {
  return Table().bounds[static_cast<size_t>(
      std::clamp(i, 0, kNumBuckets - 1))];
}

void LatencyHistogram::Record(double millis) {
  const double sample = std::max(0.0, millis);
  const auto& bounds = Table().bounds;
  // Buckets are few; branchless binary search via upper_bound.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), sample);
  const size_t index = std::min<size_t>(
      static_cast<size_t>(it - bounds.begin()), kNumBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t micros = static_cast<int64_t>(std::llround(sample * 1e3));
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  int64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(i)];
  }
  LatencySnapshot snap;
  snap.count = total;
  if (total == 0) return snap;
  snap.sum_ms =
      static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) * 1e-3;
  snap.mean_ms = snap.sum_ms / static_cast<double>(total);
  snap.max_ms =
      static_cast<double>(max_micros_.load(std::memory_order_relaxed)) * 1e-3;

  const auto percentile = [&](double q) {
    const double target = q * static_cast<double>(total);
    int64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const int64_t in_bucket = counts[static_cast<size_t>(i)];
      if (in_bucket == 0) continue;
      if (static_cast<double>(cumulative + in_bucket) >= target) {
        const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
        const double upper = std::min(BucketUpperBound(i), snap.max_ms);
        const double fraction =
            (target - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        return lower + std::clamp(fraction, 0.0, 1.0) *
                           (std::max(upper, lower) - lower);
      }
      cumulative += in_bucket;
    }
    return snap.max_ms;
  };
  snap.p50_ms = percentile(0.50);
  snap.p95_ms = percentile(0.95);
  snap.p99_ms = percentile(0.99);
  return snap;
}

}  // namespace crowdrtse::util::metrics
