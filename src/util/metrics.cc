#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace crowdrtse::util::metrics {
namespace {

// Geometric bucket grid: bound(i) = kFirstBoundMs * kGrowth^i. With 48
// buckets this spans 0.001 ms .. ~105 s.
constexpr double kFirstBoundMs = 1e-3;
constexpr double kGrowth = 1.6;

struct BucketTable {
  std::array<double, LatencyHistogram::kNumBuckets> bounds;
  BucketTable() {
    double b = kFirstBoundMs;
    for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      bounds[static_cast<size_t>(i)] = b;
      b *= kGrowth;
    }
  }
};

const BucketTable& Table() {
  static const BucketTable table;
  return table;
}

}  // namespace

namespace {

// Short general-precision formatting for bucket bounds and JSON values
// ("0.0041" not "0.004100"). Non-finite inputs would render as "inf"/"nan",
// which RFC 8259 has no tokens for — clamp them so the exposition stays
// parseable no matter what an accumulator degenerated to.
std::string FormatCompact(double value) {
  if (std::isnan(value)) return "0";
  if (std::isinf(value)) return value > 0 ? "1e308" : "-1e308";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Prometheus text exposition requires backslash and newline escaping in
// HELP text (label values additionally escape '"', but we emit none from
// help strings). Without this, a help string containing '\n' splits the
// exposition mid-line and scrapes fail to parse.
std::string PrometheusHelpEscape(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string LatencySnapshot::ToString() const {
  return "n=" + std::to_string(count) + " mean=" + FormatDouble(mean_ms, 3) +
         "ms p50=" + FormatDouble(p50_ms, 3) + "ms p95=" +
         FormatDouble(p95_ms, 3) + "ms p99=" + FormatDouble(p99_ms, 3) +
         "ms max=" + FormatDouble(max_ms, 3) + "ms";
}

std::string LatencySnapshot::ToJson() const {
  return "{\"count\":" + std::to_string(count) +
         ",\"sum_ms\":" + FormatCompact(sum_ms) +
         ",\"mean_ms\":" + FormatCompact(mean_ms) +
         ",\"p50_ms\":" + FormatCompact(p50_ms) +
         ",\"p95_ms\":" + FormatCompact(p95_ms) +
         ",\"p99_ms\":" + FormatCompact(p99_ms) +
         ",\"max_ms\":" + FormatCompact(max_ms) + "}";
}

double LatencyHistogram::BucketUpperBound(int i) {
  return Table().bounds[static_cast<size_t>(
      std::clamp(i, 0, kNumBuckets - 1))];
}

void LatencyHistogram::RecordWithExemplar(double millis,
                                          int64_t exemplar_id) {
  // Sanitize before anything touches the accumulators: NaN (and negatives)
  // clamp to zero, +infinity to the largest representable sample — so a
  // single bad input can never poison sum/max with NaN or overflow the
  // integer-microsecond accumulation.
  double sample = millis;
  if (std::isnan(sample) || sample < 0.0) sample = 0.0;
  constexpr double kMaxSampleMs = 9.0e15;  // ~285 years, still exact in us
  if (sample > kMaxSampleMs) sample = kMaxSampleMs;
  const auto& bounds = Table().bounds;
  // Buckets are few; branchless binary search via upper_bound.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), sample);
  const size_t index = std::min<size_t>(
      static_cast<size_t>(it - bounds.begin()), kNumBuckets - 1);
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t micros = static_cast<int64_t>(std::llround(sample * 1e3));
  if (exemplar_id != 0) {
    exemplar_id_[index].store(exemplar_id, std::memory_order_relaxed);
    exemplar_micros_[index].store(micros, std::memory_order_relaxed);
  }
  sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  int64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_micros_.compare_exchange_weak(seen, micros,
                                            std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(i)];
  }
  LatencySnapshot snap;
  snap.count = total;
  if (total == 0) return snap;
  snap.sum_ms =
      static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) * 1e-3;
  snap.mean_ms = snap.sum_ms / static_cast<double>(total);
  snap.max_ms =
      static_cast<double>(max_micros_.load(std::memory_order_relaxed)) * 1e-3;

  const auto percentile = [&](double q) {
    const double target = q * static_cast<double>(total);
    int64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const int64_t in_bucket = counts[static_cast<size_t>(i)];
      if (in_bucket == 0) continue;
      if (static_cast<double>(cumulative + in_bucket) >= target) {
        const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
        const double upper = std::min(BucketUpperBound(i), snap.max_ms);
        const double fraction =
            (target - static_cast<double>(cumulative)) /
            static_cast<double>(in_bucket);
        return lower + std::clamp(fraction, 0.0, 1.0) *
                           (std::max(upper, lower) - lower);
      }
      cumulative += in_bucket;
    }
    return snap.max_ms;
  };
  snap.p50_ms = percentile(0.50);
  snap.p95_ms = percentile(0.95);
  snap.p99_ms = percentile(0.99);
  return snap;
}

LatencyHistogram::Exemplar LatencyHistogram::BucketExemplar(int i) const {
  const size_t index =
      static_cast<size_t>(std::clamp(i, 0, kNumBuckets - 1));
  Exemplar exemplar;
  exemplar.id = exemplar_id_[index].load(std::memory_order_relaxed);
  exemplar.value_ms =
      static_cast<double>(
          exemplar_micros_[index].load(std::memory_order_relaxed)) *
      1e-3;
  return exemplar;
}

std::array<int64_t, LatencyHistogram::kNumBuckets>
LatencyHistogram::BucketCounts() const {
  std::array<int64_t, kNumBuckets> counts;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return counts;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.help = help;
    instrument.value = std::make_unique<Counter>();
    return *std::get<std::unique_ptr<Counter>>(
        instruments_.emplace(name, std::move(instrument))
            .first->second.value);
  }
  CROWDRTSE_CHECK(
      std::holds_alternative<std::unique_ptr<Counter>>(it->second.value));
  return *std::get<std::unique_ptr<Counter>>(it->second.value);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.help = help;
    instrument.value = std::make_unique<Gauge>();
    return *std::get<std::unique_ptr<Gauge>>(
        instruments_.emplace(name, std::move(instrument))
            .first->second.value);
  }
  CROWDRTSE_CHECK(
      std::holds_alternative<std::unique_ptr<Gauge>>(it->second.value));
  return *std::get<std::unique_ptr<Gauge>>(it->second.value);
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = instruments_.find(name);
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.help = help;
    instrument.value = std::make_unique<LatencyHistogram>();
    return *std::get<std::unique_ptr<LatencyHistogram>>(
        instruments_.emplace(name, std::move(instrument))
            .first->second.value);
  }
  CROWDRTSE_CHECK(std::holds_alternative<std::unique_ptr<LatencyHistogram>>(
      it->second.value));
  return *std::get<std::unique_ptr<LatencyHistogram>>(it->second.value);
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            Callback callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& instrument = instruments_[name];
  instrument.help = help;
  instrument.value = std::move(callback);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // Labeled instruments ('name{shard="3"}') share one metric family: HELP
  // and TYPE must name the bare family exactly once, while each series
  // line keeps its label block. Map order clusters a family's series, and
  // the emitted-set below keeps the header unique even if another name
  // sorts between a family's series.
  std::map<std::string, bool> family_header_emitted;
  const auto base_name = [](const std::string& name) {
    const size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
  };
  const auto emit_header = [&](const std::string& name,
                               const std::string& help,
                               const char* type) {
    const std::string base = base_name(name);
    bool& emitted = family_header_emitted[base];
    if (emitted) return;
    emitted = true;
    if (!help.empty()) {
      out += "# HELP " + base + " " + PrometheusHelpEscape(help) + "\n";
    }
    out += "# TYPE " + base + " " + type + "\n";
  };
  for (const auto& [name, instrument] : instruments_) {
    if (const auto* counter =
            std::get_if<std::unique_ptr<Counter>>(&instrument.value)) {
      emit_header(name, instrument.help, "counter");
      out += name + " " + std::to_string((*counter)->value()) + "\n";
    } else if (const auto* gauge =
                   std::get_if<std::unique_ptr<Gauge>>(&instrument.value)) {
      emit_header(name, instrument.help, "gauge");
      out += name + " " + std::to_string((*gauge)->value()) + "\n";
    } else if (const auto* callback =
                   std::get_if<Callback>(&instrument.value)) {
      emit_header(name, instrument.help, "gauge");
      out += name + " " + std::to_string((*callback)()) + "\n";
    } else {
      const auto& histogram =
          *std::get<std::unique_ptr<LatencyHistogram>>(instrument.value);
      emit_header(name, instrument.help, "histogram");
      // A labeled histogram name ('x{stage="a"}') must put the suffix on
      // the base ('x_bucket{stage="a",le="..."}'), never inside the label
      // block — split the name first.
      const std::string base = base_name(name);
      const size_t brace = name.find('{');
      const std::string labels =
          brace == std::string::npos
              ? ""
              : name.substr(brace + 1, name.size() - brace - 2);
      const std::string label_block =
          labels.empty() ? "" : "{" + labels + "}";
      const auto counts = histogram.BucketCounts();
      const LatencySnapshot snap = histogram.Snapshot();
      int64_t cumulative = 0;
      for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        cumulative += counts[static_cast<size_t>(i)];
        // The last bucket is the overflow bucket: +Inf, not its bound.
        const std::string le =
            i == LatencyHistogram::kNumBuckets - 1
                ? "+Inf"
                : FormatCompact(LatencyHistogram::BucketUpperBound(i));
        out += base + "_bucket{" + (labels.empty() ? "" : labels + ",") +
               "le=\"" + le + "\"} " + std::to_string(cumulative);
        // OpenMetrics-style exemplar suffix: ' # {trace_id="N"} <value>'.
        const LatencyHistogram::Exemplar exemplar =
            histogram.BucketExemplar(i);
        if (exemplar.id != 0) {
          out += " # {trace_id=\"" + std::to_string(exemplar.id) + "\"} " +
                 FormatCompact(exemplar.value_ms);
        }
        out += "\n";
      }
      out += base + "_sum" + label_block + " " + FormatCompact(snap.sum_ms) +
             "\n";
      out += base + "_count" + label_block + " " +
             std::to_string(snap.count) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, instrument] : instruments_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":";
    if (const auto* counter =
            std::get_if<std::unique_ptr<Counter>>(&instrument.value)) {
      out += std::to_string((*counter)->value());
    } else if (const auto* gauge =
                   std::get_if<std::unique_ptr<Gauge>>(&instrument.value)) {
      out += std::to_string((*gauge)->value());
    } else if (const auto* callback =
                   std::get_if<Callback>(&instrument.value)) {
      out += std::to_string((*callback)());
    } else {
      out += std::get<std::unique_ptr<LatencyHistogram>>(instrument.value)
                 ->Snapshot()
                 .ToJson();
    }
  }
  out += "}";
  return out;
}

}  // namespace crowdrtse::util::metrics
