#include "util/serialize.h"

#include <fstream>
#include <sstream>

namespace crowdrtse::util {

void BinaryWriter::AppendRaw(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::WriteUint32(uint32_t value) { AppendRaw(&value, 4); }
void BinaryWriter::WriteUint64(uint64_t value) { AppendRaw(&value, 8); }
void BinaryWriter::WriteInt32(int32_t value) { AppendRaw(&value, 4); }
void BinaryWriter::WriteDouble(double value) { AppendRaw(&value, 8); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteUint64(value.size());
  AppendRaw(value.data(), value.size());
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& values) {
  WriteUint64(values.size());
  AppendRaw(values.data(), values.size() * sizeof(double));
}

void BinaryWriter::WriteInt32Vector(const std::vector<int32_t>& values) {
  WriteUint64(values.size());
  AppendRaw(values.data(), values.size() * sizeof(int32_t));
}

Status BinaryWriter::Flush(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return BinaryReader(buffer.str());
}

Status BinaryReader::ReadRaw(void* out, size_t size) {
  if (offset_ + size > data_.size()) {
    return Status::OutOfRange("truncated binary input");
  }
  std::memcpy(out, data_.data() + offset_, size);
  offset_ += size;
  return Status::Ok();
}

Result<uint32_t> BinaryReader::ReadUint32() {
  uint32_t value = 0;
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(&value, 4));
  return value;
}

Result<uint64_t> BinaryReader::ReadUint64() {
  uint64_t value = 0;
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(&value, 8));
  return value;
}

Result<int32_t> BinaryReader::ReadInt32() {
  int32_t value = 0;
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(&value, 4));
  return value;
}

Result<double> BinaryReader::ReadDouble() {
  double value = 0;
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(&value, 8));
  return value;
}

Result<std::string> BinaryReader::ReadString() {
  Result<uint64_t> size = ReadUint64();
  if (!size.ok()) return size.status();
  // Compare against the remaining bytes instead of offset_ + size, which a
  // hostile length prefix could overflow past SIZE_MAX.
  if (*size > data_.size() - offset_) {
    return Status::OutOfRange("truncated string");
  }
  std::string value(data_.data() + offset_, *size);
  offset_ += *size;
  return value;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  Result<uint64_t> size = ReadUint64();
  if (!size.ok()) return size.status();
  if (*size > (data_.size() - offset_) / sizeof(double)) {
    return Status::OutOfRange("truncated double vector");
  }
  std::vector<double> values(*size);
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(values.data(), *size * sizeof(double)));
  return values;
}

Result<std::vector<int32_t>> BinaryReader::ReadInt32Vector() {
  Result<uint64_t> size = ReadUint64();
  if (!size.ok()) return size.status();
  if (*size > (data_.size() - offset_) / sizeof(int32_t)) {
    return Status::OutOfRange("truncated int32 vector");
  }
  std::vector<int32_t> values(*size);
  CROWDRTSE_RETURN_IF_ERROR(ReadRaw(values.data(), *size * sizeof(int32_t)));
  return values;
}

}  // namespace crowdrtse::util
