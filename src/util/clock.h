#ifndef CROWDRTSE_UTIL_CLOCK_H_
#define CROWDRTSE_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace crowdrtse::util {

/// Virtualised monotonic time for everything that waits on deadlines (the
/// crowd dispatch path). Production code runs on WallClock; tests run on
/// SimClock, where waiting is instantaneous and fully deterministic — the
/// pattern that makes retry/backoff schedules assertable to the microsecond
/// (see DESIGN.md §5c).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now, in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Blocks until NowMicros() >= deadline_micros. A wall clock sleeps; a
  /// simulated clock jumps forward and returns immediately.
  virtual void SleepUntilMicros(int64_t deadline_micros) = 0;
};

/// The real steady clock; SleepUntilMicros really sleeps.
class WallClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepUntilMicros(int64_t deadline_micros) override;

  /// Process-wide instance (the default when no clock is injected).
  static WallClock& Get();
};

/// Manually-advanced clock for deterministic tests. Time only moves when a
/// caller advances it (AdvanceMicros) or sleeps on it (SleepUntilMicros
/// jumps straight to the deadline). Monotonic and thread-safe: concurrent
/// sleepers race forward with a CAS-max, so time never goes backwards.
class SimClock : public Clock {
 public:
  explicit SimClock(int64_t start_micros = 0) : now_micros_(start_micros) {}

  int64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }

  void SleepUntilMicros(int64_t deadline_micros) override {
    AdvanceTo(deadline_micros);
  }

  /// Moves time forward by `delta_micros` (>= 0).
  void AdvanceMicros(int64_t delta_micros);
  void AdvanceMillis(double millis);

 private:
  void AdvanceTo(int64_t target_micros);

  std::atomic<int64_t> now_micros_;
};

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_CLOCK_H_
