#include "util/logging.h"

#include <atomic>

namespace crowdrtse::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_log_level.load() && level != LogLevel::kFatal) return;
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), file, line,
               message.c_str());
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace crowdrtse::util
