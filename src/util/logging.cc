#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>

#include "util/string_util.h"
#include "util/trace.h"

namespace crowdrtse::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::atomic<LogFormat> g_log_format{LogFormat::kText};
std::atomic<std::FILE*> g_log_stream{nullptr};  // null = stderr

// Single-writer mutex (satellite bugfix): a record is rendered outside the
// lock and written with one fwrite under it, so concurrent serving threads
// can never interleave partial lines — which the old bare fprintf allowed
// on platforms where stdio locking is per-call, not per-line.
std::mutex& WriterMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t ThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogFormat(LogFormat format) { g_log_format.store(format); }
LogFormat GetLogFormat() { return g_log_format.load(); }

void SetLogStream(std::FILE* stream) { g_log_stream.store(stream); }

std::string FormatLogRecord(LogFormat format, LogLevel level,
                            const char* file, int line,
                            const std::string& message) {
  if (format == LogFormat::kText) {
    return std::string("[") + LevelName(level) + "] " + file + ":" +
           std::to_string(line) + " " + message + "\n";
  }
  // Structured record. query_id joins the line to the per-query trace the
  // calling thread is serving (0 outside any traced query).
  std::string out = "{\"ts_us\":" + std::to_string(WallMicros()) +
                    ",\"severity\":\"" + LevelName(level) +
                    "\",\"thread\":" + std::to_string(ThreadId()) +
                    ",\"query_id\":" +
                    std::to_string(trace::ActiveQueryId()) + ",\"file\":\"" +
                    JsonEscape(file) + "\",\"line\":" +
                    std::to_string(line) + ",\"msg\":\"" +
                    JsonEscape(message) + "\"}\n";
  return out;
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_log_level.load() && level != LogLevel::kFatal) return;
  const std::string record =
      FormatLogRecord(g_log_format.load(), level, file, line, message);
  {
    std::lock_guard<std::mutex> lock(WriterMutex());
    std::FILE* stream = g_log_stream.load();
    if (stream == nullptr) stream = stderr;
    std::fwrite(record.data(), 1, record.size(), stream);
    std::fflush(stream);
  }
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace crowdrtse::util
