#include "util/clock.h"

#include <chrono>
#include <thread>

namespace crowdrtse::util {

namespace {

using SteadyClock = std::chrono::steady_clock;

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

}  // namespace

int64_t WallClock::NowMicros() const { return SteadyNowMicros(); }

void WallClock::SleepUntilMicros(int64_t deadline_micros) {
  const int64_t now = SteadyNowMicros();
  if (deadline_micros <= now) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(deadline_micros - now));
}

WallClock& WallClock::Get() {
  static WallClock instance;
  return instance;
}

void SimClock::AdvanceMicros(int64_t delta_micros) {
  if (delta_micros <= 0) return;
  now_micros_.fetch_add(delta_micros, std::memory_order_acq_rel);
}

void SimClock::AdvanceMillis(double millis) {
  AdvanceMicros(static_cast<int64_t>(millis * 1e3));
}

void SimClock::AdvanceTo(int64_t target_micros) {
  int64_t current = now_micros_.load(std::memory_order_acquire);
  while (current < target_micros &&
         !now_micros_.compare_exchange_weak(current, target_micros,
                                            std::memory_order_acq_rel)) {
    // `current` was refreshed by the failed CAS; loop until someone (maybe
    // us) has moved time at least to the target.
  }
}

}  // namespace crowdrtse::util
