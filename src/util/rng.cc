#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace crowdrtse::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int Rng::UniformInt(int lo, int hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  return lo + static_cast<int>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 nudged away from zero so log() is finite.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  if (k >= n) {
    Shuffle(pool);
    return pool;
  }
  std::vector<int> out;
  out.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const size_t j =
        static_cast<size_t>(i) +
        static_cast<size_t>(UniformUint64(static_cast<uint64_t>(n - i)));
    std::swap(pool[static_cast<size_t>(i)], pool[j]);
    out.push_back(pool[static_cast<size_t>(i)]);
  }
  return out;
}

Rng Rng::Fork() {
  Rng child(NextUint64());
  return child;
}

}  // namespace crowdrtse::util
