#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace crowdrtse::util {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningCovariance::Add(double x, double y) {
  ++count_;
  const double n = static_cast<double>(count_);
  const double dx = x - mean_x_;
  mean_x_ += dx / n;
  m2_x_ += dx * (x - mean_x_);
  const double dy = y - mean_y_;
  mean_y_ += dy / n;
  m2_y_ += dy * (y - mean_y_);
  // Co-moment uses the pre-update x delta and post-update y mean.
  cov_ += dx * (y - mean_y_);
}

double RunningCovariance::Covariance() const {
  if (count_ < 2) return 0.0;
  return cov_ / static_cast<double>(count_ - 1);
}

double RunningCovariance::VarianceX() const {
  if (count_ < 2) return 0.0;
  return m2_x_ / static_cast<double>(count_ - 1);
}

double RunningCovariance::VarianceY() const {
  if (count_ < 2) return 0.0;
  return m2_y_ / static_cast<double>(count_ - 1);
}

double RunningCovariance::Correlation() const {
  const double vx = VarianceX();
  const double vy = VarianceY();
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return Covariance() / std::sqrt(vx * vy);
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double TrimmedMean(std::vector<double> values, double trim_fraction) {
  if (values.empty()) return 0.0;
  trim_fraction = std::clamp(trim_fraction, 0.0, 0.49);
  std::sort(values.begin(), values.end());
  const size_t drop =
      static_cast<size_t>(trim_fraction * static_cast<double>(values.size()));
  if (values.size() <= 2 * drop) return Mean(values);
  double sum = 0.0;
  for (size_t i = drop; i < values.size() - drop; ++i) sum += values[i];
  return sum / static_cast<double>(values.size() - 2 * drop);
}

}  // namespace crowdrtse::util
