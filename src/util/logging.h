#ifndef CROWDRTSE_UTIL_LOGGING_H_
#define CROWDRTSE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace crowdrtse::util {

/// Log severities. kFatal aborts after printing.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Output shape of every record.
///   kText — "[LEVEL] file:line message" (the historical format).
///   kJson — one structured JSON object per line: {"ts_us":…,
///           "severity":"INFO","thread":…,"query_id":…,"file":"…",
///           "line":…,"msg":"…"}. query_id comes from the active
///           util::trace on the calling thread (0 outside a traced query),
///           so service logs join against traces without any plumbing.
enum class LogFormat { kText, kJson };
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Redirects log output (nullptr restores stderr). The stream is borrowed;
/// the caller keeps it open for as long as logging may run. Tests point
/// this at a tmpfile to assert that concurrent writers never interleave.
void SetLogStream(std::FILE* stream);

/// Renders one record in the given format without emitting it (what
/// LogMessage writes; exposed for tests).
std::string FormatLogRecord(LogFormat format, LogLevel level,
                            const char* file, int line,
                            const std::string& message);

/// Writes one record to the log stream. Thread-safe: the record is
/// rendered to a single string and written under one process-wide writer
/// mutex, so concurrent messages can never interleave mid-line.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

}  // namespace crowdrtse::util

#define CROWDRTSE_LOG(level, msg)                                         \
  ::crowdrtse::util::LogMessage(::crowdrtse::util::LogLevel::k##level,    \
                                __FILE__, __LINE__, (msg))

/// Invariant check that stays on in release builds. Algorithm kernels use it
/// for contract violations that indicate programming errors (not bad input —
/// bad input goes through Status).
#define CROWDRTSE_CHECK(cond)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::crowdrtse::util::LogMessage(::crowdrtse::util::LogLevel::kFatal,   \
                                    __FILE__, __LINE__,                    \
                                    "check failed: " #cond);               \
    }                                                                      \
  } while (false)

#endif  // CROWDRTSE_UTIL_LOGGING_H_
