#ifndef CROWDRTSE_UTIL_LOGGING_H_
#define CROWDRTSE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace crowdrtse::util {

/// Log severities. kFatal aborts after printing.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one line to stderr as "[LEVEL] file:line message".
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

}  // namespace crowdrtse::util

#define CROWDRTSE_LOG(level, msg)                                         \
  ::crowdrtse::util::LogMessage(::crowdrtse::util::LogLevel::k##level,    \
                                __FILE__, __LINE__, (msg))

/// Invariant check that stays on in release builds. Algorithm kernels use it
/// for contract violations that indicate programming errors (not bad input —
/// bad input goes through Status).
#define CROWDRTSE_CHECK(cond)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::crowdrtse::util::LogMessage(::crowdrtse::util::LogLevel::kFatal,   \
                                    __FILE__, __LINE__,                    \
                                    "check failed: " #cond);               \
    }                                                                      \
  } while (false)

#endif  // CROWDRTSE_UTIL_LOGGING_H_
