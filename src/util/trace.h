#ifndef CROWDRTSE_UTIL_TRACE_H_
#define CROWDRTSE_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace crowdrtse::util::trace {

/// One key/value annotation on a span. Values are stored as strings; the
/// Span::Annotate overloads format numbers on the way in.
struct Annotation {
  std::string key;
  std::string value;
};

/// A finished span as recorded on its Trace. Times come from the Trace's
/// util::Clock (microseconds, the clock's arbitrary epoch), so spans taken
/// on a SimClock line up exactly with the dispatch controller's simulated
/// timeline.
struct SpanRecord {
  int64_t id = 0;
  int64_t parent = 0;  // 0 = root
  std::string name;
  int64_t start_us = 0;
  int64_t end_us = 0;
  std::vector<Annotation> annotations;
};

/// Per-query trace: a thread-safe sink of finished spans, carrying the
/// query id they all belong to. Spans from any thread may record into one
/// Trace concurrently (the serving thread plus, e.g., a gamma-cache compute
/// that happens to run on it).
class Trace {
 public:
  /// `clock` may be null (wall clock). Must outlive the trace.
  explicit Trace(int64_t query_id, Clock* clock = nullptr);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  int64_t query_id() const { return query_id_; }
  int64_t NowMicros() const { return clock_->NowMicros(); }
  /// Construction time on the trace's clock.
  int64_t start_us() const { return start_us_; }

  /// Allocates the next span id (1-based, atomically).
  int64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a finished span. Thread-safe.
  void Record(SpanRecord record);

  /// Snapshot of every span recorded so far, in completion order.
  std::vector<SpanRecord> spans() const;

  /// Wall span of the trace so far: latest recorded end minus start_us().
  double DurationMs() const;

 private:
  const int64_t query_id_;
  Clock* clock_;
  const int64_t start_us_;
  std::atomic<int64_t> next_span_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  int64_t max_end_us_;
};

/// The trace the current thread is recording into (set by ScopedTrace);
/// nullptr outside any traced request.
Trace* ActiveTrace();
/// Query id of the active trace, 0 when none — what structured logging
/// stamps onto every record emitted while serving a traced query.
int64_t ActiveQueryId();
/// Span id of the innermost open Span on this thread, 0 when none.
int64_t ActiveSpanId();

/// Installs `trace` (may be null = no-op) as the calling thread's active
/// trace for the current scope; restores the previous one on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(Trace* trace);
  /// Installs `trace` with `parent_span` as the thread's innermost open
  /// span, so the next Span constructed on this thread parents under it —
  /// how a sharded router's fan-out threads stitch their per-shard spans
  /// under the router's root "serve" span on another thread.
  ScopedTrace(Trace* trace, int64_t parent_span);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Trace* previous_trace_;
  int64_t previous_span_;
};

/// RAII span. Construction attaches to the thread's active trace (a cheap
/// no-op — one thread-local read — when tracing is off or unsampled);
/// destruction records the finished span. Spans nest lexically: the newest
/// open span on the thread is the parent of the next one.
class Span {
 public:
  explicit Span(const char* name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when attached to a trace (annotations will be kept).
  bool active() const { return trace_ != nullptr; }

  void Annotate(const std::string& key, const std::string& value);
  void Annotate(const std::string& key, const char* value);
  void Annotate(const std::string& key, int64_t value);
  void Annotate(const std::string& key, double value);

  /// Closes the span early (idempotent; the destructor is then a no-op).
  void End();

 private:
  Trace* trace_ = nullptr;
  SpanRecord record_;
};

/// Records an already-timed span onto `trace` — how the dispatch controller
/// logs per-attempt spans whose start/end live on its own event timeline.
/// Returns the span id (0 if `trace` is null).
int64_t AddCompleteSpan(Trace* trace, const std::string& name,
                        int64_t parent, int64_t start_us, int64_t end_us,
                        std::vector<Annotation> annotations);

/// Deterministic sampling decision: true for a `rate` fraction of keys
/// (rate >= 1 always samples, <= 0 never). Pure hash of the key, so the
/// same query id samples identically on every replica.
bool ShouldSample(double rate, uint64_t key);

/// Compact per-query span summary, attached to QueryResponse so a client
/// (or the slow-query log) can see where the time went without loading the
/// full Chrome trace. Sibling spans with the same name are merged into one
/// line with a count.
struct TraceSummary {
  struct Line {
    std::string name;
    int depth = 0;
    int64_t count = 0;
    double total_ms = 0.0;
    /// Annotations of the first merged span (enough to identify it).
    std::string annotations;
  };

  int64_t query_id = 0;
  double total_ms = 0.0;
  std::vector<Line> lines;  // pre-order

  bool empty() const { return lines.empty(); }
  /// Indented "name xN total=1.23ms {k=v ...}" lines.
  std::string ToString() const;
};

TraceSummary Summarize(const Trace& trace);

/// Renders `traces` as Chrome trace_event JSON (chrome://tracing and
/// Perfetto load it): one complete ("ph":"X") event per span, ts/dur in
/// microseconds, tid = query id, span/parent ids in args.
std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<const Trace>>& traces);

util::Status WriteChromeTraceFile(
    const std::string& path,
    const std::vector<std::shared_ptr<const Trace>>& traces);

/// Thread-safe store of finished traces: a ring buffer of the most recent
/// ones (the export window) plus the top-N slowest since construction (the
/// slow-query log), both dumpable on demand.
class TraceCollector {
 public:
  struct Options {
    /// Finished traces kept for export; older ones fall off the ring.
    int ring_size = 256;
    /// Slowest traces kept forever (by DurationMs at collection time).
    int slow_log_size = 16;
  };

  TraceCollector() : TraceCollector(Options()) {}
  explicit TraceCollector(Options options);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void Collect(std::shared_ptr<const Trace> trace);

  /// Traces still in the ring, oldest first.
  std::vector<std::shared_ptr<const Trace>> Recent() const;
  /// Slow-query log, slowest first.
  std::vector<std::shared_ptr<const Trace>> Slowest() const;
  /// Total traces ever collected (ring overflow does not decrement).
  int64_t collected() const {
    return collected_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON over the ring contents.
  std::string ChromeTraceJson() const;
  /// Human-readable dump of the slow-query log (one summary per trace).
  std::string SlowQueryReport() const;

 private:
  Options options_;
  std::atomic<int64_t> collected_{0};
  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const Trace>> ring_;
  /// Sorted slowest-first, trimmed to slow_log_size.
  std::vector<std::pair<double, std::shared_ptr<const Trace>>> slowest_;
};

}  // namespace crowdrtse::util::trace

#endif  // CROWDRTSE_UTIL_TRACE_H_
