#ifndef CROWDRTSE_UTIL_STATS_H_
#define CROWDRTSE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace crowdrtse::util {

/// Numerically stable single-pass accumulator for mean and variance
/// (Welford's algorithm). Used throughout parameter estimation: the RTF
/// moment estimator feeds three months of speed records through these.
class RunningStats {
 public:
  RunningStats() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Merges another accumulator (Chan's parallel combination formula).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  /// Mean of all observations; 0 if empty.
  double Mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 if fewer than 2 samples.
  double Variance() const;
  /// Population variance (n denominator); 0 if empty.
  double PopulationVariance() const;
  double StdDev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-variable accumulator producing the Pearson correlation coefficient.
/// RTF's edge weights rho_ij are estimated from these over historical
/// speed pairs of adjacent roads.
class RunningCovariance {
 public:
  RunningCovariance() = default;

  /// Folds one (x, y) observation pair.
  void Add(double x, double y);

  size_t count() const { return count_; }
  /// Sample covariance (n-1 denominator); 0 if fewer than 2 samples.
  double Covariance() const;
  /// Pearson correlation in [-1, 1]; 0 if either marginal is degenerate.
  double Correlation() const;
  double MeanX() const { return mean_x_; }
  double MeanY() const { return mean_y_; }
  double VarianceX() const;
  double VarianceY() const;

 private:
  size_t count_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;
  double m2_y_ = 0.0;
  double cov_ = 0.0;  // co-moment sum
};

/// Order-statistics helpers over a snapshot of values.
/// `q` in [0, 1]; linear interpolation between closest ranks.
double Quantile(std::vector<double> values, double q);
double Median(std::vector<double> values);

/// Mean of `values`; 0 if empty.
double Mean(const std::vector<double>& values);

/// Trimmed mean discarding `trim_fraction` of mass at each tail
/// (e.g. 0.1 drops the lowest and highest 10%). Falls back to the plain mean
/// when too few samples remain after trimming.
double TrimmedMean(std::vector<double> values, double trim_fraction);

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_STATS_H_
