#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/string_util.h"

namespace crowdrtse::util::trace {

namespace {

thread_local Trace* t_active_trace = nullptr;
thread_local int64_t t_active_span = 0;

// SplitMix64 — the same pure-hash construction the fault plan uses, so a
// sampling decision is a function of the key alone.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15u;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9u;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebu;
  return x ^ (x >> 31);
}

std::string FormatAnnotations(const std::vector<Annotation>& annotations) {
  if (annotations.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < annotations.size(); ++i) {
    if (i > 0) out += " ";
    out += annotations[i].key + "=" + annotations[i].value;
  }
  out += "}";
  return out;
}

}  // namespace

Trace::Trace(int64_t query_id, Clock* clock)
    : query_id_(query_id),
      clock_(clock != nullptr ? clock : &WallClock::Get()),
      start_us_(clock_->NowMicros()),
      max_end_us_(start_us_) {}

void Trace::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_end_us_ = std::max(max_end_us_, record.end_us);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double Trace::DurationMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(max_end_us_ - start_us_) / 1e3;
}

Trace* ActiveTrace() { return t_active_trace; }

int64_t ActiveQueryId() {
  return t_active_trace != nullptr ? t_active_trace->query_id() : 0;
}

int64_t ActiveSpanId() { return t_active_span; }

ScopedTrace::ScopedTrace(Trace* trace)
    : previous_trace_(t_active_trace), previous_span_(t_active_span) {
  t_active_trace = trace;
  t_active_span = 0;
}

ScopedTrace::ScopedTrace(Trace* trace, int64_t parent_span)
    : previous_trace_(t_active_trace), previous_span_(t_active_span) {
  t_active_trace = trace;
  t_active_span = trace != nullptr ? parent_span : 0;
}

ScopedTrace::~ScopedTrace() {
  t_active_trace = previous_trace_;
  t_active_span = previous_span_;
}

Span::Span(const char* name) {
  if (t_active_trace == nullptr) return;
  trace_ = t_active_trace;
  record_.id = trace_->NextSpanId();
  record_.parent = t_active_span;
  record_.name = name;
  record_.start_us = trace_->NowMicros();
  t_active_span = record_.id;
}

void Span::Annotate(const std::string& key, const std::string& value) {
  if (trace_ == nullptr) return;
  record_.annotations.push_back({key, value});
}

void Span::Annotate(const std::string& key, const char* value) {
  Annotate(key, std::string(value));
}

void Span::Annotate(const std::string& key, int64_t value) {
  Annotate(key, std::to_string(value));
}

void Span::Annotate(const std::string& key, double value) {
  Annotate(key, FormatDouble(value, 3));
}

void Span::End() {
  if (trace_ == nullptr) return;
  record_.end_us = trace_->NowMicros();
  // Restore the parent as the thread's innermost open span. Spans close in
  // reverse construction order (they are scoped locals), so this is a pop.
  t_active_span = record_.parent;
  trace_->Record(std::move(record_));
  trace_ = nullptr;
}

int64_t AddCompleteSpan(Trace* trace, const std::string& name,
                        int64_t parent, int64_t start_us, int64_t end_us,
                        std::vector<Annotation> annotations) {
  if (trace == nullptr) return 0;
  SpanRecord record;
  record.id = trace->NextSpanId();
  record.parent = parent;
  record.name = name;
  record.start_us = start_us;
  record.end_us = end_us;
  record.annotations = std::move(annotations);
  const int64_t id = record.id;
  trace->Record(std::move(record));
  return id;
}

bool ShouldSample(double rate, uint64_t key) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // Top 53 bits as a uniform draw in [0, 1).
  const double unit =
      static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53;
  return unit < rate;
}

std::string TraceSummary::ToString() const {
  std::string out = "query " + std::to_string(query_id) + " " +
                    FormatDouble(total_ms, 3) + "ms\n";
  for (const Line& line : lines) {
    out.append(static_cast<size_t>(2 * (line.depth + 1)), ' ');
    out += line.name;
    if (line.count > 1) out += " x" + std::to_string(line.count);
    out += " " + FormatDouble(line.total_ms, 3) + "ms";
    if (!line.annotations.empty()) out += " " + line.annotations;
    out += "\n";
  }
  return out;
}

TraceSummary Summarize(const Trace& trace) {
  TraceSummary summary;
  summary.query_id = trace.query_id();
  summary.total_ms = trace.DurationMs();

  const std::vector<SpanRecord> spans = trace.spans();
  std::map<int64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& span : spans) {
    children[span.parent].push_back(&span);
  }
  for (auto& [parent, bucket] : children) {
    std::sort(bucket.begin(), bucket.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                return a->start_us != b->start_us
                           ? a->start_us < b->start_us
                           : a->id < b->id;
              });
  }

  // Pre-order walk, merging same-named siblings into one counted line
  // (a dispatch round's dozens of "attempt" spans collapse to one).
  const auto walk = [&](auto&& self, int64_t parent, int depth) -> void {
    const auto it = children.find(parent);
    if (it == children.end()) return;
    std::vector<const SpanRecord*> merged_into;
    std::map<std::string, size_t> line_of;
    for (const SpanRecord* span : it->second) {
      const auto line_it = line_of.find(span->name);
      if (line_it == line_of.end()) {
        TraceSummary::Line line;
        line.name = span->name;
        line.depth = depth;
        line.count = 1;
        line.total_ms =
            static_cast<double>(span->end_us - span->start_us) / 1e3;
        line.annotations = FormatAnnotations(span->annotations);
        line_of[span->name] = summary.lines.size();
        summary.lines.push_back(std::move(line));
        merged_into.push_back(span);
      } else {
        TraceSummary::Line& line = summary.lines[line_it->second];
        ++line.count;
        line.total_ms +=
            static_cast<double>(span->end_us - span->start_us) / 1e3;
      }
    }
    // Recurse only under the first span of each merged group: the summary
    // is a shape sketch, not the full tree.
    for (const SpanRecord* span : merged_into) {
      self(self, span->id, depth + 1);
    }
  };
  walk(walk, 0, 0);
  return summary;
}

std::string ChromeTraceJson(
    const std::vector<std::shared_ptr<const Trace>>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::shared_ptr<const Trace>& trace : traces) {
    if (!trace) continue;
    const int64_t tid = trace->query_id();
    // A metadata event names the row after the query.
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"query " +
           std::to_string(tid) + "\"}}";
    for (const SpanRecord& span : trace->spans()) {
      out += ",{\"name\":\"" + JsonEscape(span.name) +
             "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
             ",\"ts\":" + std::to_string(span.start_us) +
             ",\"dur\":" + std::to_string(span.end_us - span.start_us) +
             ",\"args\":{\"span_id\":" + std::to_string(span.id) +
             ",\"parent\":" + std::to_string(span.parent) +
             ",\"query_id\":" + std::to_string(tid);
      for (const Annotation& annotation : span.annotations) {
        out += ",\"" + JsonEscape(annotation.key) + "\":\"" +
               JsonEscape(annotation.value) + "\"";
      }
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

util::Status WriteChromeTraceFile(
    const std::string& path,
    const std::vector<std::shared_ptr<const Trace>>& traces) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open trace file: " + path);
  }
  const std::string json = ChromeTraceJson(traces);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_error = std::fclose(file);
  if (written != json.size() || close_error != 0) {
    return util::Status::IoError("short write to trace file: " + path);
  }
  return util::Status::Ok();
}

TraceCollector::TraceCollector(Options options) : options_(options) {
  if (options_.ring_size < 1) options_.ring_size = 1;
  if (options_.slow_log_size < 0) options_.slow_log_size = 0;
}

void TraceCollector::Collect(std::shared_ptr<const Trace> trace) {
  if (!trace) return;
  collected_.fetch_add(1, std::memory_order_relaxed);
  const double duration_ms = trace->DurationMs();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(trace);
  while (static_cast<int>(ring_.size()) > options_.ring_size) {
    ring_.pop_front();
  }
  if (options_.slow_log_size > 0) {
    slowest_.push_back({duration_ms, std::move(trace)});
    std::sort(slowest_.begin(), slowest_.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (static_cast<int>(slowest_.size()) > options_.slow_log_size) {
      slowest_.resize(static_cast<size_t>(options_.slow_log_size));
    }
  }
}

std::vector<std::shared_ptr<const Trace>> TraceCollector::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<std::shared_ptr<const Trace>> TraceCollector::Slowest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const Trace>> out;
  out.reserve(slowest_.size());
  for (const auto& [duration, trace] : slowest_) out.push_back(trace);
  return out;
}

std::string TraceCollector::ChromeTraceJson() const {
  return trace::ChromeTraceJson(Recent());
}

std::string TraceCollector::SlowQueryReport() const {
  const std::vector<std::shared_ptr<const Trace>> slow = Slowest();
  std::string out = "slow-query log (" + std::to_string(slow.size()) +
                    " traces, slowest first):\n";
  for (const std::shared_ptr<const Trace>& trace : slow) {
    out += Summarize(*trace).ToString();
  }
  return out;
}

}  // namespace crowdrtse::util::trace
