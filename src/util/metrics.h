#ifndef CROWDRTSE_UTIL_METRICS_H_
#define CROWDRTSE_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>

namespace crowdrtse::util::metrics {

/// Monotonically increasing event counter. Increment is wait-free; reads
/// are approximate under concurrent writers (a snapshot of a moment, which
/// is all a service dashboard needs).
class Counter {
 public:
  Counter() = default;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t amount = 1) {
    value_.fetch_add(amount, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can go up and down (pool leases in flight, resident cache
/// bytes). Wait-free like Counter.
class Gauge {
 public:
  Gauge() = default;

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time summary of a LatencyHistogram. Percentiles are estimated
/// by linear interpolation inside the owning bucket, so they are exact to
/// within one bucket width (buckets grow geometrically, ~26% relative
/// error bound — the standard fixed-bucket tradeoff).
struct LatencySnapshot {
  int64_t count = 0;
  double sum_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  /// Renders "n=12 mean=1.23ms p50=1.10ms p95=2.50ms p99=3.00ms max=3.10ms".
  std::string ToString() const;
  /// JSON object {"count":…,"sum_ms":…,…} — the registry's histogram
  /// rendering, shared with EngineStats::ReportJson().
  std::string ToJson() const;
};

/// Fixed-bucket latency histogram with wait-free recording. Bucket upper
/// bounds grow geometrically from 1 microsecond to ~100 seconds, which
/// covers everything the serving path can produce; slower samples land in
/// a final overflow bucket. Record() is a single atomic increment plus two
/// relaxed accumulations, so it is safe (and cheap) to call from every
/// serving thread concurrently; Snapshot() may run concurrently with
/// writers and observes some consistent-enough recent state.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// One stored exemplar per bucket: the id of a query/trace whose sample
  /// landed there, and that sample's value. id 0 means none recorded.
  struct Exemplar {
    int64_t id = 0;
    double value_ms = 0.0;
  };

  /// Records one sample, in milliseconds. Negative and NaN samples clamp
  /// to zero; +infinity lands in the overflow bucket.
  void Record(double millis) { RecordWithExemplar(millis, 0); }

  /// Records one sample and (when `exemplar_id` is nonzero) attaches it as
  /// the sample's bucket exemplar — last writer wins, so each bucket links
  /// to a recent representative query. How the stage profiler makes a p99
  /// bucket point at a trace id worth opening in /trace/<id>.
  void RecordWithExemplar(double millis, int64_t exemplar_id);

  /// The current exemplar of bucket `i` ({0, 0} when none). Under
  /// concurrent writers the id and value may come from two different
  /// samples of the bucket; both are real samples, which is all an
  /// exemplar promises.
  Exemplar BucketExemplar(int i) const;

  LatencySnapshot Snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Upper bound (ms) of bucket `i`; the last bucket is unbounded.
  static double BucketUpperBound(int i);

  /// Per-bucket counts (approximate under concurrent writers) — what the
  /// Prometheus exposition renders as the cumulative `le` series.
  std::array<int64_t, kNumBuckets> BucketCounts() const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  // Sum and max are tracked in integer microseconds so the accumulation
  // stays a portable fetch_add / CAS on int64.
  std::atomic<int64_t> sum_micros_{0};
  std::atomic<int64_t> max_micros_{0};
  // Per-bucket exemplar (id + sample micros), each an independent relaxed
  // atomic — racy pairing is acceptable by the Exemplar contract above.
  std::array<std::atomic<int64_t>, kNumBuckets> exemplar_id_{};
  std::array<std::atomic<int64_t>, kNumBuckets> exemplar_micros_{};
};

/// Central named registry of counters, gauges, and latency histograms —
/// the machine-readable face of the serving pipeline. Instruments are
/// created on first lookup and live as long as the registry; the returned
/// references stay valid and are safe to hit from any thread (lookups take
/// a mutex; keep the reference rather than re-looking-up on hot paths).
///
/// Exposition: RenderPrometheus() emits Prometheus text format (counters/
/// gauges as-is, histograms as cumulative `le` bucket series with _sum and
/// _count, in milliseconds); RenderJson() emits one flat JSON object. Both
/// walk the instruments in name order, so output is stable. A labeled
/// histogram name ('x{stage="a"}') renders as proper series — the label
/// set merges into each bucket line's label block (x_bucket{stage="a",
/// le="..."}) — and bucket lines carry OpenMetrics-style exemplar
/// suffixes (' # {trace_id="N"} <value>') when one was recorded.
class MetricsRegistry {
 public:
  /// A gauge whose value is read on demand at render time — how the
  /// registry surfaces state owned elsewhere (gamma-cache resident bytes,
  /// ledger outstanding reservations, pool leases in flight).
  using Callback = std::function<int64_t()>;

  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument lookups: create-on-first-use, by unique name. Registering
  /// the same name as a different instrument kind is a programming error
  /// (CROWDRTSE_CHECK).
  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const std::string& help = "");
  /// Replaces any previous callback registered under `name`.
  void RegisterCallbackGauge(const std::string& name,
                             const std::string& help, Callback callback);

  /// Prometheus text exposition format.
  std::string RenderPrometheus() const;
  /// One flat JSON object: {"name": value, ..., "hist": {...}}.
  std::string RenderJson() const;

 private:
  struct Instrument {
    std::string help;
    std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                 std::unique_ptr<LatencyHistogram>, Callback>
        value;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace crowdrtse::util::metrics

#endif  // CROWDRTSE_UTIL_METRICS_H_
