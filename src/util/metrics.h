#ifndef CROWDRTSE_UTIL_METRICS_H_
#define CROWDRTSE_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace crowdrtse::util::metrics {

/// Monotonically increasing event counter. Increment is wait-free; reads
/// are approximate under concurrent writers (a snapshot of a moment, which
/// is all a service dashboard needs).
class Counter {
 public:
  Counter() = default;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t amount = 1) {
    value_.fetch_add(amount, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time summary of a LatencyHistogram. Percentiles are estimated
/// by linear interpolation inside the owning bucket, so they are exact to
/// within one bucket width (buckets grow geometrically, ~26% relative
/// error bound — the standard fixed-bucket tradeoff).
struct LatencySnapshot {
  int64_t count = 0;
  double sum_ms = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  /// Renders "n=12 mean=1.23ms p50=1.10ms p95=2.50ms p99=3.00ms max=3.10ms".
  std::string ToString() const;
};

/// Fixed-bucket latency histogram with wait-free recording. Bucket upper
/// bounds grow geometrically from 1 microsecond to ~100 seconds, which
/// covers everything the serving path can produce; slower samples land in
/// a final overflow bucket. Record() is a single atomic increment plus two
/// relaxed accumulations, so it is safe (and cheap) to call from every
/// serving thread concurrently; Snapshot() may run concurrently with
/// writers and observes some consistent-enough recent state.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 48;

  LatencyHistogram() = default;

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample, in milliseconds. Negative samples clamp to zero.
  void Record(double millis);

  LatencySnapshot Snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Upper bound (ms) of bucket `i`; the last bucket is unbounded.
  static double BucketUpperBound(int i);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  // Sum and max are tracked in integer microseconds so the accumulation
  // stays a portable fetch_add / CAS on int64.
  std::atomic<int64_t> sum_micros_{0};
  std::atomic<int64_t> max_micros_{0};
};

}  // namespace crowdrtse::util::metrics

#endif  // CROWDRTSE_UTIL_METRICS_H_
