#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace crowdrtse::util {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      pieces.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  pieces.push_back(std::move(current));
  return pieces;
}

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

Result<double> ParseDouble(const std::string& text) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  return value;
}

Result<int> ParseInt(const std::string& text) {
  const std::string trimmed = Trim(text);
  if (trimmed.empty()) return Status::InvalidArgument("empty integer");
  char* end = nullptr;
  const long value = std::strtol(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  if (value < INT32_MIN || value > INT32_MAX) {
    return Status::OutOfRange("integer out of range: '" + text + "'");
  }
  return static_cast<int>(value);
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace crowdrtse::util
