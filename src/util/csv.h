#ifndef CROWDRTSE_UTIL_CSV_H_
#define CROWDRTSE_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace crowdrtse::util {

/// A parsed CSV table: a header row plus data rows of string cells.
/// Minimal dialect: comma separator, optional double-quote quoting with ""
/// escapes, no embedded newlines inside quoted fields.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header, or -1 if absent.
  int ColumnIndex(const std::string& column) const;
};

/// Splits one CSV line into cells honouring double-quote quoting.
std::vector<std::string> SplitCsvLine(const std::string& line);

/// Parses CSV text. The first line is treated as the header when
/// `has_header` is true; otherwise a synthetic header c0..cN-1 is created.
Result<CsvTable> ParseCsv(const std::string& text, bool has_header = true);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true);

/// Serialises a table back to CSV text (quoting cells that need it).
std::string ToCsv(const CsvTable& table);

/// Writes a table to disk, overwriting any existing file.
Status WriteCsvFile(const std::string& path, const CsvTable& table);

}  // namespace crowdrtse::util

#endif  // CROWDRTSE_UTIL_CSV_H_
