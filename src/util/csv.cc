#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace crowdrtse::util {

int CsvTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<CsvTable> ParseCsv(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  bool first = true;
  while (std::getline(stream, line)) {
    if (line.empty() || line == "\r") continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    if (first) {
      first = false;
      if (has_header) {
        table.header = std::move(cells);
        continue;
      }
      table.header.reserve(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        table.header.push_back("c" + std::to_string(i));
      }
    }
    if (cells.size() != table.header.size()) {
      return Status::InvalidArgument(
          "CSV row has " + std::to_string(cells.size()) +
          " cells, expected " + std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(cells));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), has_header);
}

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendCell(std::string& out, const std::string& cell) {
  if (!NeedsQuoting(cell)) {
    out += cell;
    return;
  }
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string ToCsv(const CsvTable& table) {
  std::string out;
  for (size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendCell(out, table.header[i]);
  }
  out.push_back('\n');
  for (const auto& row : table.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendCell(out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvTable& table) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  const std::string text = ToCsv(table);
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!file) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace crowdrtse::util
