#include "server/coalescer.h"

#include <algorithm>

namespace crowdrtse::server {

std::string QueryCoalescer::KeyFor(const QueryRequest& request,
                                   ShedLevel level) {
  std::string key = std::to_string(request.slot) + "|" +
                    std::to_string(static_cast<int>(request.selector)) +
                    "|" + std::to_string(request.budget_cap) + "|" +
                    std::to_string(static_cast<int>(level)) + "|";
  for (const graph::RoadId road : request.queried) {
    key += std::to_string(road);
    key += ',';
  }
  return key;
}

bool QueryCoalescer::CanonicalizeRoads(QueryRequest* request) {
  auto& roads = request->queried;
  const bool sorted = std::is_sorted(roads.begin(), roads.end());
  if (!sorted) std::sort(roads.begin(), roads.end());
  const auto last = std::unique(roads.begin(), roads.end());
  const bool deduped = last != roads.end();
  roads.erase(last, roads.end());
  return !sorted || deduped;
}

std::pair<QueryCoalescer::BatchPtr, bool> QueryCoalescer::Join(
    const std::string& key, int64_t client_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = inflight_.find(key);
  if (it != inflight_.end()) {
    joins_.fetch_add(1, std::memory_order_relaxed);
    it->second->joiner_ids.push_back(client_id);
    return {it->second, false};
  }
  BatchPtr batch = std::make_shared<Batch>();
  inflight_[key] = batch;
  leads_.fetch_add(1, std::memory_order_relaxed);
  return {batch, true};
}

std::vector<int64_t> QueryCoalescer::Complete(const std::string& key,
                                              const BatchPtr& batch,
                                              util::Status status,
                                              QueryResponse response) {
  std::vector<int64_t> followers;
  {
    // Retiring the key and snapshotting the joiner list under one lock
    // makes the returned fan-out set complete: no joiner can attach to
    // this batch once the key is gone.
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    followers = batch->joiner_ids;
  }
  std::lock_guard<std::mutex> lock(batch->mutex);
  batch->status = std::move(status);
  batch->response = std::move(response);
  batch->done = true;
  batch->done_cv.notify_all();
  return followers;
}

util::Status QueryCoalescer::Wait(const BatchPtr& batch,
                                  QueryResponse* response) {
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->done; });
  if (!batch->status.ok()) return batch->status;
  ++batch->joiners;
  *response = batch->response;
  return util::Status::Ok();
}

}  // namespace crowdrtse::server
