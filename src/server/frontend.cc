#include "server/frontend.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <utility>

#include "net/json.h"
#include "obs/flight_recorder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowdrtse::server {

namespace {

int HttpStatusFor(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kOutOfRange:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    case util::StatusCode::kFailedPrecondition:
      return 503;
    default:
      return 500;
  }
}

std::string ErrorJson(int64_t client_id, const std::string& status_word,
                      const util::Status& status) {
  net::json::Value v = net::json::Value::Object();
  v.Set("id", net::json::Value::Int(client_id));
  v.Set("status", net::json::Value::Str(status_word));
  v.Set("code", net::json::Value::Str(util::StatusCodeName(status.code())));
  v.Set("message", net::json::Value::Str(status.message()));
  return v.Dump();
}

/// Admin knob values are conceptually ints with one double exception
/// (rate_qps); render "64" not "64.000000".
std::string FormatKnob(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    return std::to_string(static_cast<int64_t>(value));
  }
  return util::FormatDouble(value, 6);
}

core::SelectorKind ParseSelector(const std::string& name, bool* ok) {
  *ok = true;
  if (name.empty() || name == "lazy_hybrid") {
    return core::SelectorKind::kLazyHybridGreedy;
  }
  if (name == "hybrid") return core::SelectorKind::kHybridGreedy;
  if (name == "ratio") return core::SelectorKind::kRatioGreedy;
  if (name == "objective") return core::SelectorKind::kObjectiveGreedy;
  *ok = false;
  return core::SelectorKind::kLazyHybridGreedy;
}

/// Renders the canonical engine response back in the client's original
/// road order (the canonical request was sorted + deduped for coalescing).
std::string ResponseJson(const QueryResponse& response,
                         const std::vector<graph::RoadId>& canonical_roads,
                         const std::vector<graph::RoadId>& original_roads,
                         int64_t client_id, ShedLevel level,
                         bool coalesced) {
  std::map<graph::RoadId, size_t> index;
  for (size_t i = 0; i < canonical_roads.size(); ++i) {
    index[canonical_roads[i]] = i;
  }
  net::json::Value v = net::json::Value::Object();
  v.Set("id", net::json::Value::Int(client_id));
  v.Set("status", net::json::Value::Str("ok"));
  v.Set("query_id", net::json::Value::Int(response.query_id));
  v.Set("shed", net::json::Value::Str(ShedLevelName(level)));
  v.Set("coalesced", net::json::Value::Bool(coalesced));

  net::json::Value speeds = net::json::Value::Array();
  net::json::Value variances = net::json::Value::Array();
  const bool have_variances =
      response.queried_variances.size() == canonical_roads.size();
  for (const graph::RoadId road : original_roads) {
    const size_t i = index[road];
    speeds.MutableArray().push_back(
        net::json::Value::Number(response.queried_speeds[i]));
    if (have_variances) {
      variances.MutableArray().push_back(
          net::json::Value::Number(response.queried_variances[i]));
    }
  }
  v.Set("speeds", std::move(speeds));
  if (have_variances) v.Set("variances", std::move(variances));

  net::json::Value probed = net::json::Value::Array();
  for (const graph::RoadId road : response.probed_roads) {
    probed.MutableArray().push_back(net::json::Value::Int(road));
  }
  v.Set("probed", std::move(probed));
  net::json::Value degraded = net::json::Value::Array();
  net::json::Value reasons = net::json::Value::Array();
  for (size_t i = 0; i < response.degraded_roads.size(); ++i) {
    degraded.MutableArray().push_back(
        net::json::Value::Int(response.degraded_roads[i]));
    if (i < response.degraded_reasons.size()) {
      reasons.MutableArray().push_back(net::json::Value::Str(
          crowd::DegradeReasonName(response.degraded_reasons[i])));
    }
  }
  v.Set("degraded", std::move(degraded));
  v.Set("degraded_reasons", std::move(reasons));
  v.Set("granted_budget", net::json::Value::Int(response.granted_budget));
  v.Set("paid", net::json::Value::Int(response.paid));
  return v.Dump();
}

}  // namespace

std::string FrontendStats::Report() const {
  std::string out = "Frontend: " + std::to_string(connections_accepted) +
                    " conns (" + std::to_string(connections_closed) +
                    " closed), " + std::to_string(http_requests) +
                    " http + " + std::to_string(frame_requests) +
                    " frame requests, " + std::to_string(queries_received) +
                    " queries\n";
  out += "  admission: " + std::to_string(admission.admitted_full) +
         " full, " + std::to_string(admission.admitted_budget_capped) +
         " budget-capped, " + std::to_string(admission.admitted_fallback) +
         " fallback, " + std::to_string(admission.rejected) +
         " rejected (peak depth " + std::to_string(admission.peak_depth) +
         ")\n";
  out += "  rate-limited " + std::to_string(rate_limited) + ", bad " +
         std::to_string(bad_requests) + ", coalesce " +
         std::to_string(coalesce_leads) + " leads / " +
         std::to_string(coalesce_joins) + " joins\n";
  for (const std::string& fanout : coalesce_fanouts) {
    out += "  coalesce fan-out: " + fanout + "\n";
  }
  return out;
}

Frontend::Frontend(Engine& engine, const traffic::DayMatrix& world,
                   FrontendOptions options)
    : engine_(engine),
      world_(world),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : &util::WallClock::Get()),
      queue_(options.admission) {
  if (options_.num_workers <= 0) options_.num_workers = 2;
  if (options_.rate_limit_burst <= 0) {
    options_.rate_limit_burst = std::max(1.0, 2.0 * options_.rate_limit_qps);
  }
}

Frontend::~Frontend() { Shutdown(); }

util::Status Frontend::Start() {
  CROWDRTSE_RETURN_IF_ERROR(loop_.Init());
  CROWDRTSE_RETURN_IF_ERROR(listener_.Listen(options_.port));
  CROWDRTSE_RETURN_IF_ERROR(loop_.Add(listener_.fd(), true, false));
  running_.store(true, std::memory_order_release);
  reactor_ = std::thread([this] { ReactorLoop(); });
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return util::Status::Ok();
}

void Frontend::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

void Frontend::Shutdown() {
  if (stop_.exchange(true)) return;
  // §6 drain protocol: stop admitting, finish what is queued, only then
  // stop the threads — every in-flight query gets its response.
  BeginDrain();
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // The reactor keeps flushing worker responses until here.
  loop_.Wakeup();
  if (reactor_.joinable()) reactor_.join();
  // With the reactor gone nobody accepts: close the listener so new
  // connection attempts are refused rather than parked in the backlog.
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  running_.store(false, std::memory_order_release);
}

FrontendStats Frontend::stats() const {
  FrontendStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
    out.coalesce_fanouts.assign(coalesce_fanout_log_.begin(),
                                coalesce_fanout_log_.end());
  }
  out.admission = queue_.stats();
  out.coalesce_leads = coalescer_.leads();
  out.coalesce_joins = coalescer_.joins();
  return out;
}

void Frontend::WorkerLoop() {
  while (queue_.WaitAndRun()) {
  }
}

void Frontend::ReactorLoop() {
  std::vector<net::ReadyEvent> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const util::Status status = loop_.Wait(100, &events);
    if (!status.ok()) {
      CROWDRTSE_LOG(Warning, "frontend reactor: " + status.ToString());
      break;
    }
    for (const net::ReadyEvent& event : events) {
      if (event.fd == listener_.fd()) {
        AcceptAll();
        continue;
      }
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        const auto it = connections_.find(event.fd);
        if (it == connections_.end()) continue;
        conn = it->second;
      }
      if (event.closed || conn->dead.load(std::memory_order_acquire)) {
        CloseConnection(event.fd);
        continue;
      }
      if (event.writable) {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (!TryFlushLocked(conn)) {
          CloseConnection(event.fd);
          continue;
        }
      }
      if (event.readable) HandleReadable(conn);
    }
  }
}

void Frontend::AcceptAll() {
  for (;;) {
    util::Result<net::Fd> accepted = listener_.Accept();
    if (!accepted.ok()) {
      CROWDRTSE_LOG(Warning, "accept: " + accepted.status().ToString());
      return;
    }
    if (!accepted->valid()) return;  // drained
    const int fd = accepted->get();
    if (const util::Status nb = net::SetNonBlocking(fd); !nb.ok()) {
      CROWDRTSE_LOG(Warning, "accept: " + nb.ToString());
      continue;  // Fd closes on scope exit
    }
    ConnPtr conn = std::make_shared<Connection>();
    conn->fd = std::move(*accepted);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_[fd] = conn;
    }
    if (const util::Status added = loop_.Add(fd, true, false); !added.ok()) {
      CROWDRTSE_LOG(Warning, "epoll add: " + added.ToString());
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.erase(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void Frontend::HandleReadable(const ConnPtr& conn) {
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd.get(), buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn->fd.get());
      return;
    }
    if (n == 0) {  // peer closed
      CloseConnection(conn->fd.get());
      return;
    }
    const char* data = buffer;
    size_t size = static_cast<size_t>(n);
    if (conn->protocol == Connection::Protocol::kUnknown) {
      conn->preamble.append(data, size);
      if (conn->preamble.size() < 4) continue;
      // First four bytes decide the protocol: the binary frame magic is
      // "CQRC", which no HTTP request line starts with.
      conn->protocol =
          conn->preamble.compare(0, 4, "CQRC") == 0
              ? Connection::Protocol::kFrame
              : Connection::Protocol::kHttp;
      data = conn->preamble.data();
      size = conn->preamble.size();
    }
    util::Status fed = conn->protocol == Connection::Protocol::kFrame
                           ? conn->frames.Feed(data, size)
                           : conn->http.Feed(data, size);
    conn->preamble.clear();
    if (!fed.ok() || !DispatchBuffered(conn)) {
      CloseConnection(conn->fd.get());
      return;
    }
  }
}

bool Frontend::DispatchBuffered(const ConnPtr& conn) {
  if (conn->protocol == Connection::Protocol::kFrame) {
    for (;;) {
      std::string payload;
      util::Result<bool> got = conn->frames.Next(&payload);
      if (!got.ok()) return false;  // poisoned stream
      if (!*got) return true;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.frame_requests;
      }
      HandleQueryJson(conn, payload, /*framed=*/true);
    }
  }
  for (;;) {
    net::HttpRequest request;
    util::Result<bool> got = conn->http.Next(&request);
    if (!got.ok()) {
      SendResponse(conn, false, 400,
                   ErrorJson(0, "error",
                             util::Status::InvalidArgument(
                                 got.status().message())));
      return false;
    }
    if (!*got) return true;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.http_requests;
    }
    if (!HandleHttpRequest(conn, request)) return false;
  }
}

bool Frontend::HandleHttpRequest(const ConnPtr& conn,
                                 const net::HttpRequest& request) {
  if (request.method == "GET") {
    if (request.target == "/healthz") {
      SendRaw(conn, net::RenderHttpResponse(200, "ok\n", "text/plain"));
      return true;
    }
    if (request.target == "/metrics") {
      SendRaw(conn,
              net::RenderHttpResponse(
                  200, engine_.metrics().RenderPrometheus(),
                  "text/plain; version=0.0.4"));
      return true;
    }
    if (request.target == "/metrics.json") {
      SendResponse(conn, false, 200, engine_.metrics().RenderJson());
      return true;
    }
    if (request.target == "/stats") {
      SendRaw(conn, net::RenderHttpResponse(
                        200, engine_.stats().Report() + stats().Report(),
                        "text/plain"));
      return true;
    }
    if (request.target == "/debug/flight") {
      SendRaw(conn, net::RenderHttpResponse(
                        200, obs::FlightRecorder::Global().DumpJson(),
                        "application/json"));
      return true;
    }
    if (request.target.rfind("/trace/", 0) == 0) {
      const std::string id_text = request.target.substr(7);
      int64_t query_id = 0;
      bool numeric = !id_text.empty();
      for (const char c : id_text) {
        if (c < '0' || c > '9') {
          numeric = false;
          break;
        }
        query_id = query_id * 10 + (c - '0');
      }
      if (!numeric) {
        SendResponse(conn, false, 400,
                     ErrorJson(0, "error",
                               util::Status::InvalidArgument(
                                   "bad trace id: " + id_text)));
        return true;
      }
      for (const auto& trace : engine_.traces().Recent()) {
        if (trace->query_id() == query_id) {
          SendResponse(conn, false, 200,
                       util::trace::ChromeTraceJson({trace}));
          return true;
        }
      }
      SendResponse(conn, false, 404,
                   ErrorJson(0, "error",
                             util::Status::NotFound(
                                 "no trace for query " + id_text +
                                 " (unsampled or fell off the ring)")));
      return true;
    }
    SendResponse(conn, false, 404,
                 ErrorJson(0, "error",
                           util::Status::NotFound("no route: " +
                                                  request.target)));
    return true;
  }
  if (request.method == "POST") {
    if (request.target == "/query") {
      HandleQueryJson(conn, request.body, /*framed=*/false);
      return true;
    }
    if (request.target == "/admin") {
      SendRaw(conn, net::RenderHttpResponse(
                        200, HandleAdminCommand(request.body),
                        "text/plain"));
      return true;
    }
    SendResponse(conn, false, 404,
                 ErrorJson(0, "error",
                           util::Status::NotFound("no route: " +
                                                  request.target)));
    return true;
  }
  SendResponse(conn, false, 405,
               ErrorJson(0, "error",
                         util::Status::InvalidArgument(
                             "unsupported method: " + request.method)));
  return true;
}

std::string Frontend::HandleAdminCommand(const std::string& command) {
  // Tokenize on whitespace (trailing newline from `curl -d` included).
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : command) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) tokens.push_back(std::move(token));
  if (tokens.empty()) return "error: empty command\n";

  const std::string& verb = tokens[0];
  if (verb == "drain") {
    BeginDrain();
    return "ok: draining\n";
  }
  if (verb == "stats-clear") {
    queue_.ClearStats();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = FrontendStats();
    return "ok: stats cleared\n";
  }
  const auto knob_value = [this](const std::string& knob,
                                 double* out) -> bool {
    const AdmissionOptions admission = queue_.options();
    if (knob == "capacity") {
      *out = admission.capacity;
    } else if (knob == "shed_low") {
      *out = admission.shed_low_watermark;
    } else if (knob == "hard_capacity") {
      *out = admission.hard_capacity;
    } else if (knob == "level1_budget_cap") {
      *out = admission.level1_budget_cap;
    } else if (knob == "rate_qps") {
      *out = options_.rate_limit_qps;
    } else if (knob == "rate_burst") {
      *out = options_.rate_limit_burst;
    } else {
      return false;
    }
    return true;
  };
  if (verb == "get" && tokens.size() == 2) {
    double value = 0;
    if (!knob_value(tokens[1], &value)) {
      return "error: unknown knob " + tokens[1] + "\n";
    }
    return tokens[1] + " = " + FormatKnob(value) + "\n";
  }
  if (verb == "set" && tokens.size() == 3) {
    char* end = nullptr;
    const double value = std::strtod(tokens[2].c_str(), &end);
    if (end != tokens[2].c_str() + tokens[2].size()) {
      return "error: bad value " + tokens[2] + "\n";
    }
    const std::string& knob = tokens[1];
    AdmissionOptions admission = queue_.options();
    if (knob == "capacity") {
      admission.capacity = static_cast<int>(value);
      // Re-derive the dependent watermarks from the new capacity.
      admission.shed_low_watermark = 0;
      admission.hard_capacity = 0;
      queue_.UpdateOptions(admission);
    } else if (knob == "shed_low") {
      admission.shed_low_watermark = static_cast<int>(value);
      queue_.UpdateOptions(admission);
    } else if (knob == "hard_capacity") {
      admission.hard_capacity = static_cast<int>(value);
      queue_.UpdateOptions(admission);
    } else if (knob == "level1_budget_cap") {
      admission.level1_budget_cap = static_cast<int>(value);
      queue_.UpdateOptions(admission);
    } else if (knob == "rate_qps") {
      // Reactor-thread-only state: admin commands and bucket creation both
      // run here, so no lock is needed. Applies to new connections.
      options_.rate_limit_qps = value;
    } else if (knob == "rate_burst") {
      options_.rate_limit_burst = value;
    } else {
      return "error: unknown knob " + knob + "\n";
    }
    double now = 0;
    knob_value(knob, &now);
    return "ok: " + knob + " = " + FormatKnob(now) + "\n";
  }
  return "error: usage: get <knob> | set <knob> <value> | drain | "
         "stats-clear\n";
}

void Frontend::HandleQueryJson(const ConnPtr& conn, const std::string& body,
                               bool framed) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries_received;
  }
  int64_t client_id = 0;
  const auto bad_request = [&](const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    SendResponse(conn, framed, 400,
                 ErrorJson(client_id, "error",
                           util::Status::InvalidArgument(message)));
  };

  util::Result<net::json::Value> parsed = net::json::Parse(body);
  if (!parsed.ok()) {
    bad_request(parsed.status().message());
    return;
  }
  if (const net::json::Value* id = parsed->Find("id");
      id != nullptr && id->is_number()) {
    if (util::Result<int64_t> as_int = id->AsInt(); as_int.ok()) {
      client_id = *as_int;
    }
  }
  const net::json::Value* slot = parsed->Find("slot");
  const net::json::Value* roads = parsed->Find("roads");
  if (slot == nullptr || !slot->is_number() || roads == nullptr ||
      !roads->is_array()) {
    bad_request("query needs {\"slot\": int, \"roads\": [int, ...]}");
    return;
  }
  QueryRequest request;
  if (util::Result<int64_t> s = slot->AsInt(); s.ok()) {
    request.slot = static_cast<int>(*s);
  } else {
    bad_request("slot: " + s.status().message());
    return;
  }
  request.queried.reserve(roads->AsArray().size());
  for (const net::json::Value& road : roads->AsArray()) {
    util::Result<int64_t> r =
        road.is_number() ? road.AsInt()
                         : util::Result<int64_t>(
                               util::Status::InvalidArgument("not a number"));
    if (!r.ok()) {
      bad_request("roads: " + r.status().message());
      return;
    }
    request.queried.push_back(static_cast<graph::RoadId>(*r));
  }
  if (const net::json::Value* selector = parsed->Find("selector");
      selector != nullptr && selector->is_string()) {
    bool ok = false;
    request.selector = ParseSelector(selector->AsString(), &ok);
    if (!ok) {
      bad_request("unknown selector: " + selector->AsString());
      return;
    }
  }
  if (const net::json::Value* cap = parsed->Find("budget_cap");
      cap != nullptr && cap->is_number()) {
    if (util::Result<int64_t> c = cap->AsInt(); c.ok() && *c > 0) {
      request.budget_cap = static_cast<int>(*c);
    }
  }

  // Rate limit before admission: a client over its budget gets an explicit
  // 429 and costs the queue nothing.
  if (options_.rate_limit_qps > 0) {
    if (!conn->bucket) {
      conn->bucket = std::make_unique<net::TokenBucket>(
          options_.rate_limit_qps, options_.rate_limit_burst, clock_);
    }
    if (!conn->bucket->TryAcquire()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rate_limited;
      }
      SendResponse(
          conn, framed, 429,
          ErrorJson(client_id, "rate_limited",
                    util::Status::FailedPrecondition(
                        "per-connection rate limit exceeded; retry later")));
      return;
    }
  }
  if (draining()) {
    SendResponse(conn, framed, 503,
                 ErrorJson(client_id, "rejected",
                           util::Status::FailedPrecondition(
                               "front-end draining: no new queries")));
    return;
  }

  std::vector<graph::RoadId> original_roads = request.queried;
  QueryCoalescer::CanonicalizeRoads(&request);
  const ShedLevel admitted = queue_.Admit(
      [this, conn, request = std::move(request),
       original_roads = std::move(original_roads), client_id,
       framed](ShedLevel level) mutable {
        ServeAdmitted(conn, std::move(request), std::move(original_roads),
                      client_id, framed, level);
      });
  if (admitted == ShedLevel::kReject) {
    // The ladder's last rung is still an explicit answer, never a silent
    // drop — the client learns it must back off.
    SendResponse(conn, framed, 503,
                 ErrorJson(client_id, "rejected",
                           util::Status::FailedPrecondition(
                               "admission queue hard-full; backing off")));
  }
}

void Frontend::ServeAdmitted(const ConnPtr& conn, QueryRequest request,
                             std::vector<graph::RoadId> original_roads,
                             int64_t client_id, bool framed,
                             ShedLevel level) {
  if (level == ShedLevel::kBudgetCap) {
    const int cap = queue_.options().level1_budget_cap;
    if (cap > 0 && (request.budget_cap <= 0 || request.budget_cap > cap)) {
      request.budget_cap = cap;
    }
  }

  util::Status status;
  QueryResponse response;
  bool coalesced = false;
  if (level == ShedLevel::kPeriodicFallback) {
    util::Result<QueryResponse> served =
        engine_.ServePeriodicFallback(request, world_);
    status = served.ok() ? util::Status::Ok() : served.status();
    if (served.ok()) response = std::move(*served);
  } else if (options_.enable_coalescing) {
    const std::string key = QueryCoalescer::KeyFor(request, level);
    auto [batch, is_leader] = coalescer_.Join(key, client_id);
    if (is_leader) {
      util::Result<QueryResponse> served = engine_.Serve(request, world_);
      status = served.ok() ? util::Status::Ok() : served.status();
      if (served.ok()) response = *served;
      const std::vector<int64_t> followers =
          coalescer_.Complete(key, batch, status, QueryResponse(response));
      if (!followers.empty()) {
        RecordCoalesceFanout(response.query_id, client_id, followers);
      }
    } else {
      coalesced = true;
      status = QueryCoalescer::Wait(batch, &response);
    }
  } else {
    util::Result<QueryResponse> served = engine_.Serve(request, world_);
    status = served.ok() ? util::Status::Ok() : served.status();
    if (served.ok()) response = std::move(*served);
  }

  if (!status.ok()) {
    SendResponse(conn, framed, HttpStatusFor(status),
                 ErrorJson(client_id, "error", status));
    return;
  }
  SendResponse(conn, framed, 200,
               ResponseJson(response, request.queried, original_roads,
                            client_id, level, coalesced));
}

void Frontend::RecordCoalesceFanout(
    int64_t query_id, int64_t leader_client,
    const std::vector<int64_t>& followers) {
  obs::RecordEvent(obs::EventKind::kCoalesceFanout, query_id,
                   static_cast<int64_t>(followers.size()), leader_client);
  std::string line = "query " + std::to_string(query_id) +
                     ": leader client " + std::to_string(leader_client) +
                     " + " + std::to_string(followers.size()) +
                     " followers [";
  for (size_t i = 0; i < followers.size(); ++i) {
    if (i > 0) line += ", ";
    line += std::to_string(followers[i]);
  }
  line += "]";
  CROWDRTSE_LOG(Info, "coalesce fan-out: " + line);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  coalesce_fanout_log_.push_back(std::move(line));
  while (coalesce_fanout_log_.size() > 16) coalesce_fanout_log_.pop_front();
}

void Frontend::SendResponse(const ConnPtr& conn, bool framed,
                            int http_status, const std::string& json_body) {
  if (framed) {
    SendRaw(conn, net::EncodeFrame(json_body));
  } else {
    SendRaw(conn, net::RenderHttpResponse(http_status, json_body,
                                          "application/json"));
  }
}

void Frontend::SendRaw(const ConnPtr& conn, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->dead.load(std::memory_order_acquire)) return;
  conn->outbox += bytes;
  TryFlushLocked(conn);
}

bool Frontend::TryFlushLocked(const ConnPtr& conn) {
  while (!conn->outbox.empty()) {
    const ssize_t n = ::send(conn->fd.get(), conn->outbox.data(),
                             conn->outbox.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // Peer is gone; stop writing. The reactor reaps the fd on its next
      // EPOLLERR/EPOLLHUP event.
      conn->dead.store(true, std::memory_order_release);
      conn->outbox.clear();
      return false;
    }
    conn->outbox.erase(0, static_cast<size_t>(n));
  }
  const bool need_write = !conn->outbox.empty();
  if (need_write != conn->want_write) {
    conn->want_write = need_write;
    const util::Status modified =
        loop_.Modify(conn->fd.get(), true, need_write);
    if (modified.ok() && need_write) loop_.Wakeup();
  }
  return true;
}

void Frontend::CloseConnection(int fd) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    conn = it->second;
    connections_.erase(it);
  }
  conn->dead.store(true, std::memory_order_release);
  (void)loop_.Remove(fd);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.connections_closed;
}

}  // namespace crowdrtse::server
