#ifndef CROWDRTSE_SERVER_WORKER_REGISTRY_H_
#define CROWDRTSE_SERVER_WORKER_REGISTRY_H_

#include <vector>

#include "crowd/cost_model.h"
#include "crowd/worker.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::server {

/// Options of the dynamic worker population.
struct WorkerRegistryOptions {
  int num_workers = 1500;
  /// Per-slot probability that a worker moves to an adjacent road (workers
  /// are travelling, so their announced location drifts along the graph).
  double move_probability = 0.6;
  /// Per-slot probability that a worker logs off; an equal-size inflow
  /// keeps the population stationary.
  double churn_probability = 0.02;
  /// Answer quality spread (as crowd::WorkerPoolOptions).
  double min_bias = 0.96;
  double max_bias = 1.04;
  double min_noise_kmh = 0.5;
  double max_noise_kmh = 3.0;
};

/// The platform's live view of the crowd: which worker is on which road
/// right now. The paper's online stage selects crowdsourced roads from the
/// roads "where workers are currently distributed" — this registry is the
/// source of that R^w, and it changes from slot to slot as workers travel
/// (the reason fixed-observation-site regression baselines break down).
class WorkerRegistry {
 public:
  /// Spawns the initial population uniformly over the network's roads.
  /// The graph must outlive the registry.
  WorkerRegistry(const graph::Graph& graph,
                 const WorkerRegistryOptions& options, uint64_t seed);

  /// Wraps an explicit worker snapshot — e.g. a shard-local projection of
  /// a global registry with road ids remapped to the shard's subgraph.
  /// The snapshot's order is preserved (task assignment scans workers in
  /// vector order, so a projection that keeps the global order reproduces
  /// the global assignment on the shard). AdvanceSlot works as usual over
  /// `graph`.
  WorkerRegistry(const graph::Graph& graph,
                 std::vector<crowd::Worker> workers,
                 const WorkerRegistryOptions& options, uint64_t seed);

  /// Replaces the whole population (e.g. re-projection after the global
  /// registry advanced a slot). Must not race with in-flight queries.
  void ReplaceWorkers(std::vector<crowd::Worker> workers);

  /// Advances one time slot: workers travel to adjacent roads and a small
  /// fraction of the population churns.
  void AdvanceSlot();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const std::vector<crowd::Worker>& workers() const { return workers_; }

  /// Distinct roads currently hosting at least `min_workers` workers —
  /// the candidate set R^w for OCS.
  std::vector<graph::RoadId> CoveredRoads(int min_workers = 1) const;

  /// Roads whose present workers can fill the road's full answer quota
  /// (CountOn(road) >= cost). Feeding OCS this stricter candidate set
  /// guarantees the later task assignment is fully staffed, at the price
  /// of a smaller R^w.
  std::vector<graph::RoadId> StaffableRoads(
      const crowd::CostModel& costs) const;

  /// Number of workers currently on `road`.
  int CountOn(graph::RoadId road) const;

  /// The workers currently on `road` (e.g. to scope a per-worker
  /// crowd::FaultPlan to one road's population). Pointers are valid until
  /// the next AdvanceSlot.
  std::vector<const crowd::Worker*> WorkersOn(graph::RoadId road) const;

  /// Total slots advanced since construction.
  int current_slot_offset() const { return slot_offset_; }

 private:
  crowd::Worker SpawnWorker(crowd::WorkerId id);

  const graph::Graph& graph_;
  WorkerRegistryOptions options_;
  util::Rng rng_;
  std::vector<crowd::Worker> workers_;
  crowd::WorkerId next_id_ = 0;
  int slot_offset_ = 0;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_WORKER_REGISTRY_H_
