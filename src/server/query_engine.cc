#include "server/query_engine.h"

#include <algorithm>
#include <utility>

#include "crowd/task_assignment.h"
#include "gsp/uncertainty.h"
#include "traffic/time_slots.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::server {
namespace {

int PoolSizeOrDefault(int requested) { return requested > 0 ? requested : 4; }

}  // namespace

std::string EngineStats::Report() const {
  std::string out =
      "EngineStats: served " + std::to_string(queries_served) +
      ", rejected " + std::to_string(queries_rejected) + ", failed " +
      std::to_string(queries_failed) + ", paid " +
      std::to_string(total_paid) + " units\n";
  out += "  ocs:    " + ocs_latency.ToString() + "\n";
  out += "  crowd:  " + crowd_latency.ToString() + "\n";
  out += "  gsp:    " + gsp_latency.ToString() + "\n";
  out += "  serve:  " + serve_latency.ToString() + "\n";
  out += "  dispatch: retries " + std::to_string(crowd_retries) +
         ", reassigned " + std::to_string(crowd_reassignments) +
         ", deadline misses " + std::to_string(crowd_deadline_misses) +
         ", late " + std::to_string(reports_late) + ", duplicate " +
         std::to_string(reports_duplicate) + ", outlier " +
         std::to_string(reports_outlier) + "\n";
  out += "  degraded: " + std::to_string(roads_degraded) +
         " roads (deadline " + std::to_string(degraded_deadline) +
         ", outlier " + std::to_string(degraded_outlier) + ", unstaffed " +
         std::to_string(degraded_unstaffed) + ")\n";
  out += "  gamma:  " + gamma_cache.ToString();
  return out;
}

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim)
    : QueryEngine(system, registry, ledger, costs, crowd_sim, Options{}) {}

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim, Options options)
    : system_(system),
      registry_(registry),
      ledger_(ledger),
      costs_(costs),
      crowd_sim_(crowd_sim),
      options_(options),
      propagators_(system.model(), system.config().gsp,
                   PoolSizeOrDefault(options.propagator_pool_size)) {}

util::Status QueryEngine::RejectQuery(const util::Status& status) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++queries_rejected_;
  return status;
}

util::Status QueryEngine::FailQuery(int64_t query_id, int granted, int paid,
                                    const util::Status& status) {
  // The crowd (if it ran) was really paid: that spend must not vanish from
  // the campaign accounting just because a later phase failed.
  (void)ledger_.Settle(query_id, granted, paid);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++queries_failed_;
  total_paid_ += paid;
  return status;
}

util::Result<QueryResponse> QueryEngine::Serve(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  util::Timer serve_timer;
  // Validate the request up front — before any budget is granted and any
  // worker paid, so a malformed query cannot leak campaign spend.
  if (request.queried.empty()) {
    return RejectQuery(util::Status::InvalidArgument("query has no roads"));
  }
  if (!traffic::IsValidSlot(request.slot) ||
      request.slot >= world.num_slots()) {
    return RejectQuery(util::Status::InvalidArgument(
        "slot out of range: " + std::to_string(request.slot)));
  }
  const int num_roads = system_.graph().num_roads();
  for (graph::RoadId r : request.queried) {
    if (r < 0 || r >= num_roads) {
      return RejectQuery(util::Status::InvalidArgument(
          "queried road out of range: " + std::to_string(r)));
    }
  }
  std::vector<graph::RoadId> queried = request.queried;
  std::sort(queried.begin(), queried.end());
  queried.erase(std::unique(queried.begin(), queried.end()), queried.end());

  const int64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  const int budget = ledger_.Reserve(query_id);
  if (budget <= 0) {
    return RejectQuery(util::Status::FailedPrecondition(
        "campaign budget exhausted: " + ledger_.Report()));
  }

  QueryResponse response;
  response.query_id = query_id;
  response.granted_budget = budget;

  // Step 1 — OCS over the roads workers currently cover (optionally only
  // those whose crowd can fill the full answer quota).
  util::Timer timer;
  const std::vector<graph::RoadId> worker_roads =
      options_.require_full_staffing ? registry_.StaffableRoads(costs_)
                                     : registry_.CoveredRoads();
  util::Result<ocs::OcsSolution> selection = system_.SelectRoads(
      request.slot, queried, worker_roads, costs_, budget,
      request.selector);
  if (!selection.ok()) {
    return FailQuery(query_id, budget, 0, selection.status());
  }
  response.ocs_millis = timer.ElapsedMillis();
  ocs_latency_.Record(response.ocs_millis);

  // Step 2 — crowdsourcing round: assign concrete workers to the selected
  // roads, then collect. Legacy path: every assigned worker reports once,
  // synchronously. Fault-tolerant path: the dispatch controller drives the
  // round under deadlines, retry/backoff, straggler reassignment and
  // report rejection; roads whose probes all fail come back degraded, not
  // as errors. The simulator's RNG is stateful, so either way this phase
  // runs one query at a time.
  timer.Reset();
  std::vector<crowd::DegradeReason> degraded_reasons;
  crowd::DispatchStats dispatch_stats;
  util::Result<crowd::CrowdRound> round = [&] {
    std::lock_guard<std::mutex> lock(crowd_mutex_);
    util::Result<crowd::AssignmentPlan> plan = crowd::AssignTasks(
        selection->roads, costs_, registry_.workers());
    if (!plan.ok()) return util::Result<crowd::CrowdRound>(plan.status());
    if (!options_.fault_tolerant_dispatch) {
      response.underfilled_roads = plan->underfilled_roads;
      return crowd_sim_.ProbeWithAssignments(*plan, registry_.workers(),
                                             world, request.slot);
    }
    crowd::DispatchController controller(options_.dispatch,
                                         options_.clock);
    util::Result<crowd::DispatchRound> dispatched = controller.Run(
        *plan, registry_.workers(), costs_, options_.fault_plan,
        [&](const crowd::Worker& worker, graph::RoadId road) {
          return crowd_sim_.GenerateAnswer(worker, road, world,
                                           request.slot);
        });
    if (!dispatched.ok()) {
      return util::Result<crowd::CrowdRound>(dispatched.status());
    }
    response.underfilled_roads = std::move(dispatched->underfilled_roads);
    response.degraded_roads = std::move(dispatched->degraded_roads);
    response.dispatch_span_ms = dispatched->span_ms;
    degraded_reasons = std::move(dispatched->degraded_reasons);
    dispatch_stats = dispatched->stats;
    return util::Result<crowd::CrowdRound>(std::move(dispatched->round));
  }();
  if (!round.ok()) {
    return FailQuery(query_id, budget, 0, round.status());
  }
  response.crowd_millis = timer.ElapsedMillis();
  crowd_latency_.Record(response.crowd_millis);
  response.paid = round->total_paid;

  // Step 3 — GSP over the roads that actually produced answers. Leases a
  // propagator so concurrent queries never share a (non-reentrant)
  // parallel propagator or respawn its thread pool.
  timer.Reset();
  std::vector<double> probed;
  probed.reserve(round->probes.size());
  for (const crowd::ProbeResult& p : round->probes) {
    response.probed_roads.push_back(p.road);
    probed.push_back(p.probed_kmh);
  }
  util::Result<gsp::GspResult> estimate = [&] {
    gsp::PropagatorPool::Lease propagator = propagators_.Acquire();
    return propagator->Propagate(request.slot, response.probed_roads,
                                 probed);
  }();
  if (!estimate.ok()) {
    return FailQuery(query_id, budget, response.paid, estimate.status());
  }
  response.gsp_millis = timer.ElapsedMillis();
  gsp_latency_.Record(response.gsp_millis);
  response.gsp_sweeps = estimate->sweeps;

  response.queried_speeds.reserve(request.queried.size());
  for (graph::RoadId r : request.queried) {
    response.queried_speeds.push_back(
        estimate->speeds[static_cast<size_t>(r)]);
  }

  // Degradation ladder (fault-tolerant path): a queried road whose probes
  // all failed answers with its RTF periodic mean mu_i^t instead of a
  // GSP value propagated from probes it never had, and every queried road
  // reports a variance — widened to the prior for degraded roads.
  if (options_.fault_tolerant_dispatch) {
    if (!response.degraded_roads.empty()) {
      const std::vector<double> fallback = system_.PeriodicMeans(
          request.slot, response.degraded_roads);
      for (size_t i = 0; i < request.queried.size(); ++i) {
        const auto it = std::lower_bound(response.degraded_roads.begin(),
                                         response.degraded_roads.end(),
                                         request.queried[i]);
        if (it != response.degraded_roads.end() &&
            *it == request.queried[i]) {
          response.queried_speeds[i] = fallback[static_cast<size_t>(
              it - response.degraded_roads.begin())];
        }
      }
    }
    util::Result<std::vector<double>> variances =
        gsp::DegradedAwareVariances(system_.model(), request.slot,
                                    response.probed_roads,
                                    response.degraded_roads,
                                    options_.degraded_variance_inflation);
    if (!variances.ok()) {
      return FailQuery(query_id, budget, response.paid, variances.status());
    }
    response.queried_variances.reserve(request.queried.size());
    for (graph::RoadId r : request.queried) {
      response.queried_variances.push_back(
          (*variances)[static_cast<size_t>(r)]);
    }
  }

  const util::Status settled =
      ledger_.Settle(query_id, budget, response.paid);
  if (!settled.ok()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_failed_;
    return settled;
  }
  serve_latency_.Record(serve_timer.ElapsedMillis());
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++queries_served_;
  total_paid_ += response.paid;
  if (options_.fault_tolerant_dispatch) {
    roads_degraded_ += static_cast<int64_t>(response.degraded_roads.size());
    for (crowd::DegradeReason reason : degraded_reasons) {
      switch (reason) {
        case crowd::DegradeReason::kDeadline:
          ++degraded_deadline_;
          break;
        case crowd::DegradeReason::kOutlier:
          ++degraded_outlier_;
          break;
        case crowd::DegradeReason::kUnstaffed:
          ++degraded_unstaffed_;
          break;
      }
    }
    crowd_retries_ += dispatch_stats.retries;
    crowd_reassignments_ += dispatch_stats.reassignments;
    crowd_deadline_misses_ += dispatch_stats.deadline_misses;
    reports_late_ += dispatch_stats.late_reports;
    reports_duplicate_ += dispatch_stats.duplicate_reports;
    reports_outlier_ += dispatch_stats.outlier_reports;
  }
  return response;
}

EngineStats QueryEngine::stats() const {
  EngineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot.queries_served = queries_served_;
    snapshot.queries_rejected = queries_rejected_;
    snapshot.queries_failed = queries_failed_;
    snapshot.total_paid = total_paid_;
    snapshot.roads_degraded = roads_degraded_;
    snapshot.degraded_deadline = degraded_deadline_;
    snapshot.degraded_outlier = degraded_outlier_;
    snapshot.degraded_unstaffed = degraded_unstaffed_;
    snapshot.crowd_retries = crowd_retries_;
    snapshot.crowd_reassignments = crowd_reassignments_;
    snapshot.crowd_deadline_misses = crowd_deadline_misses_;
    snapshot.reports_late = reports_late_;
    snapshot.reports_duplicate = reports_duplicate_;
    snapshot.reports_outlier = reports_outlier_;
  }
  snapshot.ocs_latency = ocs_latency_.Snapshot();
  snapshot.crowd_latency = crowd_latency_.Snapshot();
  snapshot.gsp_latency = gsp_latency_.Snapshot();
  snapshot.serve_latency = serve_latency_.Snapshot();
  snapshot.gamma_cache = system_.CorrelationCacheStats();
  snapshot.total_ocs_millis = snapshot.ocs_latency.sum_ms;
  snapshot.total_crowd_millis = snapshot.crowd_latency.sum_ms;
  snapshot.total_gsp_millis = snapshot.gsp_latency.sum_ms;
  return snapshot;
}

}  // namespace crowdrtse::server
