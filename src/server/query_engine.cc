#include "server/query_engine.h"

#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::server {

std::string EngineStats::Report() const {
  const double served =
      queries_served > 0 ? static_cast<double>(queries_served) : 1.0;
  return "EngineStats: served " + std::to_string(queries_served) +
         ", rejected " + std::to_string(queries_rejected) + ", paid " +
         std::to_string(total_paid) + " units; mean latency ms: OCS " +
         util::FormatDouble(total_ocs_millis / served, 2) + ", crowd " +
         util::FormatDouble(total_crowd_millis / served, 2) + ", GSP " +
         util::FormatDouble(total_gsp_millis / served, 2);
}

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim)
    : QueryEngine(system, registry, ledger, costs, crowd_sim, Options{}) {}

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim, Options options)
    : system_(system),
      registry_(registry),
      ledger_(ledger),
      costs_(costs),
      crowd_sim_(crowd_sim),
      options_(options) {}

util::Result<QueryResponse> QueryEngine::Serve(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  if (request.queried.empty()) {
    return util::Status::InvalidArgument("query has no roads");
  }
  const int budget = ledger_.NextQueryBudget();
  if (budget <= 0) {
    ++stats_.queries_rejected;
    return util::Status::FailedPrecondition(
        "campaign budget exhausted: " + ledger_.Report());
  }

  QueryResponse response;
  response.query_id = next_query_id_++;
  response.granted_budget = budget;

  // Step 1 — OCS over the roads workers currently cover (optionally only
  // those whose crowd can fill the full answer quota).
  util::Timer timer;
  const std::vector<graph::RoadId> worker_roads =
      options_.require_full_staffing ? registry_.StaffableRoads(costs_)
                                     : registry_.CoveredRoads();
  util::Result<ocs::OcsSolution> selection = system_.SelectRoads(
      request.slot, request.queried, worker_roads, costs_, budget,
      request.selector);
  if (!selection.ok()) return selection.status();
  response.ocs_millis = timer.ElapsedMillis();

  // Step 2 — crowdsourcing round: assign concrete workers to the selected
  // roads (each reports once with her own bias/noise), then collect.
  timer.Reset();
  util::Result<crowd::AssignmentPlan> plan = crowd::AssignTasks(
      selection->roads, costs_, registry_.workers());
  if (!plan.ok()) return plan.status();
  response.underfilled_roads = plan->underfilled_roads;
  util::Result<crowd::CrowdRound> round = crowd_sim_.ProbeWithAssignments(
      *plan, registry_.workers(), world, request.slot);
  if (!round.ok()) return round.status();
  response.crowd_millis = timer.ElapsedMillis();
  response.paid = round->total_paid;

  // Step 3 — GSP over the roads that actually produced answers.
  timer.Reset();
  std::vector<double> probed;
  probed.reserve(round->probes.size());
  for (const crowd::ProbeResult& p : round->probes) {
    response.probed_roads.push_back(p.road);
    probed.push_back(p.probed_kmh);
  }
  util::Result<gsp::GspResult> estimate =
      system_.Estimate(request.slot, response.probed_roads, probed);
  if (!estimate.ok()) return estimate.status();
  response.gsp_millis = timer.ElapsedMillis();
  response.gsp_sweeps = estimate->sweeps;

  response.queried_speeds.reserve(request.queried.size());
  for (graph::RoadId r : request.queried) {
    if (r < 0 || static_cast<size_t>(r) >= estimate->speeds.size()) {
      return util::Status::InvalidArgument("queried road out of range: " +
                                           std::to_string(r));
    }
    response.queried_speeds.push_back(
        estimate->speeds[static_cast<size_t>(r)]);
  }

  CROWDRTSE_RETURN_IF_ERROR(
      ledger_.Settle(response.query_id, budget, response.paid));
  ++stats_.queries_served;
  stats_.total_paid += response.paid;
  stats_.total_ocs_millis += response.ocs_millis;
  stats_.total_crowd_millis += response.crowd_millis;
  stats_.total_gsp_millis += response.gsp_millis;
  return response;
}

}  // namespace crowdrtse::server
