#include "server/query_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "crowd/task_assignment.h"
#include "gsp/uncertainty.h"
#include "traffic/time_slots.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdrtse::server {
namespace {

int PoolSizeOrDefault(int requested) { return requested > 0 ? requested : 4; }

}  // namespace

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim)
    : QueryEngine(system, registry, ledger, costs, crowd_sim, Options{}) {}

QueryEngine::QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
                         BudgetLedger& ledger,
                         const crowd::CostModel& costs,
                         crowd::CrowdSimulator& crowd_sim, Options options)
    : system_(system),
      registry_(registry),
      ledger_(ledger),
      costs_(costs),
      crowd_sim_(crowd_sim),
      options_(options),
      propagators_(system.model(), system.config().gsp,
                   PoolSizeOrDefault(options.propagator_pool_size)),
      traces_(util::trace::TraceCollector::Options{
          options.trace_ring_size, options.trace_slow_log_size}),
      profiler_(&metrics_,
                obs::StageProfiler::Options{options.profile_sample_rate}) {
  RegisterInstruments();
}

void QueryEngine::RegisterInstruments() {
  queries_served_ = &metrics_.GetCounter(
      "crowdrtse_queries_served_total", "queries answered successfully");
  queries_rejected_ = &metrics_.GetCounter(
      "crowdrtse_queries_rejected_total",
      "queries refused up front (bad request or campaign budget dry)");
  queries_failed_ = &metrics_.GetCounter(
      "crowdrtse_queries_failed_total",
      "queries that died mid-pipeline after their budget grant");
  paid_units_ = &metrics_.GetCounter("crowdrtse_paid_units_total",
                                      "answer-units paid to the crowd");
  roads_degraded_ = &metrics_.GetCounter(
      "crowdrtse_roads_degraded_total",
      "selected roads that fell down the degradation ladder");
  degraded_deadline_ = &metrics_.GetCounter(
      "crowdrtse_degraded_deadline_total",
      "roads degraded because every attempt dropped out or timed out");
  degraded_outlier_ = &metrics_.GetCounter(
      "crowdrtse_degraded_outlier_total",
      "roads degraded because all answers were rejected as implausible");
  degraded_unstaffed_ = &metrics_.GetCounter(
      "crowdrtse_degraded_unstaffed_total",
      "roads degraded because no worker was there to ask");
  degraded_load_shed_ = &metrics_.GetCounter(
      "crowdrtse_degraded_load_shed_total",
      "roads answered from the periodic fallback by admission shedding");
  queries_shed_ = &metrics_.GetCounter(
      "crowdrtse_queries_shed_total",
      "queries answered entirely from the periodic fallback");
  crowd_retries_ = &metrics_.GetCounter(
      "crowdrtse_dispatch_retries_total",
      "re-dispatches after a failed crowd attempt");
  crowd_reassignments_ = &metrics_.GetCounter(
      "crowdrtse_dispatch_reassignments_total",
      "retries that moved to a fresh worker");
  crowd_deadline_misses_ = &metrics_.GetCounter(
      "crowdrtse_dispatch_deadline_misses_total",
      "attempts written off at their deadline");
  reports_late_ = &metrics_.GetCounter(
      "crowdrtse_reports_late_total", "reports that arrived past deadline");
  reports_duplicate_ = &metrics_.GetCounter(
      "crowdrtse_reports_duplicate_total",
      "reports dropped because the task was already answered");
  reports_outlier_ = &metrics_.GetCounter(
      "crowdrtse_reports_outlier_total",
      "reports rejected by the plausibility window or MAD filter");
  ocs_latency_ = &metrics_.GetHistogram("crowdrtse_ocs_latency_ms",
                                         "OCS road-selection phase latency");
  crowd_latency_ = &metrics_.GetHistogram(
      "crowdrtse_crowd_latency_ms", "crowdsourcing round wall latency");
  gsp_latency_ = &metrics_.GetHistogram("crowdrtse_gsp_latency_ms",
                                         "GSP propagation phase latency");
  serve_latency_ = &metrics_.GetHistogram(
      "crowdrtse_serve_latency_ms", "end-to-end Serve latency (served only)");

  // Live component state surfaces as callback gauges, read at render time.
  metrics_.RegisterCallbackGauge(
      "crowdrtse_gamma_cache_resident_bytes",
      "resident footprint of the Gamma_R correlation cache",
      [this] { return system_.CorrelationCacheStats().resident_bytes; });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_gamma_cache_resident_tables",
      "correlation tables currently resident",
      [this] { return system_.CorrelationCacheStats().resident_tables; });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_ledger_reserved_outstanding",
      "budget units earmarked by in-flight reservations",
      [this] { return ledger_.reserved_outstanding(); });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_ledger_remaining_units",
      "campaign budget not yet spent or reserved",
      [this] { return ledger_.remaining(); });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_gsp_leases_in_flight",
      "propagator-pool leases currently held by GSP phases", [this] {
        return static_cast<int64_t>(propagators_.size() -
                                    propagators_.available());
      });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_traces_collected", "sampled query traces collected",
      [this] { return traces_.collected(); });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_gsp_inv_variance_clamps_total",
      "GSP weights clamped to the inverse-variance ceiling (non-zero means "
      "degenerate RTF parameters reached the hot path; process-wide)",
      [] { return static_cast<int64_t>(rtf::InvVarianceClampCount()); });
}

QueryEngine::~QueryEngine() { Drain(); }

bool QueryEngine::EnterServe() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (draining_.load(std::memory_order_acquire)) return false;
  ++serves_in_flight_;
  return true;
}

void QueryEngine::ExitServe() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (--serves_in_flight_ == 0) drain_cv_.notify_all();
}

void QueryEngine::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  draining_.store(true, std::memory_order_release);
  drain_cv_.wait(lock, [this] { return serves_in_flight_ == 0; });
}

util::Status QueryEngine::ValidateRequest(
    const QueryRequest& request, const traffic::DayMatrix& world) const {
  if (request.queried.empty()) {
    return util::Status::InvalidArgument("query has no roads");
  }
  // One bound governs the slot: the world being served. (Previously this
  // also folded in the static kSlotsPerDay check with a message that hid
  // the actual limit — confusing for worlds with fewer slots.)
  if (request.slot < 0 || request.slot >= world.num_slots()) {
    return util::Status::InvalidArgument(
        "slot out of range: " + std::to_string(request.slot) +
        " not in [0, " + std::to_string(world.num_slots()) + ")");
  }
  const int num_roads = system_.graph().num_roads();
  for (graph::RoadId r : request.queried) {
    if (r < 0 || r >= num_roads) {
      return util::Status::InvalidArgument(
          "queried road out of range: " + std::to_string(r) + " not in [0, " +
          std::to_string(num_roads) + ")");
    }
  }
  return util::Status::Ok();
}

util::Status QueryEngine::RejectQuery(const util::Status& status) {
  queries_rejected_->Increment();
  return status;
}

util::Status QueryEngine::FailQuery(int64_t query_id, int granted, int paid,
                                    const util::Status& status) {
  // The crowd (if it ran) was really paid: that spend must not vanish from
  // the campaign accounting just because a later phase failed.
  (void)ledger_.Settle(query_id, granted, paid);
  queries_failed_->Increment();
  paid_units_->Increment(paid);
  return status;
}

util::Result<QueryResponse> QueryEngine::Serve(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  util::Timer serve_timer;
  if (!EnterServe()) {
    return RejectQuery(util::Status::FailedPrecondition(
        "engine draining: no new queries admitted"));
  }
  struct GateExit {
    QueryEngine* engine;
    ~GateExit() { engine->ExitServe(); }
  } gate_exit{this};
  // Validate the request up front — before any budget is granted and any
  // worker paid, so a malformed query cannot leak campaign spend.
  const util::Status valid = ValidateRequest(request, world);
  if (!valid.ok()) return RejectQuery(valid);
  std::vector<graph::RoadId> queried = request.queried;
  std::sort(queried.begin(), queried.end());
  queried.erase(std::unique(queried.begin(), queried.end()), queried.end());

  const int64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);

  // Sampled queries get a trace; every Span below attaches to it through
  // the thread-local installed by ScopedTrace, so the deeper layers need no
  // plumbing. Unsampled queries pay one thread-local read per span site.
  // When a sharded router already installed an ambient trace on this
  // thread, adopt it: the router owns sampling, collection, and the
  // summary for cross-shard queries, and the spans below stitch into its
  // span tree instead of starting a disconnected per-shard one.
  const bool adopted_trace = util::trace::ActiveTrace() != nullptr;
  std::shared_ptr<util::trace::Trace> trace;
  if (!adopted_trace &&
      util::trace::ShouldSample(options_.trace_sample_rate,
                                static_cast<uint64_t>(query_id))) {
    trace =
        std::make_shared<util::trace::Trace>(query_id, options_.clock);
  }
  // Collects the finished trace on every exit path. Declared before the
  // ScopedTrace and the spans so it runs after they have all closed.
  struct Collect {
    util::trace::TraceCollector& collector;
    std::shared_ptr<util::trace::Trace> trace;
    ~Collect() {
      if (trace) collector.Collect(std::move(trace));
    }
  } collect{traces_, trace};
  // Only install a scope for a trace we created — installing a null one
  // would clear the router's ambient trace for the whole sub-serve.
  std::optional<util::trace::ScopedTrace> scoped;
  if (trace) scoped.emplace(trace.get());
  // Stage profiling mirrors the trace adoption: an ambient scope (the
  // router's) wins, otherwise this engine's own profiler samples by local
  // query id (no-op scope when unsampled or the rate is 0).
  std::optional<obs::ScopedProfile> profile;
  if (obs::ActiveProfiler() == nullptr) profile.emplace(&profiler_, query_id);
  util::trace::Span serve_span("serve");
  serve_span.Annotate("slot", static_cast<int64_t>(request.slot));
  serve_span.Annotate("queried", static_cast<int64_t>(queried.size()));

  const int budget = ledger_.Reserve(query_id);
  if (budget <= 0) {
    serve_span.Annotate("outcome", "budget_denied");
    return RejectQuery(util::Status::FailedPrecondition(
        "campaign budget exhausted: " + ledger_.Report()));
  }
  // Admission control's first shed rung: a capped query probes fewer roads.
  // The ledger reservation stays at the full grant; the unspent remainder
  // flows back when the query settles.
  const int spend_budget =
      request.budget_cap > 0 ? std::min(budget, request.budget_cap) : budget;
  serve_span.Annotate("budget", static_cast<int64_t>(spend_budget));

  QueryResponse response;
  response.query_id = query_id;
  response.granted_budget = budget;

  // Step 1 — OCS over the roads workers currently cover (optionally only
  // those whose crowd can fill the full answer quota).
  util::Timer timer;
  const std::vector<graph::RoadId> worker_roads =
      options_.require_full_staffing ? registry_.StaffableRoads(costs_)
                                     : registry_.CoveredRoads();
  util::Result<ocs::OcsSolution> selection = [&] {
    util::trace::Span ocs_span("ocs");
    ocs_span.Annotate("worker_roads",
                      static_cast<int64_t>(worker_roads.size()));
    obs::StageTimer stage(obs::Stage::kOcsSelect);
    util::Result<ocs::OcsSolution> solved = system_.SelectRoads(
        request.slot, queried, worker_roads, costs_, spend_budget,
        request.selector);
    if (solved.ok()) {
      ocs_span.Annotate("selected",
                        static_cast<int64_t>(solved->roads.size()));
      ocs_span.Annotate("objective", solved->objective);
      ocs_span.Annotate("cost", static_cast<int64_t>(solved->total_cost));
    }
    return solved;
  }();
  if (!selection.ok()) {
    serve_span.Annotate("outcome", "failed_ocs");
    return FailQuery(query_id, budget, 0, selection.status());
  }
  response.ocs_millis = timer.ElapsedMillis();
  ocs_latency_->Record(response.ocs_millis);

  // Step 2 — crowdsourcing round: assign concrete workers to the selected
  // roads, then collect. Legacy path: every assigned worker reports once,
  // synchronously. Fault-tolerant path: the dispatch controller drives the
  // round under deadlines, retry/backoff, straggler reassignment and
  // report rejection; roads whose probes all fail come back degraded, not
  // as errors. The simulator's RNG is stateful, so either way this phase
  // runs one query at a time.
  timer.Reset();
  crowd::DispatchStats dispatch_stats;
  util::Result<crowd::CrowdRound> round = [&] {
    std::lock_guard<std::mutex> lock(crowd_mutex_);
    util::trace::Span crowd_span("crowd");
    obs::StageTimer stage(obs::Stage::kCrowdDispatch);
    util::Result<crowd::AssignmentPlan> plan = [&] {
      util::trace::Span assign_span("crowd.assign");
      util::Result<crowd::AssignmentPlan> assigned = crowd::AssignTasks(
          selection->roads, costs_, registry_.workers());
      if (assigned.ok()) {
        assign_span.Annotate(
            "assignments",
            static_cast<int64_t>(assigned->assignments.size()));
      }
      return assigned;
    }();
    if (!plan.ok()) return util::Result<crowd::CrowdRound>(plan.status());
    if (!options_.fault_tolerant_dispatch) {
      response.underfilled_roads = plan->underfilled_roads;
      return crowd_sim_.ProbeWithAssignments(*plan, registry_.workers(),
                                             world, request.slot);
    }
    crowd::DispatchController controller(options_.dispatch,
                                         options_.clock);
    util::Result<crowd::DispatchRound> dispatched = controller.Run(
        *plan, registry_.workers(), costs_, options_.fault_plan,
        [&](const crowd::Worker& worker, graph::RoadId road) {
          return crowd_sim_.GenerateAnswer(worker, road, world,
                                           request.slot);
        });
    if (!dispatched.ok()) {
      return util::Result<crowd::CrowdRound>(dispatched.status());
    }
    response.underfilled_roads = std::move(dispatched->underfilled_roads);
    response.degraded_roads = std::move(dispatched->degraded_roads);
    response.degraded_reasons = std::move(dispatched->degraded_reasons);
    response.dispatch_span_ms = dispatched->span_ms;
    dispatch_stats = dispatched->stats;
    crowd_span.Annotate("degraded",
                        static_cast<int64_t>(response.degraded_roads.size()));
    return util::Result<crowd::CrowdRound>(std::move(dispatched->round));
  }();
  if (!round.ok()) {
    serve_span.Annotate("outcome", "failed_crowd");
    return FailQuery(query_id, budget, 0, round.status());
  }
  response.crowd_millis = timer.ElapsedMillis();
  crowd_latency_->Record(response.crowd_millis);
  response.paid = round->total_paid;

  // Step 3 — GSP over the roads that actually produced answers. Leases a
  // propagator so concurrent queries never share a (non-reentrant)
  // parallel propagator or respawn its thread pool.
  timer.Reset();
  std::vector<double> probed;
  probed.reserve(round->probes.size());
  for (const crowd::ProbeResult& p : round->probes) {
    response.probed_roads.push_back(p.road);
    probed.push_back(p.probed_kmh);
  }
  util::Result<gsp::GspResult> estimate = [&] {
    util::trace::Span gsp_span("gsp");
    gsp_span.Annotate("probed",
                      static_cast<int64_t>(response.probed_roads.size()));
    gsp::PropagatorPool::Lease propagator = [&] {
      util::trace::Span acquire_span("gsp.acquire");
      acquire_span.Annotate("available",
                            static_cast<int64_t>(propagators_.available()));
      return propagators_.Acquire();
    }();
    util::trace::Span propagate_span("gsp.propagate");
    obs::StageTimer stage(obs::Stage::kGspSweep);
    util::Result<gsp::GspResult> propagated = propagator->Propagate(
        request.slot, response.probed_roads, probed);
    if (propagated.ok()) {
      propagate_span.Annotate("sweeps",
                              static_cast<int64_t>(propagated->sweeps));
    }
    return propagated;
  }();
  if (!estimate.ok()) {
    serve_span.Annotate("outcome", "failed_gsp");
    return FailQuery(query_id, budget, response.paid, estimate.status());
  }
  response.gsp_millis = timer.ElapsedMillis();
  gsp_latency_->Record(response.gsp_millis);
  response.gsp_sweeps = estimate->sweeps;

  response.queried_speeds.reserve(request.queried.size());
  for (graph::RoadId r : request.queried) {
    response.queried_speeds.push_back(
        estimate->speeds[static_cast<size_t>(r)]);
  }

  // Degradation ladder (fault-tolerant path): a queried road whose probes
  // all failed answers with its RTF periodic mean mu_i^t instead of a
  // GSP value propagated from probes it never had, and every queried road
  // reports a variance — widened to the prior for degraded roads.
  if (options_.fault_tolerant_dispatch) {
    util::trace::Span degrade_span("degrade");
    degrade_span.Annotate(
        "degraded", static_cast<int64_t>(response.degraded_roads.size()));
    if (!response.degraded_roads.empty()) {
      const std::vector<double> fallback = system_.PeriodicMeans(
          request.slot, response.degraded_roads);
      for (size_t i = 0; i < request.queried.size(); ++i) {
        const auto it = std::lower_bound(response.degraded_roads.begin(),
                                         response.degraded_roads.end(),
                                         request.queried[i]);
        if (it != response.degraded_roads.end() &&
            *it == request.queried[i]) {
          response.queried_speeds[i] = fallback[static_cast<size_t>(
              it - response.degraded_roads.begin())];
        }
      }
    }
    util::Result<std::vector<double>> variances =
        gsp::DegradedAwareVariances(system_.model(), request.slot,
                                    response.probed_roads,
                                    response.degraded_roads,
                                    options_.degraded_variance_inflation);
    if (!variances.ok()) {
      degrade_span.End();
      serve_span.Annotate("outcome", "failed_degrade");
      return FailQuery(query_id, budget, response.paid, variances.status());
    }
    response.queried_variances.reserve(request.queried.size());
    for (graph::RoadId r : request.queried) {
      response.queried_variances.push_back(
          (*variances)[static_cast<size_t>(r)]);
    }
  }

  const util::Status settled = [&] {
    util::trace::Span settle_span("settle");
    return ledger_.Settle(query_id, budget, response.paid);
  }();
  if (!settled.ok()) {
    serve_span.Annotate("outcome", "failed_settle");
    queries_failed_->Increment();
    return settled;
  }
  serve_latency_->Record(serve_timer.ElapsedMillis());
  queries_served_->Increment();
  paid_units_->Increment(response.paid);
  if (options_.fault_tolerant_dispatch) {
    roads_degraded_->Increment(
        static_cast<int64_t>(response.degraded_roads.size()));
    for (crowd::DegradeReason reason : response.degraded_reasons) {
      switch (reason) {
        case crowd::DegradeReason::kDeadline:
          degraded_deadline_->Increment();
          break;
        case crowd::DegradeReason::kOutlier:
          degraded_outlier_->Increment();
          break;
        case crowd::DegradeReason::kUnstaffed:
          degraded_unstaffed_->Increment();
          break;
        case crowd::DegradeReason::kLoadShed:
          // Dispatch never produces this reason; shed accounting happens in
          // ServePeriodicFallback.
          degraded_load_shed_->Increment();
          break;
      }
    }
    crowd_retries_->Increment(dispatch_stats.retries);
    crowd_reassignments_->Increment(dispatch_stats.reassignments);
    crowd_deadline_misses_->Increment(dispatch_stats.deadline_misses);
    reports_late_->Increment(dispatch_stats.late_reports);
    reports_duplicate_->Increment(dispatch_stats.duplicate_reports);
    reports_outlier_->Increment(dispatch_stats.outlier_reports);
  }
  serve_span.Annotate("paid", static_cast<int64_t>(response.paid));
  serve_span.Annotate("outcome", "served");
  serve_span.End();
  if (trace) response.trace_summary = util::trace::Summarize(*trace);
  return response;
}

util::Result<QueryResponse> QueryEngine::ServePeriodicFallback(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  util::Timer serve_timer;
  if (!EnterServe()) {
    return RejectQuery(util::Status::FailedPrecondition(
        "engine draining: no new queries admitted"));
  }
  struct GateExit {
    QueryEngine* engine;
    ~GateExit() { engine->ExitServe(); }
  } gate_exit{this};
  const util::Status valid = ValidateRequest(request, world);
  if (!valid.ok()) return RejectQuery(valid);

  const int64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse response;
  response.query_id = query_id;

  // The bottom rung of the degradation ladder, entered from the front: the
  // whole query answers from the RTF periodic mean mu_i^t with variances
  // widened over the prior marginal — no budget, no crowd, no GSP. The
  // degraded set is the (deduplicated, sorted) query itself.
  response.degraded_roads = request.queried;
  std::sort(response.degraded_roads.begin(), response.degraded_roads.end());
  response.degraded_roads.erase(std::unique(response.degraded_roads.begin(),
                                            response.degraded_roads.end()),
                                response.degraded_roads.end());
  response.degraded_reasons.assign(response.degraded_roads.size(),
                                   crowd::DegradeReason::kLoadShed);

  const std::vector<double> fallback =
      system_.PeriodicMeans(request.slot, request.queried);
  response.queried_speeds = fallback;
  util::Result<std::vector<double>> variances = gsp::DegradedAwareVariances(
      system_.model(), request.slot, /*probed_roads=*/{},
      response.degraded_roads, options_.degraded_variance_inflation);
  if (!variances.ok()) {
    queries_failed_->Increment();
    return variances.status();
  }
  response.queried_variances.reserve(request.queried.size());
  for (graph::RoadId r : request.queried) {
    response.queried_variances.push_back(
        (*variances)[static_cast<size_t>(r)]);
  }

  serve_latency_->Record(serve_timer.ElapsedMillis());
  queries_served_->Increment();
  queries_shed_->Increment();
  roads_degraded_->Increment(
      static_cast<int64_t>(response.degraded_roads.size()));
  degraded_load_shed_->Increment(
      static_cast<int64_t>(response.degraded_roads.size()));
  return response;
}

EngineStats QueryEngine::stats() const {
  EngineStats snapshot;
  snapshot.queries_served = queries_served_->value();
  snapshot.queries_rejected = queries_rejected_->value();
  snapshot.queries_failed = queries_failed_->value();
  snapshot.total_paid = paid_units_->value();
  snapshot.roads_degraded = roads_degraded_->value();
  snapshot.degraded_deadline = degraded_deadline_->value();
  snapshot.degraded_outlier = degraded_outlier_->value();
  snapshot.degraded_unstaffed = degraded_unstaffed_->value();
  snapshot.degraded_load_shed = degraded_load_shed_->value();
  snapshot.queries_shed = queries_shed_->value();
  snapshot.crowd_retries = crowd_retries_->value();
  snapshot.crowd_reassignments = crowd_reassignments_->value();
  snapshot.crowd_deadline_misses = crowd_deadline_misses_->value();
  snapshot.reports_late = reports_late_->value();
  snapshot.reports_duplicate = reports_duplicate_->value();
  snapshot.reports_outlier = reports_outlier_->value();
  snapshot.ocs_latency = ocs_latency_->Snapshot();
  snapshot.crowd_latency = crowd_latency_->Snapshot();
  snapshot.gsp_latency = gsp_latency_->Snapshot();
  snapshot.serve_latency = serve_latency_->Snapshot();
  snapshot.gamma_cache = system_.CorrelationCacheStats();
  snapshot.total_ocs_millis = snapshot.ocs_latency.sum_ms;
  snapshot.total_crowd_millis = snapshot.crowd_latency.sum_ms;
  snapshot.total_gsp_millis = snapshot.gsp_latency.sum_ms;
  return snapshot;
}

}  // namespace crowdrtse::server
