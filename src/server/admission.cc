#include "server/admission.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"

namespace crowdrtse::server {

const char* ShedLevelName(ShedLevel level) {
  switch (level) {
    case ShedLevel::kNone:
      return "none";
    case ShedLevel::kBudgetCap:
      return "budget_cap";
    case ShedLevel::kPeriodicFallback:
      return "periodic_fallback";
    case ShedLevel::kReject:
      return "reject";
  }
  return "unknown";
}

AdmissionOptions AdmissionOptions::Normalized() const {
  AdmissionOptions out = *this;
  if (out.capacity < 1) out.capacity = 1;
  if (out.shed_low_watermark <= 0) {
    out.shed_low_watermark = std::max(1, out.capacity / 2);
  }
  if (out.hard_capacity <= 0) out.hard_capacity = 2 * out.capacity;
  // Keep the rungs ordered: low <= capacity <= hard.
  out.shed_low_watermark = std::min(out.shed_low_watermark, out.capacity);
  out.hard_capacity = std::max(out.hard_capacity, out.capacity);
  return out;
}

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options.Normalized()) {}

ShedLevel AdmissionQueue::Admit(Task task) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int depth = static_cast<int>(queue_.size());
  ShedLevel level;
  if (closed_ || depth >= options_.hard_capacity) {
    level = ShedLevel::kReject;
  } else if (depth >= options_.capacity) {
    level = ShedLevel::kPeriodicFallback;
  } else if (depth >= options_.shed_low_watermark) {
    level = ShedLevel::kBudgetCap;
  } else {
    level = ShedLevel::kNone;
  }
  obs::RecordEvent(obs::EventKind::kAdmissionVerdict,
                   static_cast<int64_t>(level), depth);
  if (level != last_level_) {
    obs::RecordEvent(obs::EventKind::kShedTransition,
                     static_cast<int64_t>(last_level_),
                     static_cast<int64_t>(level), depth);
    last_level_ = level;
  }
  switch (level) {
    case ShedLevel::kNone:
      ++stats_.admitted_full;
      break;
    case ShedLevel::kBudgetCap:
      ++stats_.admitted_budget_capped;
      break;
    case ShedLevel::kPeriodicFallback:
      ++stats_.admitted_fallback;
      break;
    case ShedLevel::kReject:
      ++stats_.rejected;
      return level;  // not enqueued
  }
  queue_.push_back(Queued{std::move(task), level});
  stats_.peak_depth =
      std::max<int64_t>(stats_.peak_depth, static_cast<int64_t>(queue_.size()));
  ready_.notify_one();
  return level;
}

bool AdmissionQueue::WaitAndRun() {
  Queued item;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and drained
    item = std::move(queue_.front());
    queue_.pop_front();
  }
  item.task(item.level);
  return true;
}

void AdmissionQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

int AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

AdmissionStats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AdmissionQueue::ClearStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = AdmissionStats();
}

AdmissionOptions AdmissionQueue::options() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_;
}

void AdmissionQueue::UpdateOptions(const AdmissionOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = options.Normalized();
}

}  // namespace crowdrtse::server
