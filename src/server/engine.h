#ifndef CROWDRTSE_SERVER_ENGINE_H_
#define CROWDRTSE_SERVER_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/crowd_rtse.h"
#include "crowd/dispatch_controller.h"
#include "rtf/correlation_cache.h"
#include "traffic/history_store.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace crowdrtse::server {

/// One realtime traffic-speed query as submitted by a client.
struct QueryRequest {
  int slot = 0;                           // 5-minute slot of day
  std::vector<graph::RoadId> queried;     // R^q
  core::SelectorKind selector = core::SelectorKind::kLazyHybridGreedy;
  /// When > 0, caps this query's budget below the ledger's per-query cap —
  /// admission control's first shed rung (fewer probed roads under load).
  /// The ledger still reserves its normal grant; the unspent remainder
  /// flows back at settle time.
  int budget_cap = 0;
};

/// What the engine returns: the estimate for every queried road plus full
/// provenance (which roads were probed, what was paid, phase latencies).
struct QueryResponse {
  int64_t query_id = 0;
  std::vector<double> queried_speeds;     // aligned with request.queried
  std::vector<graph::RoadId> probed_roads;
  /// OCS-selected roads that produced fewer answers than their quota but
  /// at least one (their probe is noisier, still usable). Disjoint from
  /// degraded_roads.
  std::vector<graph::RoadId> underfilled_roads;
  /// Fault-tolerant dispatch only: OCS-selected roads whose probes all
  /// failed (deadline/outlier/unstaffed). They fell down the degradation
  /// ladder to their RTF periodic mean mu_i^t, with widened uncertainty.
  std::vector<graph::RoadId> degraded_roads;
  /// Why each road in `degraded_roads` degraded, aligned with it — the
  /// same per-road verdicts the dispatch trace records, so responses and
  /// traces always agree (previously only aggregate counters survived).
  std::vector<crowd::DegradeReason> degraded_reasons;
  /// Fault-tolerant dispatch only: per-queried-road variance, aligned with
  /// `queried_speeds`. Probed roads report 0, propagated roads the GSP
  /// local conditional variance, degraded roads their prior marginal
  /// widened by Options::degraded_variance_inflation.
  std::vector<double> queried_variances;
  int granted_budget = 0;
  int paid = 0;
  double ocs_millis = 0.0;
  double crowd_millis = 0.0;
  double gsp_millis = 0.0;
  /// Fault-tolerant dispatch only: the crowd round's dispatch-to-resolution
  /// span on the engine clock (ms); bounded by
  /// DispatchOptions::MaxRoundSpanMs() whatever the fault plan injects.
  double dispatch_span_ms = 0.0;
  int gsp_sweeps = 0;
  /// Compact span summary of this query's trace; empty when the query was
  /// not sampled (Options::trace_sample_rate).
  util::trace::TraceSummary trace_summary;
};

/// One shard's slice of the rolling statistics (ShardedEngine only): which
/// shard, how much it served, and how big its Gamma_R cache footprint is.
struct ShardStats {
  int shard = 0;
  int64_t queries_served = 0;
  int64_t queries_rejected = 0;
  int64_t queries_failed = 0;
  int64_t roads_degraded = 0;
  int64_t gamma_cache_bytes = 0;
};

/// Point-in-time snapshot of the rolling service statistics. Every query
/// lands in exactly one of the three outcome counters:
///   served    — answered successfully;
///   rejected  — refused up front (invalid request or campaign budget dry)
///               before any money moved;
///   failed    — died mid-pipeline after its budget grant (its actual crowd
///               spend, possibly zero, is still settled with the ledger).
struct EngineStats {
  int64_t queries_served = 0;
  int64_t queries_rejected = 0;
  int64_t queries_failed = 0;
  int64_t total_paid = 0;
  double total_ocs_millis = 0.0;
  double total_crowd_millis = 0.0;
  double total_gsp_millis = 0.0;
  /// Per-phase latency distributions over all queries that ran the phase.
  util::metrics::LatencySnapshot ocs_latency;
  util::metrics::LatencySnapshot crowd_latency;
  util::metrics::LatencySnapshot gsp_latency;
  /// End-to-end Serve latency of successfully served queries.
  util::metrics::LatencySnapshot serve_latency;
  /// Degradation-ladder accounting (fault-tolerant dispatch only). Every
  /// degraded road lands in exactly one per-reason counter.
  int64_t roads_degraded = 0;
  int64_t degraded_deadline = 0;   // all attempts dropped out / timed out
  int64_t degraded_outlier = 0;    // answers arrived, all implausible
  int64_t degraded_unstaffed = 0;  // no worker on the road to ask
  int64_t degraded_load_shed = 0;  // answered from the periodic fallback
  /// Queries answered entirely from the periodic-mean fallback
  /// (ServePeriodicFallback) — admission control shed them before any
  /// budget was granted or worker asked. Counted inside queries_served.
  int64_t queries_shed = 0;
  /// Dispatch fault/retry counters summed over all served queries.
  int64_t crowd_retries = 0;
  int64_t crowd_reassignments = 0;
  int64_t crowd_deadline_misses = 0;
  int64_t reports_late = 0;
  int64_t reports_duplicate = 0;
  int64_t reports_outlier = 0;
  /// Gamma_R correlation-cache state: hit/miss/coalesce/eviction counters,
  /// resident footprint, and the cold-slot compute-latency distribution.
  rtf::CorrelationCache::StatsSnapshot gamma_cache;
  /// Per-shard breakdown, one entry per shard in ascending shard order.
  /// Empty for an unsharded engine; a ShardedEngine fills it from its
  /// sub-engines' registries. The totals above always cover all shards.
  std::vector<ShardStats> shards;

  std::string Report() const;
  /// The same snapshot as one JSON object (keys follow the registry's
  /// metric names; histograms render via LatencySnapshot::ToJson) — what
  /// the benches dump next to their BENCH_*.json trajectories.
  std::string ReportJson() const;
};

/// The serving surface the front-end binds to. QueryEngine implements it
/// over one world-wide model; ShardedEngine implements it over K
/// partitioned engines behind a cross-shard router. Everything the
/// Frontend and the benches touch — serving, draining, stats, metrics,
/// traces — goes through this interface, so swapping in a sharded engine
/// changes no caller code.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Serves one query against `world` (today's real speeds).
  virtual util::Result<QueryResponse> Serve(
      const QueryRequest& request, const traffic::DayMatrix& world) = 0;

  /// Answers `request` entirely from the RTF periodic means mu_i^t — the
  /// bottom rung of the degradation ladder (no budget, no crowd, no GSP).
  virtual util::Result<QueryResponse> ServePeriodicFallback(
      const QueryRequest& request, const traffic::DayMatrix& world) = 0;

  /// Stops admitting new queries and blocks until every in-flight Serve
  /// has returned. Idempotent.
  virtual void Drain() = 0;

  /// True once Drain() has been called.
  virtual bool draining() const = 0;

  /// Consistent snapshot of the rolling statistics.
  virtual EngineStats stats() const = 0;

  /// The engine's named instruments, renderable as Prometheus text or
  /// JSON. A sharded engine exposes per-shard series via {shard="k"}
  /// labels on top of the aggregate names.
  virtual const util::metrics::MetricsRegistry& metrics() const = 0;

  /// Finished traces of sampled queries.
  virtual const util::trace::TraceCollector& traces() const = 0;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_ENGINE_H_
