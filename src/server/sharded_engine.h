#ifndef CROWDRTSE_SERVER_SHARDED_ENGINE_H_
#define CROWDRTSE_SERVER_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/crowd_rtse.h"
#include "crowd/cost_model.h"
#include "obs/stage_profiler.h"
#include "crowd/crowd_simulator.h"
#include "crowd/worker.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "partition/partition.h"
#include "server/budget_ledger.h"
#include "server/engine.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "traffic/history_store.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace crowdrtse::server {

/// Knobs of the sharded engine.
struct ShardedEngineOptions {
  /// Behaviour of every per-shard QueryEngine (fault-tolerant dispatch,
  /// propagator pool size, ...). trace_sample_rate and profile_sample_rate
  /// govern the ROUTER's sampling: the router creates one trace/profile
  /// scope per sampled query and the sub-engines adopt it (their own
  /// samplers are zeroed at build), so a cross-shard query yields a single
  /// stitched span tree instead of K disconnected per-shard traces.
  QueryEngine::Options engine;
  /// Per-shard crowd simulator behaviour. For sharded-vs-unsharded
  /// bit-identity tests use noiseless worker pools (bias 1, noise 0,
  /// outlier_rate 0) so answers do not depend on the per-shard RNG stream.
  crowd::CrowdSimOptions crowd;
  /// Shard s's simulator draws from util::Rng(crowd_seed + s).
  uint64_t crowd_seed = 0x5eedcafe;
  /// Threads of the cross-shard fan-out pool. <= 0 derives
  /// min(num_shards, 8). Single-owner queries never touch the pool: they
  /// run inline on the calling thread.
  int fanout_threads = 0;
};

/// K per-partition serving engines behind one cross-shard query router
/// (DESIGN.md §7). Each shard owns the full vertical for its slice of the
/// map — induced subgraph over owned ∪ halo roads, projected history and
/// ground truth, its own RTF model, Gamma_R cache, cost model, worker
/// view, crowd simulator and QueryEngine — so shards share no mutable
/// state and queries on different shards proceed fully in parallel.
///
/// Query routing: a query whose roads are all owned by one shard is
/// served whole by that shard (candidates come from owned ∪ halo, so with
/// halo_radius >= max(2C, C+H+1), sparse Gamma_R, zero-gain pruning and a
/// GSP hop limit the answer is bit-identical to the unsharded engine's).
/// A query spanning owners splits per owner, fans out on the pool, and
/// the partial responses merge: speeds map back to the original request
/// order, probed/underfilled/degraded sets union (sorted, deduplicated),
/// latencies sum, gsp_sweeps takes the max.
///
/// Budget settle-up: the router reserves ONCE from the global ledger
/// (grant B) per query. Sub-engines run against private unlimited-campaign
/// ledgers whose per-query cap equals the global cap; the router caps each
/// sub-request via budget_cap (whole B for a single-owner query, a
/// largest-remainder proportional split for multi-owner), and settles the
/// global reservation with the exact sum of per-shard payments. A
/// multi-owner group whose proportional cap rounds to zero answers from
/// its shard's periodic fallback (spend 0) instead of probing. Failed
/// sub-queries settle their actual spend against their shard ledger; the
/// router then settles the global reservation with the payments of the
/// groups that succeeded.
class ShardedEngine : public Engine {
 public:
  /// Builds the K shard verticals. Everything is copied/projected except
  /// `ledger` and `world`, which are borrowed and must outlive the engine;
  /// `world` is also the identity Serve expects (serving a different
  /// DayMatrix than the one projected at build time would silently answer
  /// from stale shard worlds, so it is rejected).
  ///
  /// Validates partition/graph agreement (road count + edge checksum) and,
  /// when both locality knobs are on (config.correlation_hop_radius C > 0
  /// and config.gsp.hop_limit H > 0) with num_shards > 1, the halo
  /// invariant halo_radius >= max(2C, C + H + 1).
  static util::Result<std::unique_ptr<ShardedEngine>> Create(
      const graph::Graph& graph, const partition::Partition& partition,
      const traffic::HistoryStore& history,
      const core::CrowdRtseConfig& config, const crowd::CostModel& costs,
      const std::vector<crowd::Worker>& workers, BudgetLedger& ledger,
      const traffic::DayMatrix& world, const ShardedEngineOptions& options);

  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  util::Result<QueryResponse> Serve(const QueryRequest& request,
                                    const traffic::DayMatrix& world) override;
  util::Result<QueryResponse> ServePeriodicFallback(
      const QueryRequest& request, const traffic::DayMatrix& world) override;

  /// Drains the router (no new queries, in-flight ones finish), then every
  /// sub-engine. Idempotent; the destructor calls it.
  void Drain() override;
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }

  /// Router-level totals plus the per-shard breakdown (EngineStats::shards
  /// holds one entry per shard). Dispatch/report counters aggregate over
  /// the sub-engines.
  EngineStats stats() const override;

  /// Router instruments plus per-shard series under {shard="k"} labels.
  const util::metrics::MetricsRegistry& metrics() const override {
    return metrics_;
  }

  /// Stitched traces of sampled queries: the router samples by its own
  /// query id, installs the trace as the ambient scope around every
  /// sub-serve (fan-out threads included), and collects the finished tree
  /// here — one trace per query with a "shard" child span per owner, so
  /// Frontend's /trace/<id> works identically on both engine kinds.
  const util::trace::TraceCollector& traces() const override {
    return traces_;
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const partition::Partition& partition() const { return partition_; }
  /// Direct access to one shard's engine (tests, trace drill-down).
  QueryEngine& shard_engine(int shard) { return *shards_[shard]->engine; }
  /// Direct access to one shard's CrowdRtse vertical (tests: e.g. comparing
  /// a shard's incrementally patched Gamma_R against a full rebuild).
  core::CrowdRtse& shard_system(int shard) { return *shards_[shard]->system; }

  /// Runs core::CrowdRtse::RefineSlot on every shard: each shard's RTF
  /// parameters for `slot` are CCD-refined against its projected history
  /// and its cached Gamma_R closure is brought up to date (patched in
  /// place when the closure is sparse and incremental_gamma_refresh is on,
  /// invalidated otherwise). Returns one per-shard row count in shard
  /// order, with the same meaning as the single-engine call. Mutates the
  /// shard models, so it must not race with in-flight queries — quiesce
  /// first, like SyncWorkers.
  util::Result<std::vector<int>> RefineSlot(int slot);

  /// Re-projects a fresh global worker snapshot into every shard's local
  /// registry (e.g. after the global WorkerRegistry advanced a slot). Must
  /// not race with in-flight queries — quiesce first, like AdvanceSlot.
  void SyncWorkers(const std::vector<crowd::Worker>& workers);

  /// Re-projects the borrowed global world into every shard's private
  /// world copy. Call after mutating the global DayMatrix in place (e.g. a
  /// scenario incident drops ground-truth speeds mid-run) — Serve checks
  /// only the DayMatrix identity, so stale shard projections would
  /// otherwise keep answering from pre-incident speeds. Must not race with
  /// in-flight queries.
  void SyncWorld();

  /// Distributes a global fault plan to every shard's engine, remapping
  /// per-road specs into shard-local ids (roads outside a shard's members
  /// are dropped for that shard; worker specs and the default spec forward
  /// unchanged). Note that fault *decisions* hash shard-local road ids, so
  /// a faulted scenario is deterministic per engine kind but not
  /// bit-identical across sharded and unsharded runs — except rate-1
  /// fixed-value corruption (coordinated liars), whose outcome does not
  /// depend on the hash draw. Must not race with in-flight queries.
  void SetFaultPlan(const crowd::FaultPlan& plan);

 private:
  /// One shard's vertical. Construction order matters: the engine borrows
  /// everything above it, and CrowdRtse keeps pointers to the subgraph and
  /// history, so Shard lives behind a unique_ptr and is never moved after
  /// BuildShard returns.
  struct Shard {
    partition::ShardLayout layout;  // copy: owned/halo/members remapping
    graph::Subgraph sub;            // induced over layout.members
    traffic::HistoryStore history;  // projected to members
    traffic::DayMatrix world;       // projected "today"
    crowd::CostModel costs;
    std::unique_ptr<core::CrowdRtse> system;
    std::unique_ptr<WorkerRegistry> registry;
    std::unique_ptr<BudgetLedger> ledger;  // unlimited campaign, global cap
    std::unique_ptr<crowd::CrowdSimulator> crowd_sim;
    std::unique_ptr<QueryEngine> engine;
  };

  /// Minimal task pool for the multi-owner fan-out. util::ThreadPool is a
  /// one-ParallelFor-at-a-time construct and cannot take submissions from
  /// concurrent Serve calls, so the router keeps its own queue.
  class Fanout {
   public:
    explicit Fanout(int num_threads);
    ~Fanout();
    void Submit(std::function<void()> task);

   private:
    void WorkerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
  };

  ShardedEngine(partition::Partition partition, BudgetLedger& ledger,
                const traffic::DayMatrix& world,
                const ShardedEngineOptions& options);

  static util::Status BuildShard(Shard& shard, const graph::Graph& graph,
                                 const traffic::HistoryStore& history,
                                 const core::CrowdRtseConfig& config,
                                 const crowd::CostModel& costs,
                                 const std::vector<crowd::Worker>& workers,
                                 const traffic::DayMatrix& world,
                                 int per_query_cap, int shard_index,
                                 const ShardedEngineOptions& options);

  /// Projects the global worker snapshot into `layout`-local ids,
  /// preserving the global order (task assignment scans in vector order).
  static std::vector<crowd::Worker> ProjectWorkers(
      const partition::ShardLayout& layout,
      const std::vector<crowd::Worker>& workers);

  bool EnterServe();
  void ExitServe();
  util::Status ValidateRequest(const QueryRequest& request) const;
  /// Maps a sub-response's local road ids to global ids in place.
  void GlobalizeResponse(const Shard& shard, QueryResponse& response) const;
  /// Counts a merged, about-to-be-returned response into the router's
  /// instruments.
  void RecordServed(const QueryResponse& response, double serve_millis);

  partition::Partition partition_;
  BudgetLedger& ledger_;
  const traffic::DayMatrix* world_;
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Fanout> fanout_;

  std::atomic<int64_t> next_query_id_{1};
  std::atomic<bool> draining_{false};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  int64_t serves_in_flight_ = 0;

  util::metrics::MetricsRegistry metrics_;
  util::trace::TraceCollector traces_;
  /// Router-owned stage profiler: the merge stage records here directly,
  /// and sub-engine stages flow in through the ambient scope the router
  /// installs around sub-serves.
  obs::StageProfiler profiler_;
  util::metrics::Counter* queries_served_ = nullptr;
  util::metrics::Counter* queries_rejected_ = nullptr;
  util::metrics::Counter* queries_failed_ = nullptr;
  util::metrics::Counter* paid_units_ = nullptr;
  util::metrics::Counter* queries_shed_ = nullptr;
  util::metrics::Counter* roads_degraded_ = nullptr;
  util::metrics::Counter* degraded_deadline_ = nullptr;
  util::metrics::Counter* degraded_outlier_ = nullptr;
  util::metrics::Counter* degraded_unstaffed_ = nullptr;
  util::metrics::Counter* degraded_load_shed_ = nullptr;
  util::metrics::Counter* queries_cross_shard_ = nullptr;
  util::metrics::LatencyHistogram* ocs_latency_ = nullptr;
  util::metrics::LatencyHistogram* crowd_latency_ = nullptr;
  util::metrics::LatencyHistogram* gsp_latency_ = nullptr;
  util::metrics::LatencyHistogram* serve_latency_ = nullptr;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_SHARDED_ENGINE_H_
