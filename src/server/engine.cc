#include "server/engine.h"

#include <string>

namespace crowdrtse::server {

std::string EngineStats::Report() const {
  std::string out =
      "EngineStats: served " + std::to_string(queries_served) +
      ", rejected " + std::to_string(queries_rejected) + ", failed " +
      std::to_string(queries_failed) + ", paid " +
      std::to_string(total_paid) + " units\n";
  out += "  ocs:    " + ocs_latency.ToString() + "\n";
  out += "  crowd:  " + crowd_latency.ToString() + "\n";
  out += "  gsp:    " + gsp_latency.ToString() + "\n";
  out += "  serve:  " + serve_latency.ToString() + "\n";
  out += "  dispatch: retries " + std::to_string(crowd_retries) +
         ", reassigned " + std::to_string(crowd_reassignments) +
         ", deadline misses " + std::to_string(crowd_deadline_misses) +
         ", late " + std::to_string(reports_late) + ", duplicate " +
         std::to_string(reports_duplicate) + ", outlier " +
         std::to_string(reports_outlier) + "\n";
  out += "  degraded: " + std::to_string(roads_degraded) +
         " roads (deadline " + std::to_string(degraded_deadline) +
         ", outlier " + std::to_string(degraded_outlier) + ", unstaffed " +
         std::to_string(degraded_unstaffed) + ", load shed " +
         std::to_string(degraded_load_shed) + "; " +
         std::to_string(queries_shed) + " whole queries shed)\n";
  out += "  gamma:  " + gamma_cache.ToString();
  for (const ShardStats& shard : shards) {
    out += "\n  shard[" + std::to_string(shard.shard) + "]: served " +
           std::to_string(shard.queries_served) + ", rejected " +
           std::to_string(shard.queries_rejected) + ", failed " +
           std::to_string(shard.queries_failed) + ", degraded roads " +
           std::to_string(shard.roads_degraded) + ", gamma bytes " +
           std::to_string(shard.gamma_cache_bytes);
  }
  return out;
}

std::string EngineStats::ReportJson() const {
  std::string out = "{";
  out += "\"crowdrtse_queries_served_total\":" +
         std::to_string(queries_served);
  out += ",\"crowdrtse_queries_rejected_total\":" +
         std::to_string(queries_rejected);
  out += ",\"crowdrtse_queries_failed_total\":" +
         std::to_string(queries_failed);
  out += ",\"crowdrtse_paid_units_total\":" + std::to_string(total_paid);
  out += ",\"crowdrtse_roads_degraded_total\":" +
         std::to_string(roads_degraded);
  out += ",\"crowdrtse_degraded_deadline_total\":" +
         std::to_string(degraded_deadline);
  out += ",\"crowdrtse_degraded_outlier_total\":" +
         std::to_string(degraded_outlier);
  out += ",\"crowdrtse_degraded_unstaffed_total\":" +
         std::to_string(degraded_unstaffed);
  out += ",\"crowdrtse_degraded_load_shed_total\":" +
         std::to_string(degraded_load_shed);
  out += ",\"crowdrtse_queries_shed_total\":" + std::to_string(queries_shed);
  out += ",\"crowdrtse_dispatch_retries_total\":" +
         std::to_string(crowd_retries);
  out += ",\"crowdrtse_dispatch_reassignments_total\":" +
         std::to_string(crowd_reassignments);
  out += ",\"crowdrtse_dispatch_deadline_misses_total\":" +
         std::to_string(crowd_deadline_misses);
  out += ",\"crowdrtse_reports_late_total\":" + std::to_string(reports_late);
  out += ",\"crowdrtse_reports_duplicate_total\":" +
         std::to_string(reports_duplicate);
  out += ",\"crowdrtse_reports_outlier_total\":" +
         std::to_string(reports_outlier);
  out += ",\"crowdrtse_ocs_latency_ms\":" + ocs_latency.ToJson();
  out += ",\"crowdrtse_crowd_latency_ms\":" + crowd_latency.ToJson();
  out += ",\"crowdrtse_gsp_latency_ms\":" + gsp_latency.ToJson();
  out += ",\"crowdrtse_serve_latency_ms\":" + serve_latency.ToJson();
  out += ",\"crowdrtse_gamma_cache_hits\":" +
         std::to_string(gamma_cache.hits);
  out += ",\"crowdrtse_gamma_cache_misses\":" +
         std::to_string(gamma_cache.misses);
  out += ",\"crowdrtse_gamma_cache_coalesced\":" +
         std::to_string(gamma_cache.coalesced);
  out += ",\"crowdrtse_gamma_cache_evictions\":" +
         std::to_string(gamma_cache.evictions);
  out += ",\"crowdrtse_gamma_cache_resident_tables\":" +
         std::to_string(gamma_cache.resident_tables);
  out += ",\"crowdrtse_gamma_cache_resident_bytes\":" +
         std::to_string(gamma_cache.resident_bytes);
  out += ",\"crowdrtse_gamma_compute_latency_ms\":" +
         gamma_cache.compute_latency.ToJson();
  if (!shards.empty()) {
    out += ",\"crowdrtse_shards\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
      const ShardStats& shard = shards[i];
      if (i > 0) out += ",";
      out += "{\"shard\":" + std::to_string(shard.shard);
      out += ",\"queries_served\":" + std::to_string(shard.queries_served);
      out += ",\"queries_rejected\":" +
             std::to_string(shard.queries_rejected);
      out += ",\"queries_failed\":" + std::to_string(shard.queries_failed);
      out += ",\"roads_degraded\":" + std::to_string(shard.roads_degraded);
      out += ",\"gamma_cache_bytes\":" +
             std::to_string(shard.gamma_cache_bytes);
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace crowdrtse::server
