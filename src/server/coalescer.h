#ifndef CROWDRTSE_SERVER_COALESCER_H_
#define CROWDRTSE_SERVER_COALESCER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "server/admission.h"
#include "server/query_engine.h"
#include "util/status.h"

namespace crowdrtse::server {

/// Singleflight over QueryEngine::Serve: concurrent queries with the same
/// canonical signature (sorted deduped R^q, slot, selector, budget cap,
/// shed level) share ONE OCS/dispatch/GSP pass; the leader serves, every
/// joiner receives a copy of the leader's exact QueryResponse. That makes
/// coalesced results bit-identical to uncoalesced serving by construction
/// — the joiner's answer IS the leader's answer (they even share the
/// query_id, which response JSON exposes as `coalesced:true` for joiners).
///
/// Only exact-signature matches coalesce. Merging merely-overlapping R^q
/// sets into one superset query would change OCS's input and therefore the
/// answers — a correctness break dressed as an optimisation — so it is
/// deliberately not done.
///
/// The same mechanism as the Gamma_R cache's per-slot singleflight
/// (DESIGN.md §5b), lifted to whole queries.
class QueryCoalescer {
 public:
  /// Shared result slot one leader fills and any number of joiners read.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    util::Status status;      // non-OK when the leader's serve failed
    QueryResponse response;   // valid when status.ok()
    int64_t joiners = 0;      // queries answered from this batch (not
                              // counting the leader)
    /// Client ids of every joiner, in arrival order. Guarded by the
    /// COALESCER's map mutex (Join appends while holding it; Complete
    /// copies it out after retiring the key under the same mutex, at
    /// which point no further joiner can reach this batch), NOT by the
    /// batch mutex above.
    std::vector<int64_t> joiner_ids;
  };
  using BatchPtr = std::shared_ptr<Batch>;

  /// Canonical signature. `request.queried` must already be sorted and
  /// deduped (CanonicalizeRoads) so permutations of the same road set
  /// coalesce.
  static std::string KeyFor(const QueryRequest& request, ShedLevel level);

  /// Sorts and dedupes `request.queried` in place; returns true when
  /// anything changed (the response must then be expanded back to the
  /// caller's original ordering — the front-end keeps the original list).
  static bool CanonicalizeRoads(QueryRequest* request);

  /// Joins the in-flight batch for `key`, or opens a new one. Returns
  /// {batch, is_leader}. The leader MUST call Complete exactly once;
  /// joiners call Wait. `client_id` identifies the joining caller so the
  /// leader's Complete can report the full fan-out set (slow-query and
  /// flight-recorder attribution); leaders are identified by the query
  /// they go on to serve, so their id is not recorded here.
  std::pair<BatchPtr, bool> Join(const std::string& key,
                                 int64_t client_id = 0);

  /// Publishes the leader's outcome, wakes joiners, and retires the key
  /// (later arrivals open a fresh batch — results are never cached beyond
  /// the in-flight window, so answers always reflect a live serve).
  /// Returns the client ids of every joiner that attached to the batch —
  /// the complete fan-out set the leader's one serve answered for.
  std::vector<int64_t> Complete(const std::string& key,
                                const BatchPtr& batch, util::Status status,
                                QueryResponse response);

  /// Blocks until the batch completes; returns its joiner-visible outcome.
  static util::Status Wait(const BatchPtr& batch, QueryResponse* response);

  int64_t leads() const { return leads_.load(std::memory_order_relaxed); }
  int64_t joins() const { return joins_.load(std::memory_order_relaxed); }

 private:
  std::mutex mutex_;
  std::map<std::string, BatchPtr> inflight_;
  std::atomic<int64_t> leads_{0};
  std::atomic<int64_t> joins_{0};
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_COALESCER_H_
