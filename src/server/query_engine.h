#ifndef CROWDRTSE_SERVER_QUERY_ENGINE_H_
#define CROWDRTSE_SERVER_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/crowd_rtse.h"
#include "server/budget_ledger.h"
#include "server/worker_registry.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::server {

/// One realtime traffic-speed query as submitted by a client.
struct QueryRequest {
  int slot = 0;                           // 5-minute slot of day
  std::vector<graph::RoadId> queried;     // R^q
  core::SelectorKind selector = core::SelectorKind::kLazyHybridGreedy;
};

/// What the engine returns: the estimate for every queried road plus full
/// provenance (which roads were probed, what was paid, phase latencies).
struct QueryResponse {
  int64_t query_id = 0;
  std::vector<double> queried_speeds;     // aligned with request.queried
  std::vector<graph::RoadId> probed_roads;
  /// OCS-selected roads the worker population could not fully staff
  /// (fewer answers were aggregated there).
  std::vector<graph::RoadId> underfilled_roads;
  int granted_budget = 0;
  int paid = 0;
  double ocs_millis = 0.0;
  double crowd_millis = 0.0;
  double gsp_millis = 0.0;
  int gsp_sweeps = 0;
};

/// Rolling service statistics.
struct EngineStats {
  int64_t queries_served = 0;
  int64_t queries_rejected = 0;
  int64_t total_paid = 0;
  double total_ocs_millis = 0.0;
  double total_crowd_millis = 0.0;
  double total_gsp_millis = 0.0;

  std::string Report() const;
};

/// The online half of CrowdRTSE as a service (paper Fig. 1): receives
/// queries, consults the worker registry for the current R^w, lets the
/// ledger grant a budget, runs OCS -> crowdsourcing -> GSP, settles the
/// payment and answers. The ground-truth DayMatrix stands in for the real
/// world the crowd measures (see DESIGN.md §2 substitutions).
class QueryEngine {
 public:
  /// Engine behaviour knobs.
  struct Options {
    /// When true, OCS only considers roads whose present workers can fill
    /// the full answer quota (no underfilled probes, smaller R^w); when
    /// false, any covered road is a candidate and shortfalls aggregate
    /// fewer answers.
    bool require_full_staffing = false;
  };

  /// All dependencies are borrowed and must outlive the engine.
  QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
              BudgetLedger& ledger, const crowd::CostModel& costs,
              crowd::CrowdSimulator& crowd_sim);
  QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
              BudgetLedger& ledger, const crowd::CostModel& costs,
              crowd::CrowdSimulator& crowd_sim, Options options);

  /// Serves one query against `world` (today's real speeds). Rejects with
  /// FailedPrecondition when the campaign budget is exhausted.
  util::Result<QueryResponse> Serve(const QueryRequest& request,
                                    const traffic::DayMatrix& world);

  const EngineStats& stats() const { return stats_; }

 private:
  core::CrowdRtse& system_;
  WorkerRegistry& registry_;
  BudgetLedger& ledger_;
  const crowd::CostModel& costs_;
  crowd::CrowdSimulator& crowd_sim_;
  Options options_;
  EngineStats stats_;
  int64_t next_query_id_ = 1;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_QUERY_ENGINE_H_
