#ifndef CROWDRTSE_SERVER_QUERY_ENGINE_H_
#define CROWDRTSE_SERVER_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/crowd_rtse.h"
#include "crowd/dispatch_controller.h"
#include "crowd/fault_plan.h"
#include "gsp/propagator_pool.h"
#include "obs/stage_profiler.h"
#include "server/budget_ledger.h"
#include "server/engine.h"
#include "server/worker_registry.h"
#include "traffic/history_store.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace crowdrtse::server {

// QueryRequest / QueryResponse / EngineStats moved to server/engine.h so
// every Engine implementation (QueryEngine, ShardedEngine) shares them.


/// The online half of CrowdRTSE as a service (paper Fig. 1): receives
/// queries, consults the worker registry for the current R^w, lets the
/// ledger grant a budget, runs OCS -> crowdsourcing -> GSP, settles the
/// payment and answers. The ground-truth DayMatrix stands in for the real
/// world the crowd measures (see DESIGN.md §2 substitutions).
///
/// Thread-safety: Serve may be called from any number of threads
/// concurrently. Query ids are allocated atomically, the ledger reserves
/// budget atomically, stats/metrics are internally synchronized, the GSP
/// phase leases a propagator from a fixed pool (parallel-GSP propagators
/// are non-reentrant, see gsp/propagation.h), and the crowd-simulation
/// phase is serialized on an internal mutex (the simulator's RNG is
/// stateful; a real crowd is asynchronous anyway). Lazy CCD refinement is
/// safe under concurrent serving: CrowdRtse serializes it internally,
/// confines its writes to the slot being refined, and computes Gamma_R
/// from a snapshot, so cold slots need no pre-warming. One caveat remains
/// the caller's responsibility: WorkerRegistry::AdvanceSlot must not run
/// while queries are in flight (quiesce between slots).
class QueryEngine : public Engine {
 public:
  /// Engine behaviour knobs.
  struct Options {
    /// When true, OCS only considers roads whose present workers can fill
    /// the full answer quota (no underfilled probes, smaller R^w); when
    /// false, any covered road is a candidate and shortfalls aggregate
    /// fewer answers.
    bool require_full_staffing = false;
    /// Number of SpeedPropagator instances available to concurrent GSP
    /// phases (also the GSP concurrency limit). <= 0 means 4.
    int propagator_pool_size = 0;
    /// Fault-tolerant crowd dispatch (deadline -> retry -> reassign ->
    /// degrade; DESIGN.md §5c). When false the legacy single-shot
    /// assignment path runs: every assigned worker answers, no deadlines,
    /// no degradation.
    bool fault_tolerant_dispatch = false;
    /// Deadline / retry / backoff / rejection knobs of the dispatch state
    /// machine.
    crowd::DispatchOptions dispatch;
    /// Fault injection over the simulated crowd (fault-free by default;
    /// tests and chaos drills configure drops/delays/duplicates/corruption
    /// here, fully seeded).
    crowd::FaultPlan fault_plan;
    /// Time source for deadlines and backoff waits. nullptr = wall clock;
    /// tests inject a util::SimClock so faulted rounds cost zero wall time
    /// and replay bit-identically. Must outlive the engine.
    util::Clock* clock = nullptr;
    /// How much a degraded road's reported variance widens over its prior
    /// marginal sigma_i^2 (>= 1).
    double degraded_variance_inflation = 4.0;
    /// Fraction of queries traced — a deterministic hash of the query id,
    /// so the same id samples identically everywhere. 0 (default) disables
    /// tracing: Serve takes one thread-local read per would-be span and
    /// allocates nothing. 1 traces every query.
    double trace_sample_rate = 0.0;
    /// Finished traces kept for Chrome export (the ring) and in the
    /// slow-query log (top-N by serve latency).
    int trace_ring_size = 256;
    int trace_slow_log_size = 16;
    /// Fraction of queries whose per-stage wall/CPU time feeds the
    /// crowdrtse_stage_{wall,cpu}_ms{stage="..."} histograms (exemplar =
    /// query id). Deterministic per query id, like trace_sample_rate;
    /// 0 (default) disables the profiler entirely.
    double profile_sample_rate = 0.0;
  };

  /// All dependencies are borrowed and must outlive the engine.
  QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
              BudgetLedger& ledger, const crowd::CostModel& costs,
              crowd::CrowdSimulator& crowd_sim);
  QueryEngine(core::CrowdRtse& system, WorkerRegistry& registry,
              BudgetLedger& ledger, const crowd::CostModel& costs,
              crowd::CrowdSimulator& crowd_sim, Options options);

  ~QueryEngine() override;

  /// Serves one query against `world` (today's real speeds). Rejects with
  /// InvalidArgument on a malformed request (no roads, out-of-range slot
  /// or road ids) and FailedPrecondition when the campaign budget is
  /// exhausted or the engine is draining — both before any budget is
  /// granted or worker paid.
  util::Result<QueryResponse> Serve(const QueryRequest& request,
                                    const traffic::DayMatrix& world) override;

  /// Answers `request` entirely from the RTF periodic means mu_i^t with
  /// prior-widened variances — the bottom rung of the degradation ladder,
  /// which admission control uses to shed load without dropping queries.
  /// No budget is granted, no worker is asked, no OCS/dispatch/GSP pass
  /// runs; every queried road comes back in degraded_roads with reason
  /// kLoadShed. Validation matches Serve. Counted as served (and shed).
  util::Result<QueryResponse> ServePeriodicFallback(
      const QueryRequest& request, const traffic::DayMatrix& world) override;

  /// Stops admitting new queries (they reject with FailedPrecondition
  /// "draining") and blocks until every in-flight Serve has returned, so
  /// the engine — and everything it borrows: the Gamma_R cache's compute
  /// threads, propagator leases, the crowd simulator — is quiescent.
  /// Idempotent; the destructor calls it, making teardown while serving
  /// threads wind down safe instead of a race against the thread pools.
  void Drain() override;

  /// True once Drain() has been called.
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }

  /// Consistent snapshot of the rolling statistics (a thin view over the
  /// metrics registry).
  EngineStats stats() const override;

  /// The engine's named instruments — counters, gauges (gamma-cache bytes,
  /// outstanding reservations, GSP leases in flight), and the per-phase
  /// latency histograms. Render with RenderPrometheus() / RenderJson().
  const util::metrics::MetricsRegistry& metrics() const override {
    return metrics_;
  }

  /// Finished traces of sampled queries: the export ring
  /// (ChromeTraceJson()) and the slow-query log (SlowQueryReport()).
  const util::trace::TraceCollector& traces() const override {
    return traces_;
  }

  /// Swaps the fault-injection plan mid-run (scenario fault waves /
  /// liar-cohort events). Takes effect on the next Serve; must not race
  /// with in-flight queries — quiesce first, like AdvanceSlot.
  void SetFaultPlan(const crowd::FaultPlan& plan) {
    options_.fault_plan = plan;
  }

 private:
  /// Creates the registry instruments and caches pointers for the hot path.
  void RegisterInstruments();
  /// Admission side of Drain(): registers an in-flight query, or refuses
  /// when draining. Every successful Enter is paired with one Exit.
  bool EnterServe();
  void ExitServe();
  /// Validates request shape against `world` (roads in range, slot within
  /// the world's slot count). Shared by Serve and ServePeriodicFallback.
  util::Status ValidateRequest(const QueryRequest& request,
                               const traffic::DayMatrix& world) const;
  /// Closes the books on a query that died mid-pipeline: settles whatever
  /// the crowd was actually paid (so real spend never leaks from the
  /// campaign accounting) and counts the failure. Returns `status`.
  util::Status FailQuery(int64_t query_id, int granted, int paid,
                         const util::Status& status);
  util::Status RejectQuery(const util::Status& status);

  core::CrowdRtse& system_;
  WorkerRegistry& registry_;
  BudgetLedger& ledger_;
  const crowd::CostModel& costs_;
  crowd::CrowdSimulator& crowd_sim_;
  Options options_;
  gsp::PropagatorPool propagators_;

  std::atomic<int64_t> next_query_id_{1};
  /// Serializes the stateful crowd simulator (see class comment).
  std::mutex crowd_mutex_;

  /// Drain gate: queries in flight, and whether new ones are refused.
  std::atomic<bool> draining_{false};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  int64_t serves_in_flight_ = 0;

  /// All rolling statistics live as named instruments in the registry
  /// (wait-free counters/histograms; callback gauges read live component
  /// state at render time). The pointers below are the hot-path handles —
  /// they stay valid for the registry's lifetime, so Serve never re-looks
  /// anything up by name.
  util::metrics::MetricsRegistry metrics_;
  util::trace::TraceCollector traces_;
  /// Sampling per-stage wall/CPU attribution into metrics_ (ambient scope:
  /// when a sharded router already installed its own, Serve adopts it).
  obs::StageProfiler profiler_;
  util::metrics::Counter* queries_served_ = nullptr;
  util::metrics::Counter* queries_rejected_ = nullptr;
  util::metrics::Counter* queries_failed_ = nullptr;
  util::metrics::Counter* paid_units_ = nullptr;
  /// Degradation / dispatch accounting (fault-tolerant path only).
  util::metrics::Counter* roads_degraded_ = nullptr;
  util::metrics::Counter* degraded_deadline_ = nullptr;
  util::metrics::Counter* degraded_outlier_ = nullptr;
  util::metrics::Counter* degraded_unstaffed_ = nullptr;
  util::metrics::Counter* degraded_load_shed_ = nullptr;
  util::metrics::Counter* queries_shed_ = nullptr;
  util::metrics::Counter* crowd_retries_ = nullptr;
  util::metrics::Counter* crowd_reassignments_ = nullptr;
  util::metrics::Counter* crowd_deadline_misses_ = nullptr;
  util::metrics::Counter* reports_late_ = nullptr;
  util::metrics::Counter* reports_duplicate_ = nullptr;
  util::metrics::Counter* reports_outlier_ = nullptr;
  util::metrics::LatencyHistogram* ocs_latency_ = nullptr;
  util::metrics::LatencyHistogram* crowd_latency_ = nullptr;
  util::metrics::LatencyHistogram* gsp_latency_ = nullptr;
  util::metrics::LatencyHistogram* serve_latency_ = nullptr;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_QUERY_ENGINE_H_
