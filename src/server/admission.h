#ifndef CROWDRTSE_SERVER_ADMISSION_H_
#define CROWDRTSE_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>

#include "util/status.h"

namespace crowdrtse::server {

/// How much service a query admitted under load still gets. The ladder
/// degrades before it drops (DESIGN.md §6): a shed query is still
/// answered — from a cheaper rung — and only a hard-full queue rejects,
/// always with an explicit response, never silently.
enum class ShedLevel {
  kNone = 0,            // full service: OCS -> crowd -> GSP, full budget
  kBudgetCap = 1,       // full pipeline, capped budget (fewer probed roads)
  kPeriodicFallback = 2,  // answered from RTF periodic means, no crowd
  kReject = 3,          // hard-full: explicit rejection response
};

const char* ShedLevelName(ShedLevel level);

/// Admission knobs. Watermarks are queue depths measured at enqueue time:
///   depth <  shed_low_watermark   -> kNone
///   depth >= shed_low_watermark   -> kBudgetCap
///   depth >= capacity             -> kPeriodicFallback
///   depth >= hard_capacity        -> kReject
/// Defaults derive from capacity when left 0: shed_low = capacity / 2,
/// hard_capacity = 2 * capacity.
struct AdmissionOptions {
  int capacity = 64;
  int shed_low_watermark = 0;
  int hard_capacity = 0;
  /// Budget cap applied to queries admitted at kBudgetCap (passed through
  /// to QueryRequest::budget_cap; <= 0 leaves the budget unchanged).
  int level1_budget_cap = 8;

  /// Fills the derived defaults and sanity-orders the watermarks.
  AdmissionOptions Normalized() const;
};

/// Point-in-time admission counters (monotonic; resettable via the admin
/// channel's stats-clear).
struct AdmissionStats {
  int64_t admitted_full = 0;
  int64_t admitted_budget_capped = 0;
  int64_t admitted_fallback = 0;
  int64_t rejected = 0;
  int64_t peak_depth = 0;
};

/// Bounded MPMC work queue with watermark-based load shedding — the
/// admission side of the serving front-end, kept free of sockets so the
/// ladder is unit-testable. Producers call Admit (which stamps the shed
/// level the ladder chose at enqueue time); worker threads loop on
/// WaitAndRun until Close.
class AdmissionQueue {
 public:
  /// A unit of admitted work. Receives the shed level the ladder assigned.
  using Task = std::function<void(ShedLevel)>;

  explicit AdmissionQueue(AdmissionOptions options);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Applies the ladder to the current depth. kReject means `task` was NOT
  /// enqueued (the caller must still answer the client); any other return
  /// means it was, stamped with that level.
  ShedLevel Admit(Task task);

  /// Blocks for the next task and runs it. Returns false when the queue is
  /// closed and empty (worker should exit). Tasks run outside the queue
  /// lock, so workers never serialize each other's serving work.
  bool WaitAndRun();

  /// Stops admission (everything rejects) and wakes all waiting workers.
  /// Already-queued tasks still run — Close drains, it does not drop.
  void Close();

  bool closed() const;
  int depth() const;
  AdmissionStats stats() const;
  void ClearStats();

  AdmissionOptions options() const;
  /// Admin channel: swaps the watermarks at runtime (normalized first).
  void UpdateOptions(const AdmissionOptions& options);

 private:
  struct Queued {
    Task task;
    ShedLevel level;
  };

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  AdmissionOptions options_;
  std::deque<Queued> queue_;
  bool closed_ = false;
  AdmissionStats stats_;
  /// Last verdict level, for flight-recorder shed.transition events
  /// (guarded by mutex_).
  ShedLevel last_level_ = ShedLevel::kNone;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_ADMISSION_H_
