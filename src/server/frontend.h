#ifndef CROWDRTSE_SERVER_FRONTEND_H_
#define CROWDRTSE_SERVER_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/epoll_loop.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/socket.h"
#include "net/token_bucket.h"
#include "server/admission.h"
#include "server/coalescer.h"
#include "server/engine.h"
#include "traffic/history_store.h"
#include "util/clock.h"
#include "util/status.h"

namespace crowdrtse::server {

/// Front-end behaviour knobs.
struct FrontendOptions {
  /// Listening port on 127.0.0.1; 0 lets the kernel pick (port() reports).
  uint16_t port = 0;
  /// Serving worker threads popping the admission queue. <= 0 means 2.
  int num_workers = 2;
  /// Admission ladder watermarks (see AdmissionOptions).
  AdmissionOptions admission;
  /// Per-connection token-bucket rate limit, queries/second. <= 0 disables.
  /// Over-limit queries get an explicit 429/rate_limited response.
  double rate_limit_qps = 0.0;
  /// Bucket burst capacity; <= 0 derives max(1, 2 * rate_limit_qps).
  double rate_limit_burst = 0.0;
  /// Identical concurrent queries share one serve (QueryCoalescer).
  bool enable_coalescing = true;
  /// Time source for the rate-limit buckets. nullptr = wall clock; tests
  /// inject util::SimClock for deterministic refill. Must outlive the
  /// front-end.
  util::Clock* clock = nullptr;
};

/// Front-end rolling counters (resettable via the admin stats-clear).
struct FrontendStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t http_requests = 0;
  int64_t frame_requests = 0;
  int64_t queries_received = 0;
  int64_t rate_limited = 0;
  int64_t bad_requests = 0;
  int64_t coalesce_leads = 0;
  int64_t coalesce_joins = 0;
  AdmissionStats admission;
  /// Recent coalesced fan-outs, newest last: one line per batch naming the
  /// served query id, the leader's client id, and EVERY follower client id
  /// — the complete set of callers the one serve answered for. The
  /// engine-side slow-query log only sees the leader's query; this is
  /// where the fan-out attribution lives.
  std::vector<std::string> coalesce_fanouts;

  std::string Report() const;
};

/// Network serving front-end over QueryEngine (DESIGN.md §6): one epoll
/// reactor thread owns every socket; serving worker threads pop the
/// admission queue. Two wire protocols share one port — HTTP/1.1 (JSON
/// bodies, plus the observability GETs) and length-prefixed binary frames
/// (net/frame.h, same JSON payloads) — distinguished by the first four
/// bytes of the connection.
///
/// Endpoints:
///   POST /query        {"slot":s,"roads":[...],"selector":"...","id":n}
///   GET  /healthz      liveness probe
///   GET  /metrics      Prometheus text exposition (engine registry)
///   GET  /metrics.json the same registry as one JSON object
///   GET  /stats        human-readable engine + front-end report
///   GET  /trace/<id>   Chrome trace JSON for a sampled query id
///   GET  /debug/flight flight-recorder dump (obs/flight_recorder.h),
///                      newest-last event JSON in global sequence order
///   POST /admin        text commands: get/set <knob>, drain, stats-clear
///
/// Load shedding: every query is rate-limited (per-connection token
/// bucket), then admitted through the watermark ladder — full service,
/// budget-capped, periodic fallback, or an explicit rejection when the
/// queue is hard-full. Every accepted request receives a response; there
/// are no silent drops at any load.
///
/// Shutdown ordering (the §6 drain protocol): Shutdown() stops admission,
/// lets queued queries finish, joins the workers, then stops the reactor —
/// so by the time it returns no thread of this front-end touches the
/// engine, and destroying the engine afterwards is race-free (its own
/// destructor drains whatever other callers remain).
class Frontend {
 public:
  /// `engine` and `world` are borrowed and must outlive the front-end.
  /// `world` is the day the server answers against (today's matrix).
  Frontend(Engine& engine, const traffic::DayMatrix& world,
           FrontendOptions options);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Binds, listens, and starts the reactor + worker threads.
  util::Status Start();

  /// Graceful stop; see the class comment for ordering. Idempotent.
  void Shutdown();

  /// Stops admitting new queries (explicit 503 "draining" responses);
  /// observability GETs keep serving. The admin "drain" command.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  uint16_t port() const { return listener_.bound_port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }
  FrontendStats stats() const;

 private:
  struct Connection {
    net::Fd fd;
    enum class Protocol { kUnknown, kHttp, kFrame } protocol =
        Protocol::kUnknown;
    net::HttpRequestParser http;
    net::FrameDecoder frames;
    /// Bytes buffered before the protocol is known (< 4 bytes seen).
    std::string preamble;
    std::unique_ptr<net::TokenBucket> bucket;
    /// Outgoing bytes; workers append under the mutex, flushes drain it.
    std::mutex write_mutex;
    std::string outbox;
    bool want_write = false;  // registered for EPOLLOUT
    std::atomic<bool> dead{false};
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void ReactorLoop();
  void WorkerLoop();

  void AcceptAll();
  void HandleReadable(const ConnPtr& conn);
  /// Routes buffered bytes once the protocol is known; false = close.
  bool DispatchBuffered(const ConnPtr& conn);
  bool HandleHttpRequest(const ConnPtr& conn, const net::HttpRequest& req);
  void HandleQueryJson(const ConnPtr& conn, const std::string& body,
                       bool framed);
  std::string HandleAdminCommand(const std::string& command);

  /// Runs on a worker thread: applies the shed level, serves (coalesced),
  /// and responds.
  void ServeAdmitted(const ConnPtr& conn, QueryRequest request,
                     std::vector<graph::RoadId> original_roads,
                     int64_t client_id, bool framed, ShedLevel level);

  /// Records one completed coalesced batch's full fan-out set (leader +
  /// every follower client id): flight-recorder event, structured log
  /// line, and the /stats fan-out ring.
  void RecordCoalesceFanout(int64_t query_id, int64_t leader_client,
                            const std::vector<int64_t>& followers);

  /// Appends to the connection outbox, flushes opportunistically, and
  /// arms EPOLLOUT for any remainder. Safe from any thread.
  void SendRaw(const ConnPtr& conn, const std::string& bytes);
  void SendResponse(const ConnPtr& conn, bool framed, int http_status,
                    const std::string& json_body);
  /// Flushes what the socket accepts now; returns false on a dead peer.
  bool TryFlushLocked(const ConnPtr& conn);
  void CloseConnection(int fd);

  Engine& engine_;
  const traffic::DayMatrix& world_;
  FrontendOptions options_;
  util::Clock* clock_;  // never null after construction

  net::TcpListener listener_;
  net::EpollLoop loop_;
  AdmissionQueue queue_;
  QueryCoalescer coalescer_;

  std::thread reactor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex connections_mutex_;
  std::map<int, ConnPtr> connections_;

  mutable std::mutex stats_mutex_;
  FrontendStats stats_;
  /// Ring of recent coalesced fan-out descriptions (guarded by
  /// stats_mutex_; see FrontendStats::coalesce_fanouts).
  std::deque<std::string> coalesce_fanout_log_;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_FRONTEND_H_
