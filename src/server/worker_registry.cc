#include "server/worker_registry.h"

#include <algorithm>
#include <map>
#include <utility>

namespace crowdrtse::server {

WorkerRegistry::WorkerRegistry(const graph::Graph& graph,
                               const WorkerRegistryOptions& options,
                               uint64_t seed)
    : graph_(graph), options_(options), rng_(seed) {
  workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    workers_.push_back(SpawnWorker(next_id_++));
  }
}

WorkerRegistry::WorkerRegistry(const graph::Graph& graph,
                               std::vector<crowd::Worker> workers,
                               const WorkerRegistryOptions& options,
                               uint64_t seed)
    : graph_(graph), options_(options), rng_(seed),
      workers_(std::move(workers)) {
  for (const crowd::Worker& w : workers_) {
    next_id_ = std::max(next_id_, w.id + 1);
  }
}

void WorkerRegistry::ReplaceWorkers(std::vector<crowd::Worker> workers) {
  workers_ = std::move(workers);
  for (const crowd::Worker& w : workers_) {
    next_id_ = std::max(next_id_, w.id + 1);
  }
}

crowd::Worker WorkerRegistry::SpawnWorker(crowd::WorkerId id) {
  crowd::Worker w;
  w.id = id;
  w.road = graph_.num_roads() > 0
               ? static_cast<graph::RoadId>(rng_.UniformUint64(
                     static_cast<uint64_t>(graph_.num_roads())))
               : graph::kInvalidRoad;
  w.bias = rng_.UniformDouble(options_.min_bias, options_.max_bias);
  w.noise_kmh =
      rng_.UniformDouble(options_.min_noise_kmh, options_.max_noise_kmh);
  return w;
}

void WorkerRegistry::AdvanceSlot() {
  ++slot_offset_;
  for (crowd::Worker& w : workers_) {
    if (rng_.Bernoulli(options_.churn_probability)) {
      // Worker logs off; a fresh one logs on somewhere else.
      w = SpawnWorker(next_id_++);
      continue;
    }
    if (rng_.Bernoulli(options_.move_probability)) {
      const auto neighbors = graph_.Neighbors(w.road);
      if (!neighbors.empty()) {
        w.road = neighbors[static_cast<size_t>(
                               rng_.UniformUint64(neighbors.size()))]
                     .neighbor;
      }
    }
  }
}

std::vector<graph::RoadId> WorkerRegistry::CoveredRoads(
    int min_workers) const {
  std::map<graph::RoadId, int> counts;
  for (const crowd::Worker& w : workers_) ++counts[w.road];
  std::vector<graph::RoadId> covered;
  for (const auto& [road, count] : counts) {
    if (count >= min_workers) covered.push_back(road);
  }
  return covered;
}

std::vector<graph::RoadId> WorkerRegistry::StaffableRoads(
    const crowd::CostModel& costs) const {
  std::map<graph::RoadId, int> counts;
  for (const crowd::Worker& w : workers_) ++counts[w.road];
  std::vector<graph::RoadId> staffable;
  for (const auto& [road, count] : counts) {
    if (road >= 0 && road < costs.num_roads() &&
        count >= costs.Cost(road)) {
      staffable.push_back(road);
    }
  }
  return staffable;
}

int WorkerRegistry::CountOn(graph::RoadId road) const {
  int count = 0;
  for (const crowd::Worker& w : workers_) {
    if (w.road == road) ++count;
  }
  return count;
}

std::vector<const crowd::Worker*> WorkerRegistry::WorkersOn(
    graph::RoadId road) const {
  std::vector<const crowd::Worker*> on_road;
  for (const crowd::Worker& w : workers_) {
    if (w.road == road) on_road.push_back(&w);
  }
  return on_road;
}

}  // namespace crowdrtse::server
