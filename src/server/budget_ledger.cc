#include "server/budget_ledger.h"

#include <algorithm>

#include "obs/flight_recorder.h"

namespace crowdrtse::server {

BudgetLedger::BudgetLedger(int64_t campaign_budget, int per_query_cap)
    : campaign_budget_(campaign_budget),
      per_query_cap_(std::max(0, per_query_cap)) {}

int BudgetLedger::NextQueryBudgetLocked() const {
  if (campaign_budget_ < 0) return per_query_cap_;
  const int64_t left =
      campaign_budget_ - total_spent_ - reserved_outstanding_;
  return static_cast<int>(
      std::max<int64_t>(0, std::min<int64_t>(per_query_cap_, left)));
}

int BudgetLedger::NextQueryBudget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return NextQueryBudgetLocked();
}

int BudgetLedger::Reserve(int64_t query_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int granted = NextQueryBudgetLocked();
  obs::RecordEvent(obs::EventKind::kBudgetReserve, query_id, granted);
  if (granted <= 0) return 0;
  active_reservations_[query_id] = granted;
  reserved_outstanding_ += granted;
  return granted;
}

int64_t BudgetLedger::total_spent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_spent_;
}

int64_t BudgetLedger::remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (campaign_budget_ < 0) return -1;
  return campaign_budget_ - total_spent_;
}

int64_t BudgetLedger::reserved_outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_outstanding_;
}

std::vector<LedgerEntry> BudgetLedger::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

void BudgetLedger::CloseReservationLocked(int64_t query_id) {
  const auto it = active_reservations_.find(query_id);
  if (it == active_reservations_.end()) return;
  reserved_outstanding_ -= it->second;
  active_reservations_.erase(it);
}

util::Status BudgetLedger::Settle(int64_t query_id, int reserved,
                                  int spent) {
  if (spent < 0 || reserved < 0) {
    return util::Status::InvalidArgument("negative amounts");
  }
  if (spent > reserved) {
    return util::Status::InvalidArgument(
        "query spent more than its reservation (" + std::to_string(spent) +
        " > " + std::to_string(reserved) + ")");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  CloseReservationLocked(query_id);
  total_spent_ += spent;
  entries_.push_back({query_id, reserved, spent});
  obs::RecordEvent(obs::EventKind::kBudgetSettle, query_id, reserved, spent);
  return util::Status::Ok();
}

util::Status BudgetLedger::Release(int64_t query_id, int reserved) {
  if (reserved < 0) {
    return util::Status::InvalidArgument("negative amounts");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  CloseReservationLocked(query_id);
  return util::Status::Ok();
}

std::string BudgetLedger::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "BudgetLedger: " + std::to_string(entries_.size()) +
                    " queries, spent " + std::to_string(total_spent_);
  if (campaign_budget_ >= 0) {
    out += " of " + std::to_string(campaign_budget_) + " (remaining " +
           std::to_string(campaign_budget_ - total_spent_) + ")";
  } else {
    out += " (unlimited campaign)";
  }
  if (reserved_outstanding_ > 0) {
    out += ", " + std::to_string(reserved_outstanding_) +
           " reserved in flight";
  }
  return out;
}

}  // namespace crowdrtse::server
