#include "server/budget_ledger.h"

#include <algorithm>

namespace crowdrtse::server {

BudgetLedger::BudgetLedger(int64_t campaign_budget, int per_query_cap)
    : campaign_budget_(campaign_budget),
      per_query_cap_(std::max(0, per_query_cap)) {}

int BudgetLedger::NextQueryBudget() const {
  if (campaign_budget_ < 0) return per_query_cap_;
  const int64_t left = campaign_budget_ - total_spent_;
  return static_cast<int>(
      std::max<int64_t>(0, std::min<int64_t>(per_query_cap_, left)));
}

int64_t BudgetLedger::remaining() const {
  if (campaign_budget_ < 0) return -1;
  return campaign_budget_ - total_spent_;
}

util::Status BudgetLedger::Settle(int64_t query_id, int reserved,
                                  int spent) {
  if (spent < 0 || reserved < 0) {
    return util::Status::InvalidArgument("negative amounts");
  }
  if (spent > reserved) {
    return util::Status::InvalidArgument(
        "query spent more than its reservation (" + std::to_string(spent) +
        " > " + std::to_string(reserved) + ")");
  }
  total_spent_ += spent;
  entries_.push_back({query_id, reserved, spent});
  return util::Status::Ok();
}

std::string BudgetLedger::Report() const {
  std::string out = "BudgetLedger: " + std::to_string(entries_.size()) +
                    " queries, spent " + std::to_string(total_spent_);
  if (campaign_budget_ >= 0) {
    out += " of " + std::to_string(campaign_budget_) + " (remaining " +
           std::to_string(remaining()) + ")";
  } else {
    out += " (unlimited campaign)";
  }
  return out;
}

}  // namespace crowdrtse::server
