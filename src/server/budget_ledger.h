#ifndef CROWDRTSE_SERVER_BUDGET_LEDGER_H_
#define CROWDRTSE_SERVER_BUDGET_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace crowdrtse::server {

/// One accounting entry: what a served query spent.
struct LedgerEntry {
  int64_t query_id = 0;
  int reserved = 0;
  int spent = 0;
};

/// Campaign-level payment accounting. The paper budgets each query with K
/// answer-units; a deployment also has to bound the total spend across
/// queries. The ledger hands each query the smaller of the per-query cap
/// and whatever remains of the campaign budget, then records the actual
/// spend (unspent reservations flow back).
class BudgetLedger {
 public:
  /// `campaign_budget` < 0 means unlimited.
  BudgetLedger(int64_t campaign_budget, int per_query_cap);

  /// Budget available to the next query (0 when the campaign is dry).
  int NextQueryBudget() const;

  /// Records that query `query_id` was granted `reserved` and actually
  /// paid `spent` (must be <= reserved).
  util::Status Settle(int64_t query_id, int reserved, int spent);

  int64_t total_spent() const { return total_spent_; }
  int64_t remaining() const;
  bool exhausted() const { return NextQueryBudget() <= 0; }
  const std::vector<LedgerEntry>& entries() const { return entries_; }

  /// Human-readable account summary.
  std::string Report() const;

 private:
  int64_t campaign_budget_;
  int per_query_cap_;
  int64_t total_spent_ = 0;
  std::vector<LedgerEntry> entries_;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_BUDGET_LEDGER_H_
