#ifndef CROWDRTSE_SERVER_BUDGET_LEDGER_H_
#define CROWDRTSE_SERVER_BUDGET_LEDGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace crowdrtse::server {

/// One accounting entry: what a served query spent.
struct LedgerEntry {
  int64_t query_id = 0;
  int reserved = 0;
  int spent = 0;
};

/// Campaign-level payment accounting. The paper budgets each query with K
/// answer-units; a deployment also has to bound the total spend across
/// queries. The ledger hands each query the smaller of the per-query cap
/// and whatever remains of the campaign budget, then records the actual
/// spend (unspent reservations flow back).
///
/// Grants are real reservations: Reserve() earmarks the granted units, so
/// the headroom seen by the next caller already excludes every in-flight
/// query — concurrent queries cannot jointly overspend the campaign.
/// Each reservation must be closed exactly once, via Settle() (actual
/// spend, possibly zero) or Release() (nothing was paid). All methods are
/// thread-safe.
class BudgetLedger {
 public:
  /// `campaign_budget` < 0 means unlimited.
  BudgetLedger(int64_t campaign_budget, int per_query_cap);

  /// Budget available to the next query — per-query cap bounded by what
  /// the campaign has neither spent nor currently reserved (0 when dry).
  int NextQueryBudget() const;

  /// Reserves the next query's budget for `query_id` and returns the
  /// granted amount; 0 when the campaign is dry (nothing is reserved).
  int Reserve(int64_t query_id);

  /// Records that query `query_id` was granted `reserved` and actually
  /// paid `spent` (must be <= reserved). Closes the matching reservation
  /// if one is outstanding; the unspent remainder flows back.
  util::Status Settle(int64_t query_id, int reserved, int spent);

  /// Closes the reservation of a query that paid nothing (e.g. rejected
  /// before its crowdsourcing round). Equivalent to settling zero spend,
  /// without appending a ledger entry.
  util::Status Release(int64_t query_id, int reserved);

  /// The configured per-query grant ceiling (e.g. so a sharded engine can
  /// give its per-shard ledgers the same cap as the global one).
  int per_query_cap() const { return per_query_cap_; }

  int64_t total_spent() const;
  int64_t remaining() const;
  /// Units currently earmarked by in-flight reservations.
  int64_t reserved_outstanding() const;
  bool exhausted() const { return NextQueryBudget() <= 0; }
  /// Snapshot of all settled entries (copied: the ledger may be written
  /// concurrently).
  std::vector<LedgerEntry> entries() const;

  /// Human-readable account summary.
  std::string Report() const;

 private:
  int NextQueryBudgetLocked() const;
  /// Drops `query_id`'s outstanding reservation, if any.
  void CloseReservationLocked(int64_t query_id);

  mutable std::mutex mutex_;
  int64_t campaign_budget_;
  int per_query_cap_;
  int64_t total_spent_ = 0;
  int64_t reserved_outstanding_ = 0;
  std::unordered_map<int64_t, int> active_reservations_;
  std::vector<LedgerEntry> entries_;
};

}  // namespace crowdrtse::server

#endif  // CROWDRTSE_SERVER_BUDGET_LEDGER_H_
