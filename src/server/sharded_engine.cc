#include "server/sharded_engine.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "graph/graph_io.h"
#include "obs/flight_recorder.h"
#include "util/timer.h"

namespace crowdrtse::server {

namespace {

int FanoutThreadsOrDefault(int requested, int num_shards) {
  if (requested > 0) return requested;
  return std::min(num_shards, 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// Fanout pool

ShardedEngine::Fanout::Fanout(int num_threads) {
  threads_.reserve(static_cast<size_t>(std::max(1, num_threads)));
  for (int i = 0; i < std::max(1, num_threads); ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardedEngine::Fanout::~Fanout() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedEngine::Fanout::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ShardedEngine::Fanout::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

// ---------------------------------------------------------------------------
// Construction

ShardedEngine::ShardedEngine(partition::Partition partition,
                             BudgetLedger& ledger,
                             const traffic::DayMatrix& world,
                             const ShardedEngineOptions& options)
    : partition_(std::move(partition)),
      ledger_(ledger),
      world_(&world),
      options_(options),
      traces_(util::trace::TraceCollector::Options{
          options.engine.trace_ring_size, options.engine.trace_slow_log_size}),
      profiler_(&metrics_, obs::StageProfiler::Options{
                               options.engine.profile_sample_rate}) {
  queries_served_ = &metrics_.GetCounter(
      "crowdrtse_queries_served_total", "queries answered successfully");
  queries_rejected_ = &metrics_.GetCounter(
      "crowdrtse_queries_rejected_total",
      "queries refused up front (bad request or campaign budget dry)");
  queries_failed_ = &metrics_.GetCounter(
      "crowdrtse_queries_failed_total",
      "queries that died mid-pipeline after their budget grant");
  paid_units_ = &metrics_.GetCounter("crowdrtse_paid_units_total",
                                     "answer-units paid to the crowd");
  queries_shed_ = &metrics_.GetCounter(
      "crowdrtse_queries_shed_total",
      "queries answered entirely from the periodic fallback");
  roads_degraded_ = &metrics_.GetCounter(
      "crowdrtse_roads_degraded_total",
      "selected roads that fell down the degradation ladder");
  degraded_deadline_ = &metrics_.GetCounter(
      "crowdrtse_degraded_deadline_total",
      "roads degraded because every attempt dropped out or timed out");
  degraded_outlier_ = &metrics_.GetCounter(
      "crowdrtse_degraded_outlier_total",
      "roads degraded because all answers were rejected as implausible");
  degraded_unstaffed_ = &metrics_.GetCounter(
      "crowdrtse_degraded_unstaffed_total",
      "roads degraded because no worker was there to ask");
  degraded_load_shed_ = &metrics_.GetCounter(
      "crowdrtse_degraded_load_shed_total",
      "roads answered from the periodic fallback by admission shedding");
  queries_cross_shard_ = &metrics_.GetCounter(
      "crowdrtse_queries_cross_shard_total",
      "queries whose roads spanned more than one owner shard");
  ocs_latency_ = &metrics_.GetHistogram("crowdrtse_ocs_latency_ms",
                                        "OCS road-selection phase latency");
  crowd_latency_ = &metrics_.GetHistogram(
      "crowdrtse_crowd_latency_ms", "crowdsourcing round wall latency");
  gsp_latency_ = &metrics_.GetHistogram("crowdrtse_gsp_latency_ms",
                                        "GSP propagation phase latency");
  serve_latency_ = &metrics_.GetHistogram(
      "crowdrtse_serve_latency_ms", "end-to-end Serve latency (served only)");
  metrics_.RegisterCallbackGauge(
      "crowdrtse_ledger_reserved_outstanding",
      "budget units earmarked by in-flight reservations",
      [this] { return ledger_.reserved_outstanding(); });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_ledger_remaining_units",
      "campaign budget not yet spent or reserved",
      [this] { return ledger_.remaining(); });
  metrics_.RegisterCallbackGauge(
      "crowdrtse_traces_collected", "sampled stitched traces collected",
      [this] { return traces_.collected(); });
}

std::vector<crowd::Worker> ShardedEngine::ProjectWorkers(
    const partition::ShardLayout& layout,
    const std::vector<crowd::Worker>& workers) {
  std::vector<crowd::Worker> local;
  for (const crowd::Worker& w : workers) {
    if (w.road < 0) continue;
    const graph::RoadId local_road = layout.LocalId(w.road);
    if (local_road == graph::kInvalidRoad) continue;
    crowd::Worker projected = w;
    projected.road = local_road;
    local.push_back(projected);
  }
  return local;
}

util::Status ShardedEngine::BuildShard(
    Shard& shard, const graph::Graph& graph,
    const traffic::HistoryStore& history,
    const core::CrowdRtseConfig& config, const crowd::CostModel& costs,
    const std::vector<crowd::Worker>& workers,
    const traffic::DayMatrix& world, int per_query_cap, int shard_index,
    const ShardedEngineOptions& options) {
  const partition::ShardLayout& layout = shard.layout;
  const int num_members = layout.num_members();

  util::Result<graph::Subgraph> sub =
      graph::InducedSubgraph(graph, layout.members);
  if (!sub.ok()) return sub.status();
  shard.sub = std::move(*sub);

  // Projections: per-road data restricted to members, local id = position
  // in the sorted member list (the monotone mapping every exactness
  // argument leans on).
  shard.history = traffic::HistoryStore(num_members, history.num_days(),
                                        history.num_slots());
  for (int day = 0; day < history.num_days(); ++day) {
    for (int slot = 0; slot < history.num_slots(); ++slot) {
      for (int local = 0; local < num_members; ++local) {
        shard.history.At(day, slot, local) =
            history.At(day, slot, layout.members[static_cast<size_t>(local)]);
      }
    }
  }
  shard.world = traffic::DayMatrix(world.num_slots(), num_members);
  for (int slot = 0; slot < world.num_slots(); ++slot) {
    for (int local = 0; local < num_members; ++local) {
      shard.world.At(slot, local) =
          world.At(slot, layout.members[static_cast<size_t>(local)]);
    }
  }
  std::vector<int> local_costs(static_cast<size_t>(num_members));
  for (int local = 0; local < num_members; ++local) {
    local_costs[static_cast<size_t>(local)] =
        costs.Cost(layout.members[static_cast<size_t>(local)]);
  }
  util::Result<crowd::CostModel> cost_model =
      crowd::CostModel::FromCosts(std::move(local_costs));
  if (!cost_model.ok()) return cost_model.status();
  shard.costs = std::move(*cost_model);

  // Per-shard model: moment estimation is a pure per-road/per-edge
  // function of the member series, so training on the projection equals
  // the global parameters restricted to the shard.
  core::CrowdRtseConfig shard_config = config;
  if (!shard_config.correlation_cache.persist_dir.empty()) {
    shard_config.correlation_cache.persist_dir +=
        "/shard" + std::to_string(shard_index);
  }
  util::Result<core::CrowdRtse> system = core::CrowdRtse::BuildOffline(
      shard.sub.graph, shard.history, shard_config);
  if (!system.ok()) return system.status();
  shard.system = std::make_unique<core::CrowdRtse>(std::move(*system));

  shard.registry = std::make_unique<WorkerRegistry>(
      shard.sub.graph, ProjectWorkers(layout, workers),
      WorkerRegistryOptions{}, options.crowd_seed + 0x9e37 +
                                  static_cast<uint64_t>(shard_index));
  // Private unlimited-campaign ledger: the global campaign is enforced
  // once, by the router's reservation; the shard cap mirrors the global
  // per-query cap so min(cap, sub budget_cap) reproduces the unsharded
  // spend budget.
  shard.ledger = std::make_unique<BudgetLedger>(-1, per_query_cap);
  shard.crowd_sim = std::make_unique<crowd::CrowdSimulator>(
      options.crowd,
      util::Rng(options.crowd_seed + static_cast<uint64_t>(shard_index)));
  // The router owns trace sampling and stage profiling for sharded
  // serving: sub-engines adopt the ambient scopes it installs around each
  // sub-serve. Their own samplers are zeroed so a cross-shard query cannot
  // also collect K disconnected per-shard traces under local query ids.
  QueryEngine::Options sub_options = options.engine;
  sub_options.trace_sample_rate = 0.0;
  sub_options.profile_sample_rate = 0.0;
  shard.engine = std::make_unique<QueryEngine>(
      *shard.system, *shard.registry, *shard.ledger, shard.costs,
      *shard.crowd_sim, sub_options);
  return util::Status::Ok();
}

util::Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const graph::Graph& graph, const partition::Partition& partition,
    const traffic::HistoryStore& history,
    const core::CrowdRtseConfig& config, const crowd::CostModel& costs,
    const std::vector<crowd::Worker>& workers, BudgetLedger& ledger,
    const traffic::DayMatrix& world, const ShardedEngineOptions& options) {
  if (partition.num_roads != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "partition covers " + std::to_string(partition.num_roads) +
        " roads but the graph has " + std::to_string(graph.num_roads()));
  }
  if (partition.graph_checksum != graph::EdgeListChecksum(graph)) {
    return util::Status::InvalidArgument(
        "partition checksum does not match the graph's edge list — the "
        "partition was computed for a different map");
  }
  if (history.num_roads() != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "history road count does not match the graph");
  }
  if (world.num_roads() != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "world road count does not match the graph");
  }
  if (world.num_slots() != history.num_slots()) {
    return util::Status::InvalidArgument(
        "world slot count does not match the history");
  }
  if (costs.num_roads() != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "cost model road count does not match the graph");
  }
  const int hop_c = config.correlation_hop_radius;
  const int hop_h = config.gsp.hop_limit;
  if (partition.num_shards > 1 && hop_c > 0 && hop_h > 0) {
    const int required = std::max(2 * hop_c, hop_c + hop_h + 1);
    if (partition.halo_radius < required) {
      return util::Status::InvalidArgument(
          "halo_radius " + std::to_string(partition.halo_radius) +
          " breaks the locality contract: need >= max(2C, C+H+1) = " +
          std::to_string(required) + " for correlation radius C=" +
          std::to_string(hop_c) + " and GSP hop limit H=" +
          std::to_string(hop_h));
    }
  }

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(partition, ledger, world, options));
  engine->shards_.reserve(static_cast<size_t>(partition.num_shards));
  for (int s = 0; s < partition.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->layout = engine->partition_.shards[static_cast<size_t>(s)];
    const util::Status built = BuildShard(
        *shard, graph, history, config, costs, workers, world,
        ledger.per_query_cap(), s, options);
    if (!built.ok()) return built;
    engine->shards_.push_back(std::move(shard));
  }
  engine->fanout_ = std::make_unique<Fanout>(
      FanoutThreadsOrDefault(options.fanout_threads, partition.num_shards));

  // Per-shard observability: one labeled series per shard on top of the
  // router aggregates. Callback gauges read the sub-engine at render time.
  for (int s = 0; s < engine->num_shards(); ++s) {
    QueryEngine* sub = engine->shards_[static_cast<size_t>(s)]->engine.get();
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_queries_served" + label,
        "queries served by this shard's engine",
        [sub] { return sub->stats().queries_served; });
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_queries_failed" + label,
        "queries failed by this shard's engine",
        [sub] { return sub->stats().queries_failed; });
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_roads_degraded" + label,
        "roads degraded inside this shard",
        [sub] { return sub->stats().roads_degraded; });
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_gamma_resident_bytes" + label,
        "resident Gamma_R cache footprint of this shard",
        [sub] { return sub->stats().gamma_cache.resident_bytes; });
    const int64_t owned = static_cast<int64_t>(
        engine->shards_[static_cast<size_t>(s)]->layout.owned.size());
    const int64_t members = static_cast<int64_t>(
        engine->shards_[static_cast<size_t>(s)]->layout.members.size());
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_owned_roads" + label,
        "roads this shard answers for", [owned] { return owned; });
    engine->metrics_.RegisterCallbackGauge(
        "crowdrtse_shard_member_roads" + label,
        "owned + halo roads in this shard's subgraph",
        [members] { return members; });
  }
  return engine;
}

ShardedEngine::~ShardedEngine() { Drain(); }

// ---------------------------------------------------------------------------
// Serving

bool ShardedEngine::EnterServe() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (draining_.load(std::memory_order_acquire)) return false;
  ++serves_in_flight_;
  return true;
}

void ShardedEngine::ExitServe() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (--serves_in_flight_ == 0) drain_cv_.notify_all();
}

void ShardedEngine::Drain() {
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    draining_.store(true, std::memory_order_release);
    drain_cv_.wait(lock, [this] { return serves_in_flight_ == 0; });
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->engine) shard->engine->Drain();
  }
}

util::Status ShardedEngine::ValidateRequest(
    const QueryRequest& request) const {
  if (request.queried.empty()) {
    return util::Status::InvalidArgument("query has no roads");
  }
  if (request.slot < 0 || request.slot >= world_->num_slots()) {
    return util::Status::InvalidArgument(
        "slot out of range: " + std::to_string(request.slot) +
        " not in [0, " + std::to_string(world_->num_slots()) + ")");
  }
  for (graph::RoadId r : request.queried) {
    if (r < 0 || r >= partition_.num_roads) {
      return util::Status::InvalidArgument(
          "queried road out of range: " + std::to_string(r) +
          " not in [0, " + std::to_string(partition_.num_roads) + ")");
    }
  }
  return util::Status::Ok();
}

void ShardedEngine::GlobalizeResponse(const Shard& shard,
                                      QueryResponse& response) const {
  const auto to_global = [&shard](std::vector<graph::RoadId>& roads) {
    for (graph::RoadId& r : roads) {
      r = shard.layout.members[static_cast<size_t>(r)];
    }
  };
  // Sorted local lists stay sorted: the local order IS the ascending
  // global order of the members.
  to_global(response.probed_roads);
  to_global(response.underfilled_roads);
  to_global(response.degraded_roads);
}

void ShardedEngine::RecordServed(const QueryResponse& response,
                                 double serve_millis) {
  queries_served_->Increment();
  paid_units_->Increment(response.paid);
  ocs_latency_->Record(response.ocs_millis);
  crowd_latency_->Record(response.crowd_millis);
  gsp_latency_->Record(response.gsp_millis);
  serve_latency_->Record(serve_millis);
  roads_degraded_->Increment(
      static_cast<int64_t>(response.degraded_roads.size()));
  for (crowd::DegradeReason reason : response.degraded_reasons) {
    switch (reason) {
      case crowd::DegradeReason::kDeadline:
        degraded_deadline_->Increment();
        break;
      case crowd::DegradeReason::kOutlier:
        degraded_outlier_->Increment();
        break;
      case crowd::DegradeReason::kUnstaffed:
        degraded_unstaffed_->Increment();
        break;
      case crowd::DegradeReason::kLoadShed:
        degraded_load_shed_->Increment();
        break;
    }
  }
}

util::Result<QueryResponse> ShardedEngine::Serve(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  util::Timer serve_timer;
  if (!EnterServe()) {
    queries_rejected_->Increment();
    return util::Status::FailedPrecondition(
        "engine draining: no new queries admitted");
  }
  struct GateExit {
    ShardedEngine* engine;
    ~GateExit() { engine->ExitServe(); }
  } gate_exit{this};

  if (&world != world_) {
    queries_rejected_->Increment();
    return util::Status::InvalidArgument(
        "sharded engine can only serve the world its shards were "
        "projected from");
  }
  const util::Status valid = ValidateRequest(request);
  if (!valid.ok()) {
    queries_rejected_->Increment();
    return valid;
  }

  const int64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);

  // Router-owned sampling: one trace per sampled query, stitched across
  // every shard it touches. The ambient ScopedTrace makes the sub-engines
  // adopt this trace (their own sampling is zeroed at build), and
  // root_span below is what the fan-out threads parent their per-shard
  // spans under.
  std::shared_ptr<util::trace::Trace> trace;
  if (util::trace::ShouldSample(options_.engine.trace_sample_rate,
                                static_cast<uint64_t>(query_id))) {
    trace = std::make_shared<util::trace::Trace>(query_id,
                                                 options_.engine.clock);
  }
  struct Collect {
    util::trace::TraceCollector& collector;
    std::shared_ptr<util::trace::Trace> trace;
    ~Collect() {
      if (trace) collector.Collect(std::move(trace));
    }
  } collect{traces_, trace};
  std::optional<util::trace::ScopedTrace> scoped;
  if (trace) scoped.emplace(trace.get());
  util::trace::Span serve_span("serve");
  serve_span.Annotate("engine", "sharded");
  serve_span.Annotate("slot", static_cast<int64_t>(request.slot));
  serve_span.Annotate("queried",
                      static_cast<int64_t>(request.queried.size()));
  const int64_t root_span = util::trace::ActiveSpanId();
  // Stage profiling aggregates under the router's query id across every
  // shard (no-op scope when unsampled).
  obs::ScopedProfile profile(&profiler_, query_id);

  const int granted = ledger_.Reserve(query_id);
  if (granted <= 0) {
    queries_rejected_->Increment();
    serve_span.Annotate("outcome", "budget_denied");
    return util::Status::FailedPrecondition(
        "campaign budget exhausted: " + ledger_.Report());
  }
  const int spend_budget =
      request.budget_cap > 0 ? std::min(granted, request.budget_cap)
                             : granted;

  // Group queried roads by owner shard, remembering each road's position
  // in the original request so merged speeds stay aligned.
  std::vector<std::vector<size_t>> group_indices(shards_.size());
  std::vector<int> owners;  // shards with at least one queried road
  for (size_t i = 0; i < request.queried.size(); ++i) {
    const int s = partition_.OwnerOf(request.queried[i]);
    if (group_indices[static_cast<size_t>(s)].empty()) owners.push_back(s);
    group_indices[static_cast<size_t>(s)].push_back(i);
  }
  std::sort(owners.begin(), owners.end());

  // --- Single-owner fast path: the whole query runs inline on the owner
  // shard with the full spend budget — the common, exactness-bearing case.
  if (owners.size() == 1) {
    Shard& shard = *shards_[static_cast<size_t>(owners[0])];
    QueryRequest sub;
    sub.slot = request.slot;
    sub.selector = request.selector;
    sub.budget_cap = spend_budget;
    sub.queried.reserve(request.queried.size());
    for (graph::RoadId r : request.queried) {
      sub.queried.push_back(shard.layout.LocalId(r));
    }
    util::Result<QueryResponse> served = [&] {
      util::trace::Span shard_span("shard");
      shard_span.Annotate("shard", static_cast<int64_t>(owners[0]));
      obs::ScopedShard shard_scope(owners[0]);
      return shard.engine->Serve(sub, shard.world);
    }();
    if (!served.ok()) {
      (void)ledger_.Settle(query_id, granted, 0);
      queries_failed_->Increment();
      serve_span.Annotate("outcome", "failed_shard");
      return served.status();
    }
    QueryResponse response = std::move(*served);
    GlobalizeResponse(shard, response);
    response.query_id = query_id;
    response.granted_budget = granted;
    const util::Status settled =
        ledger_.Settle(query_id, granted, response.paid);
    if (!settled.ok()) {
      queries_failed_->Increment();
      serve_span.Annotate("outcome", "failed_settle");
      return settled;
    }
    RecordServed(response, serve_timer.ElapsedMillis());
    serve_span.Annotate("paid", static_cast<int64_t>(response.paid));
    serve_span.Annotate("outcome", "served");
    serve_span.End();
    if (trace) response.trace_summary = util::trace::Summarize(*trace);
    return response;
  }

  // --- Multi-owner: split per owner, fan out, merge.
  queries_cross_shard_->Increment();
  obs::RecordEvent(obs::EventKind::kShardSplit, query_id,
                   static_cast<int64_t>(owners.size()), spend_budget);

  // Largest-remainder proportional budget split over group sizes; the
  // caps sum exactly to spend_budget. A group whose cap rounds to zero
  // answers from its shard's periodic fallback (spend 0).
  const size_t total_roads = request.queried.size();
  std::vector<int> caps(owners.size(), 0);
  {
    int assigned = 0;
    for (size_t g = 0; g < owners.size(); ++g) {
      const size_t size =
          group_indices[static_cast<size_t>(owners[g])].size();
      caps[g] = static_cast<int>(
          (static_cast<int64_t>(spend_budget) *
           static_cast<int64_t>(size)) /
          static_cast<int64_t>(total_roads));
      assigned += caps[g];
    }
    for (size_t g = 0; assigned < spend_budget; g = (g + 1) % owners.size()) {
      ++caps[g];
      ++assigned;
    }
  }

  struct GroupRun {
    int shard = 0;
    int cap = 0;
    const std::vector<size_t>* indices = nullptr;
    QueryRequest sub;
    util::Status status = util::Status::Ok();
    QueryResponse response;
    bool ok = false;
  };
  std::vector<GroupRun> runs(owners.size());
  for (size_t g = 0; g < owners.size(); ++g) {
    GroupRun& run = runs[g];
    run.shard = owners[g];
    run.cap = caps[g];
    run.indices = &group_indices[static_cast<size_t>(owners[g])];
    run.sub.slot = request.slot;
    run.sub.selector = request.selector;
    run.sub.budget_cap = run.cap;
    run.sub.queried.reserve(run.indices->size());
    const Shard& shard = *shards_[static_cast<size_t>(run.shard)];
    for (size_t idx : *run.indices) {
      run.sub.queried.push_back(shard.layout.LocalId(request.queried[idx]));
    }
  }

  const auto run_group = [this, &trace, root_span, query_id](GroupRun& run) {
    // A fan-out pool thread carries no ambient trace/profile scope:
    // install the router's, parenting this thread's spans under the root
    // "serve" span so the per-shard subtree stitches into one tree. The
    // calling thread (which runs the last group) already carries both.
    std::optional<util::trace::ScopedTrace> adopt;
    if (trace && util::trace::ActiveTrace() != trace.get()) {
      adopt.emplace(trace.get(), root_span);
    }
    std::optional<obs::ScopedProfile> profile_scope;
    if (obs::ActiveProfiler() == nullptr) {
      profile_scope.emplace(&profiler_, query_id);
    }
    util::trace::Span shard_span("shard");
    shard_span.Annotate("shard", static_cast<int64_t>(run.shard));
    shard_span.Annotate("cap", static_cast<int64_t>(run.cap));
    obs::ScopedShard shard_scope(run.shard);
    Shard& shard = *shards_[static_cast<size_t>(run.shard)];
    util::Result<QueryResponse> result =
        run.cap > 0 ? shard.engine->Serve(run.sub, shard.world)
                    : shard.engine->ServePeriodicFallback(run.sub,
                                                          shard.world);
    if (result.ok()) {
      run.response = std::move(*result);
      GlobalizeResponse(shard, run.response);
      run.ok = true;
    } else {
      run.status = result.status();
    }
    shard_span.Annotate("outcome", run.ok ? "served" : "failed");
  };

  // The calling thread takes the last group; the pool runs the rest.
  std::mutex pending_mutex;
  std::condition_variable pending_cv;
  size_t pending = runs.size() - 1;
  for (size_t g = 0; g + 1 < runs.size(); ++g) {
    fanout_->Submit([&run_group, &runs, g, &pending_mutex, &pending_cv,
                     &pending] {
      run_group(runs[g]);
      std::lock_guard<std::mutex> lock(pending_mutex);
      if (--pending == 0) pending_cv.notify_one();
    });
  }
  run_group(runs.back());
  {
    std::unique_lock<std::mutex> lock(pending_mutex);
    pending_cv.wait(lock, [&pending] { return pending == 0; });
  }

  int total_paid = 0;
  for (const GroupRun& run : runs) {
    if (run.ok) total_paid += run.response.paid;
  }
  for (const GroupRun& run : runs) {
    if (!run.ok) {
      // The groups that did run were really paid; the failed group settled
      // its own spend against its shard ledger before reporting.
      (void)ledger_.Settle(query_id, granted, total_paid);
      paid_units_->Increment(total_paid);
      queries_failed_->Increment();
      serve_span.Annotate("outcome", "failed_shard");
      return run.status;
    }
  }

  util::trace::Span merge_span("merge");
  merge_span.Annotate("owners", static_cast<int64_t>(owners.size()));
  obs::StageTimer merge_timer(obs::Stage::kMerge);
  QueryResponse response;
  response.query_id = query_id;
  response.granted_budget = granted;
  response.paid = total_paid;
  response.queried_speeds.assign(request.queried.size(), 0.0);
  const bool merge_variances = options_.engine.fault_tolerant_dispatch;
  if (merge_variances) {
    response.queried_variances.assign(request.queried.size(), 0.0);
  }
  std::vector<std::pair<graph::RoadId, crowd::DegradeReason>> degraded;
  for (const GroupRun& run : runs) {
    for (size_t j = 0; j < run.indices->size(); ++j) {
      const size_t idx = (*run.indices)[j];
      response.queried_speeds[idx] = run.response.queried_speeds[j];
      if (merge_variances && j < run.response.queried_variances.size()) {
        response.queried_variances[idx] = run.response.queried_variances[j];
      }
    }
    response.probed_roads.insert(response.probed_roads.end(),
                                 run.response.probed_roads.begin(),
                                 run.response.probed_roads.end());
    response.underfilled_roads.insert(response.underfilled_roads.end(),
                                      run.response.underfilled_roads.begin(),
                                      run.response.underfilled_roads.end());
    for (size_t d = 0; d < run.response.degraded_roads.size(); ++d) {
      degraded.emplace_back(run.response.degraded_roads[d],
                            d < run.response.degraded_reasons.size()
                                ? run.response.degraded_reasons[d]
                                : crowd::DegradeReason::kLoadShed);
    }
    response.ocs_millis += run.response.ocs_millis;
    response.crowd_millis += run.response.crowd_millis;
    response.gsp_millis += run.response.gsp_millis;
    response.dispatch_span_ms =
        std::max(response.dispatch_span_ms, run.response.dispatch_span_ms);
    response.gsp_sweeps =
        std::max(response.gsp_sweeps, run.response.gsp_sweeps);
  }
  // Halo roads near a cut can be probed by two shards; the merged
  // provenance reports each road once.
  std::sort(response.probed_roads.begin(), response.probed_roads.end());
  response.probed_roads.erase(std::unique(response.probed_roads.begin(),
                                          response.probed_roads.end()),
                              response.probed_roads.end());
  std::sort(response.underfilled_roads.begin(),
            response.underfilled_roads.end());
  response.underfilled_roads.erase(
      std::unique(response.underfilled_roads.begin(),
                  response.underfilled_roads.end()),
      response.underfilled_roads.end());
  std::sort(degraded.begin(), degraded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  degraded.erase(std::unique(degraded.begin(), degraded.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 degraded.end());
  response.degraded_roads.reserve(degraded.size());
  response.degraded_reasons.reserve(degraded.size());
  for (const auto& [road, reason] : degraded) {
    response.degraded_roads.push_back(road);
    response.degraded_reasons.push_back(reason);
  }
  merge_timer.Stop();
  merge_span.End();
  obs::RecordEvent(obs::EventKind::kShardMerge, query_id, total_paid,
                   static_cast<int64_t>(owners.size()));

  const util::Status settled =
      ledger_.Settle(query_id, granted, response.paid);
  if (!settled.ok()) {
    queries_failed_->Increment();
    serve_span.Annotate("outcome", "failed_settle");
    return settled;
  }
  RecordServed(response, serve_timer.ElapsedMillis());
  serve_span.Annotate("paid", static_cast<int64_t>(response.paid));
  serve_span.Annotate("outcome", "served");
  serve_span.End();
  if (trace) response.trace_summary = util::trace::Summarize(*trace);
  return response;
}

util::Result<QueryResponse> ShardedEngine::ServePeriodicFallback(
    const QueryRequest& request, const traffic::DayMatrix& world) {
  util::Timer serve_timer;
  if (!EnterServe()) {
    queries_rejected_->Increment();
    return util::Status::FailedPrecondition(
        "engine draining: no new queries admitted");
  }
  struct GateExit {
    ShardedEngine* engine;
    ~GateExit() { engine->ExitServe(); }
  } gate_exit{this};

  if (&world != world_) {
    queries_rejected_->Increment();
    return util::Status::InvalidArgument(
        "sharded engine can only serve the world its shards were "
        "projected from");
  }
  const util::Status valid = ValidateRequest(request);
  if (!valid.ok()) {
    queries_rejected_->Increment();
    return valid;
  }

  const int64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::vector<size_t>> group_indices(shards_.size());
  std::vector<int> owners;
  for (size_t i = 0; i < request.queried.size(); ++i) {
    const int s = partition_.OwnerOf(request.queried[i]);
    if (group_indices[static_cast<size_t>(s)].empty()) owners.push_back(s);
    group_indices[static_cast<size_t>(s)].push_back(i);
  }
  std::sort(owners.begin(), owners.end());

  QueryResponse response;
  response.query_id = query_id;
  response.queried_speeds.assign(request.queried.size(), 0.0);
  response.queried_variances.assign(request.queried.size(), 0.0);
  std::vector<graph::RoadId> degraded;
  for (const int s : owners) {
    Shard& shard = *shards_[static_cast<size_t>(s)];
    const std::vector<size_t>& indices =
        group_indices[static_cast<size_t>(s)];
    QueryRequest sub;
    sub.slot = request.slot;
    sub.selector = request.selector;
    sub.queried.reserve(indices.size());
    for (size_t idx : indices) {
      sub.queried.push_back(shard.layout.LocalId(request.queried[idx]));
    }
    util::Result<QueryResponse> served =
        shard.engine->ServePeriodicFallback(sub, shard.world);
    if (!served.ok()) {
      queries_failed_->Increment();
      return served.status();
    }
    GlobalizeResponse(shard, *served);
    for (size_t j = 0; j < indices.size(); ++j) {
      response.queried_speeds[indices[j]] = served->queried_speeds[j];
      if (j < served->queried_variances.size()) {
        response.queried_variances[indices[j]] =
            served->queried_variances[j];
      }
    }
    degraded.insert(degraded.end(), served->degraded_roads.begin(),
                    served->degraded_roads.end());
  }
  std::sort(degraded.begin(), degraded.end());
  degraded.erase(std::unique(degraded.begin(), degraded.end()),
                 degraded.end());
  response.degraded_roads = std::move(degraded);
  response.degraded_reasons.assign(response.degraded_roads.size(),
                                   crowd::DegradeReason::kLoadShed);

  serve_latency_->Record(serve_timer.ElapsedMillis());
  queries_served_->Increment();
  queries_shed_->Increment();
  roads_degraded_->Increment(
      static_cast<int64_t>(response.degraded_roads.size()));
  degraded_load_shed_->Increment(
      static_cast<int64_t>(response.degraded_roads.size()));
  return response;
}

// ---------------------------------------------------------------------------
// Introspection

EngineStats ShardedEngine::stats() const {
  EngineStats snapshot;
  snapshot.queries_served = queries_served_->value();
  snapshot.queries_rejected = queries_rejected_->value();
  snapshot.queries_failed = queries_failed_->value();
  snapshot.total_paid = paid_units_->value();
  snapshot.queries_shed = queries_shed_->value();
  snapshot.roads_degraded = roads_degraded_->value();
  snapshot.degraded_deadline = degraded_deadline_->value();
  snapshot.degraded_outlier = degraded_outlier_->value();
  snapshot.degraded_unstaffed = degraded_unstaffed_->value();
  snapshot.degraded_load_shed = degraded_load_shed_->value();
  snapshot.ocs_latency = ocs_latency_->Snapshot();
  snapshot.crowd_latency = crowd_latency_->Snapshot();
  snapshot.gsp_latency = gsp_latency_->Snapshot();
  snapshot.serve_latency = serve_latency_->Snapshot();
  snapshot.total_ocs_millis = snapshot.ocs_latency.sum_ms;
  snapshot.total_crowd_millis = snapshot.crowd_latency.sum_ms;
  snapshot.total_gsp_millis = snapshot.gsp_latency.sum_ms;
  snapshot.shards.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const EngineStats sub = shards_[s]->engine->stats();
    snapshot.crowd_retries += sub.crowd_retries;
    snapshot.crowd_reassignments += sub.crowd_reassignments;
    snapshot.crowd_deadline_misses += sub.crowd_deadline_misses;
    snapshot.reports_late += sub.reports_late;
    snapshot.reports_duplicate += sub.reports_duplicate;
    snapshot.reports_outlier += sub.reports_outlier;
    snapshot.gamma_cache.hits += sub.gamma_cache.hits;
    snapshot.gamma_cache.misses += sub.gamma_cache.misses;
    snapshot.gamma_cache.coalesced += sub.gamma_cache.coalesced;
    snapshot.gamma_cache.evictions += sub.gamma_cache.evictions;
    snapshot.gamma_cache.warm_loads += sub.gamma_cache.warm_loads;
    snapshot.gamma_cache.persist_failures += sub.gamma_cache.persist_failures;
    snapshot.gamma_cache.resident_tables += sub.gamma_cache.resident_tables;
    snapshot.gamma_cache.resident_bytes += sub.gamma_cache.resident_bytes;
    ShardStats entry;
    entry.shard = static_cast<int>(s);
    entry.queries_served = sub.queries_served;
    entry.queries_rejected = sub.queries_rejected;
    entry.queries_failed = sub.queries_failed;
    entry.roads_degraded = sub.roads_degraded;
    entry.gamma_cache_bytes = sub.gamma_cache.resident_bytes;
    snapshot.shards.push_back(entry);
  }
  return snapshot;
}

void ShardedEngine::SyncWorkers(const std::vector<crowd::Worker>& workers) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->registry->ReplaceWorkers(ProjectWorkers(shard->layout, workers));
  }
}

void ShardedEngine::SyncWorld() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const partition::ShardLayout& layout = shard->layout;
    for (int slot = 0; slot < world_->num_slots(); ++slot) {
      for (int local = 0; local < layout.num_members(); ++local) {
        shard->world.At(slot, local) =
            world_->At(slot, layout.members[static_cast<size_t>(local)]);
      }
    }
  }
}

void ShardedEngine::SetFaultPlan(const crowd::FaultPlan& plan) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    crowd::FaultPlan local(plan.default_spec(), plan.seed());
    for (const auto& [road, spec] : plan.road_specs()) {
      const graph::RoadId local_id = shard->layout.LocalId(road);
      if (local_id != graph::kInvalidRoad) local.SetRoadSpec(local_id, spec);
    }
    for (const auto& [worker, spec] : plan.worker_specs()) {
      local.SetWorkerSpec(worker, spec);
    }
    shard->engine->SetFaultPlan(local);
  }
}

util::Result<std::vector<int>> ShardedEngine::RefineSlot(int slot) {
  std::vector<int> rows_per_shard;
  rows_per_shard.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    util::Result<int> rows = shards_[s]->system->RefineSlot(slot);
    if (!rows.ok()) {
      return util::Status(rows.status().code(),
                          "shard " + std::to_string(s) + ": " +
                              std::string(rows.status().message()));
    }
    rows_per_shard.push_back(*rows);
  }
  return rows_per_shard;
}

}  // namespace crowdrtse::server
