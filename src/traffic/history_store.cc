#include "traffic/history_store.h"

#include <string>

#include "util/logging.h"

namespace crowdrtse::traffic {

HistoryStore::HistoryStore(int num_roads, int num_days, int num_slots)
    : num_roads_(num_roads),
      num_days_(num_days),
      num_slots_(num_slots),
      data_(static_cast<size_t>(num_roads) * static_cast<size_t>(num_days) *
                static_cast<size_t>(num_slots),
            0.0) {}

double& HistoryStore::At(int day, int slot, graph::RoadId road) {
  return data_[Index(day, slot, road)];
}

double HistoryStore::At(int day, int slot, graph::RoadId road) const {
  return data_[Index(day, slot, road)];
}

util::Status HistoryStore::SetDay(int day, const DayMatrix& matrix) {
  if (day < 0 || day >= num_days_) {
    return util::Status::OutOfRange("day out of range: " +
                                    std::to_string(day));
  }
  if (matrix.num_roads() != num_roads_ || matrix.num_slots() != num_slots_) {
    return util::Status::InvalidArgument("day matrix shape mismatch");
  }
  for (int slot = 0; slot < num_slots_; ++slot) {
    const double* src = matrix.SlotPtr(slot);
    for (graph::RoadId r = 0; r < num_roads_; ++r) {
      data_[Index(day, slot, r)] = src[r];
    }
  }
  return util::Status::Ok();
}

std::vector<double> HistoryStore::Series(graph::RoadId road, int slot) const {
  CROWDRTSE_CHECK(road >= 0 && road < num_roads_);
  CROWDRTSE_CHECK(slot >= 0 && slot < num_slots_);
  std::vector<double> series(static_cast<size_t>(num_days_));
  for (int day = 0; day < num_days_; ++day) {
    series[static_cast<size_t>(day)] = data_[Index(day, slot, road)];
  }
  return series;
}

util::Status HistoryStore::AddRecord(const SpeedRecord& record) {
  if (record.day < 0 || record.day >= num_days_) {
    return util::Status::OutOfRange("record day out of range");
  }
  if (record.slot < 0 || record.slot >= num_slots_) {
    return util::Status::OutOfRange("record slot out of range");
  }
  if (record.road < 0 || record.road >= num_roads_) {
    return util::Status::OutOfRange("record road out of range");
  }
  data_[Index(record.day, record.slot, record.road)] = record.speed_kmh;
  return util::Status::Ok();
}

}  // namespace crowdrtse::traffic
