#ifndef CROWDRTSE_TRAFFIC_HISTORY_IO_H_
#define CROWDRTSE_TRAFFIC_HISTORY_IO_H_

#include <string>
#include <vector>

#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::traffic {

/// Binary persistence for the historical record (the offline stage's input
/// is collected once and reused across training runs): magic + version +
/// shape + the flat speed array, little-endian.
class HistorySerializer {
 public:
  static std::string Serialize(const HistoryStore& history);
  static util::Result<HistoryStore> Deserialize(const std::string& data);
  static util::Status SaveToFile(const HistoryStore& history,
                                 const std::string& path);
  static util::Result<HistoryStore> LoadFromFile(const std::string& path);
};

/// CSV interchange for record slices (day,slot,road,speed_kmh). Full
/// histories are hundreds of MB as text, so CSV is for excerpts and
/// external tools; the binary format above is the system format.
std::string RecordsToCsv(const std::vector<SpeedRecord>& records);
util::Result<std::vector<SpeedRecord>> RecordsFromCsv(
    const std::string& text);

/// Extracts one day of a history as records (e.g. to export a sample).
std::vector<SpeedRecord> ExtractDay(const HistoryStore& history, int day);

}  // namespace crowdrtse::traffic

#endif  // CROWDRTSE_TRAFFIC_HISTORY_IO_H_
