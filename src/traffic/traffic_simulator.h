#ifndef CROWDRTSE_TRAFFIC_TRAFFIC_SIMULATOR_H_
#define CROWDRTSE_TRAFFIC_TRAFFIC_SIMULATOR_H_

#include <vector>

#include "graph/graph.h"
#include "traffic/history_store.h"
#include "traffic/time_slots.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::traffic {

/// Knobs of the synthetic traffic ground truth. The simulator substitutes
/// for the paper's crawled Hong Kong speed feed (see DESIGN.md §2); it
/// produces the three statistical ingredients CrowdRTSE exploits:
///  * periodicity  — each road has a recurrent daily profile (free-flow base
///    dipping through morning/evening rush), with per-road "periodicity
///    intensity" (the sigma of day-to-day deviations);
///  * correlation  — fluctuations are diffused along the network so adjacent
///    roads co-move (a flow system);
///  * accidents    — random incidents push speeds far from the profile, the
///    accidental variance the paper says periodicity-only methods miss.
struct TrafficModelOptions {
  int num_days = 30;  // 607 roads * 288 slots * 30 days = 5,244,480 records

  // Per-road free-flow base speed, uniform in [min, max] km/h.
  double min_base_speed = 25.0;
  double max_base_speed = 90.0;

  // Rush-hour profile: fractional dip magnitudes, uniform per road.
  double min_rush_dip = 0.15;
  double max_rush_dip = 0.55;

  // Day-to-day noise scale (km/h): the per-road "periodicity intensity".
  // Small -> strongly periodic road; large -> weakly periodic road.
  double min_noise_scale = 1.0;
  double max_noise_scale = 12.0;

  // AR(1) persistence of the latent fluctuation across consecutive slots.
  double temporal_persistence = 0.95;

  // Spatial coupling: smoothing passes of the innovation noise over the
  // graph; each pass mixes `spatial_mix` of the neighbour average in.
  int spatial_smoothing_passes = 3;
  double spatial_mix = 0.7;

  // Incidents: per-road per-day probability, fractional severity and
  // duration. Severity decays by half per hop as congestion spills over.
  double incident_rate_per_road_day = 0.12;
  double incident_severity = 0.55;
  int incident_duration_slots = 12;  // one hour
  int incident_spillover_hops = 1;

  // Weekend seasonality (off by default so the paper-shaped benches keep a
  // single daily regime): on days with day % 7 in {5, 6} the rush-hour
  // dips are scaled by this factor (< 1 = lighter weekend rush). The
  // paper's 3-month crawl inevitably mixes such regimes; enabling this
  // lets tests quantify what that does to the per-slot sigma estimates.
  double weekend_rush_factor = 1.0;

  // Hard floor so speeds stay physical.
  double min_speed = 2.0;
};

/// Per-road latent parameters drawn once at construction; exposed so tests
/// can assert the generated data matches the intended statistics.
struct RoadProfile {
  double base_speed = 0.0;
  double morning_dip = 0.0;   // fractional
  double evening_dip = 0.0;   // fractional
  double noise_scale = 0.0;   // km/h, periodicity intensity
};

/// Deterministic spatio-temporal traffic ground-truth generator.
///
/// Day `d` is a pure function of (seed, d): historical days and held-out
/// evaluation days can be generated independently and reproducibly.
class TrafficSimulator {
 public:
  /// Draws per-road profiles with `seed`. The graph reference must outlive
  /// the simulator.
  TrafficSimulator(const graph::Graph& graph,
                   const TrafficModelOptions& options, uint64_t seed);

  const TrafficModelOptions& options() const { return options_; }
  const std::vector<RoadProfile>& profiles() const { return profiles_; }

  /// The deterministic periodic component of road `r` at slot `t` on a
  /// weekday (what an infinite weekday history would estimate as mu_r^t,
  /// up to incident bias).
  double PeriodicSpeed(graph::RoadId road, int slot) const;

  /// Day-aware periodic component (applies the weekend factor when `day`
  /// falls on a weekend).
  double PeriodicSpeedOnDay(graph::RoadId road, int slot, int day) const;

  /// True when `day` is a weekend under the simulator's 7-day week.
  static bool IsWeekend(int day) { return day % 7 == 5 || day % 7 == 6; }

  /// Generates the full ground truth of day `day`.
  DayMatrix GenerateDay(int day) const;

  /// Generates options().num_days consecutive days as the offline history H.
  HistoryStore GenerateHistory() const;

  /// Convenience: a held-out evaluation day that never appears in the
  /// history (day index = num_days + offset).
  DayMatrix GenerateEvaluationDay(int offset = 0) const;

 private:
  const graph::Graph& graph_;
  TrafficModelOptions options_;
  uint64_t seed_;
  std::vector<RoadProfile> profiles_;
};

/// Validates option ranges (probabilities in [0,1], positive speeds, ...).
util::Status ValidateTrafficOptions(const TrafficModelOptions& options);

}  // namespace crowdrtse::traffic

#endif  // CROWDRTSE_TRAFFIC_TRAFFIC_SIMULATOR_H_
