#ifndef CROWDRTSE_TRAFFIC_TIME_SLOTS_H_
#define CROWDRTSE_TRAFFIC_TIME_SLOTS_H_

namespace crowdrtse::traffic {

/// The paper divides each day into 288 five-minute slots; slot t of
/// different days is expected to behave alike (periodicity).
inline constexpr int kSlotsPerDay = 288;
inline constexpr int kMinutesPerSlot = 5;

/// Slot index of a (possibly out-of-range) hour:minute of day.
constexpr int SlotOfTime(int hour, int minute) {
  return (hour * 60 + minute) / kMinutesPerSlot;
}

/// Hour of day (0..23) for a slot.
constexpr int HourOfSlot(int slot) {
  return (slot * kMinutesPerSlot) / 60;
}

/// Minute within the hour for a slot.
constexpr int MinuteOfSlot(int slot) {
  return (slot * kMinutesPerSlot) % 60;
}

/// Wraps any integer onto [0, kSlotsPerDay).
constexpr int WrapSlot(int slot) {
  const int m = slot % kSlotsPerDay;
  return m < 0 ? m + kSlotsPerDay : m;
}

/// True for a valid slot index.
constexpr bool IsValidSlot(int slot) {
  return slot >= 0 && slot < kSlotsPerDay;
}

}  // namespace crowdrtse::traffic

#endif  // CROWDRTSE_TRAFFIC_TIME_SLOTS_H_
