#ifndef CROWDRTSE_TRAFFIC_HISTORY_STORE_H_
#define CROWDRTSE_TRAFFIC_HISTORY_STORE_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "traffic/speed_record.h"
#include "traffic/time_slots.h"
#include "util/status.h"

namespace crowdrtse::traffic {

/// A full day of speeds: slot-major matrix (slot, road) -> speed. The
/// simulator produces these and the evaluation harness uses one as the
/// realtime ground truth.
class DayMatrix {
 public:
  DayMatrix() = default;
  DayMatrix(int num_slots, int num_roads)
      : num_slots_(num_slots),
        num_roads_(num_roads),
        data_(static_cast<size_t>(num_slots) * static_cast<size_t>(num_roads),
              0.0) {}

  int num_slots() const { return num_slots_; }
  int num_roads() const { return num_roads_; }

  double& At(int slot, graph::RoadId road) {
    return data_[static_cast<size_t>(slot) * static_cast<size_t>(num_roads_) +
                 static_cast<size_t>(road)];
  }
  double At(int slot, graph::RoadId road) const {
    return data_[static_cast<size_t>(slot) * static_cast<size_t>(num_roads_) +
                 static_cast<size_t>(road)];
  }

  /// Contiguous speeds of all roads in `slot`.
  const double* SlotPtr(int slot) const {
    return data_.data() +
           static_cast<size_t>(slot) * static_cast<size_t>(num_roads_);
  }
  double* SlotPtr(int slot) {
    return data_.data() +
           static_cast<size_t>(slot) * static_cast<size_t>(num_roads_);
  }

  /// Copy of one slot's speed vector.
  std::vector<double> SlotSpeeds(int slot) const {
    return {SlotPtr(slot), SlotPtr(slot) + num_roads_};
  }

 private:
  int num_slots_ = 0;
  int num_roads_ = 0;
  std::vector<double> data_;
};

/// The historical record H: num_days full days of per-slot speeds. Layout is
/// (day, slot, road) flat-major so that parameter inference streams the
/// per-(road, slot) series across days with a fixed stride.
class HistoryStore {
 public:
  HistoryStore() = default;
  HistoryStore(int num_roads, int num_days, int num_slots = kSlotsPerDay);

  int num_roads() const { return num_roads_; }
  int num_days() const { return num_days_; }
  int num_slots() const { return num_slots_; }
  size_t num_records() const { return data_.size(); }

  double& At(int day, int slot, graph::RoadId road);
  double At(int day, int slot, graph::RoadId road) const;

  /// Installs an entire day at once.
  util::Status SetDay(int day, const DayMatrix& matrix);

  /// The speeds of (road, slot) across all days — the periodic sample the
  /// RTF moment estimator consumes.
  std::vector<double> Series(graph::RoadId road, int slot) const;

  /// Appends individual records (e.g. parsed from CSV). Out-of-range fields
  /// are rejected.
  util::Status AddRecord(const SpeedRecord& record);

 private:
  size_t Index(int day, int slot, graph::RoadId road) const {
    return (static_cast<size_t>(day) * static_cast<size_t>(num_slots_) +
            static_cast<size_t>(slot)) *
               static_cast<size_t>(num_roads_) +
           static_cast<size_t>(road);
  }

  int num_roads_ = 0;
  int num_days_ = 0;
  int num_slots_ = 0;
  std::vector<double> data_;
};

}  // namespace crowdrtse::traffic

#endif  // CROWDRTSE_TRAFFIC_HISTORY_STORE_H_
