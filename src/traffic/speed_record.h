#ifndef CROWDRTSE_TRAFFIC_SPEED_RECORD_H_
#define CROWDRTSE_TRAFFIC_SPEED_RECORD_H_

#include "graph/graph.h"

namespace crowdrtse::traffic {

/// One historical observation: the (average) traffic speed of a road in a
/// specific five-minute slot of a specific day. The Hong Kong feed the paper
/// crawled publishes exactly this tuple every 5 minutes per monitored road.
struct SpeedRecord {
  int day = 0;
  int slot = 0;
  graph::RoadId road = graph::kInvalidRoad;
  double speed_kmh = 0.0;
};

}  // namespace crowdrtse::traffic

#endif  // CROWDRTSE_TRAFFIC_SPEED_RECORD_H_
