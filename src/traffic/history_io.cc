#include "traffic/history_io.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/serialize.h"
#include "util/string_util.h"

namespace crowdrtse::traffic {

namespace {
constexpr uint32_t kMagic = 0x48495331;  // "HIS1"
constexpr uint32_t kVersion = 1;
}  // namespace

std::string HistorySerializer::Serialize(const HistoryStore& history) {
  util::BinaryWriter writer;
  writer.WriteUint32(kMagic);
  writer.WriteUint32(kVersion);
  writer.WriteInt32(history.num_roads());
  writer.WriteInt32(history.num_days());
  writer.WriteInt32(history.num_slots());
  std::vector<double> flat;
  flat.reserve(history.num_records());
  for (int day = 0; day < history.num_days(); ++day) {
    for (int slot = 0; slot < history.num_slots(); ++slot) {
      for (graph::RoadId r = 0; r < history.num_roads(); ++r) {
        flat.push_back(history.At(day, slot, r));
      }
    }
  }
  writer.WriteDoubleVector(flat);
  return writer.buffer();
}

util::Result<HistoryStore> HistorySerializer::Deserialize(
    const std::string& data) {
  util::BinaryReader reader(data);
  util::Result<uint32_t> magic = reader.ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return util::Status::InvalidArgument("not a history file");
  }
  util::Result<uint32_t> version = reader.ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return util::Status::InvalidArgument("unsupported history version");
  }
  util::Result<int32_t> num_roads = reader.ReadInt32();
  util::Result<int32_t> num_days = reader.ReadInt32();
  util::Result<int32_t> num_slots = reader.ReadInt32();
  if (!num_roads.ok()) return num_roads.status();
  if (!num_days.ok()) return num_days.status();
  if (!num_slots.ok()) return num_slots.status();
  if (*num_roads < 0 || *num_days < 0 || *num_slots < 0) {
    return util::Status::InvalidArgument("negative history shape");
  }
  util::Result<std::vector<double>> flat = reader.ReadDoubleVector();
  if (!flat.ok()) return flat.status();
  const size_t expected = static_cast<size_t>(*num_roads) *
                          static_cast<size_t>(*num_days) *
                          static_cast<size_t>(*num_slots);
  if (flat->size() != expected) {
    return util::Status::InvalidArgument(
        "history payload size mismatch: " + std::to_string(flat->size()) +
        " vs " + std::to_string(expected));
  }
  HistoryStore history(*num_roads, *num_days, *num_slots);
  size_t i = 0;
  for (int day = 0; day < *num_days; ++day) {
    for (int slot = 0; slot < *num_slots; ++slot) {
      for (graph::RoadId r = 0; r < *num_roads; ++r) {
        history.At(day, slot, r) = (*flat)[i++];
      }
    }
  }
  return history;
}

util::Status HistorySerializer::SaveToFile(const HistoryStore& history,
                                           const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open " + path);
  const std::string data = Serialize(history);
  file.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!file) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Result<HistoryStore> HistorySerializer::LoadFromFile(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return util::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return Deserialize(buffer.str());
}

std::string RecordsToCsv(const std::vector<SpeedRecord>& records) {
  util::CsvTable table;
  table.header = {"day", "slot", "road", "speed_kmh"};
  table.rows.reserve(records.size());
  for (const SpeedRecord& r : records) {
    table.rows.push_back({std::to_string(r.day), std::to_string(r.slot),
                          std::to_string(r.road),
                          util::FormatDouble(r.speed_kmh, 3)});
  }
  return util::ToCsv(table);
}

util::Result<std::vector<SpeedRecord>> RecordsFromCsv(
    const std::string& text) {
  util::Result<util::CsvTable> table = util::ParseCsv(text);
  if (!table.ok()) return table.status();
  const int day_col = table->ColumnIndex("day");
  const int slot_col = table->ColumnIndex("slot");
  const int road_col = table->ColumnIndex("road");
  const int speed_col = table->ColumnIndex("speed_kmh");
  if (day_col < 0 || slot_col < 0 || road_col < 0 || speed_col < 0) {
    return util::Status::InvalidArgument(
        "records CSV needs day,slot,road,speed_kmh columns");
  }
  std::vector<SpeedRecord> records;
  records.reserve(table->rows.size());
  for (const auto& row : table->rows) {
    SpeedRecord record;
    util::Result<int> day = util::ParseInt(row[static_cast<size_t>(day_col)]);
    util::Result<int> slot =
        util::ParseInt(row[static_cast<size_t>(slot_col)]);
    util::Result<int> road =
        util::ParseInt(row[static_cast<size_t>(road_col)]);
    util::Result<double> speed =
        util::ParseDouble(row[static_cast<size_t>(speed_col)]);
    if (!day.ok()) return day.status();
    if (!slot.ok()) return slot.status();
    if (!road.ok()) return road.status();
    if (!speed.ok()) return speed.status();
    record.day = *day;
    record.slot = *slot;
    record.road = *road;
    record.speed_kmh = *speed;
    records.push_back(record);
  }
  return records;
}

std::vector<SpeedRecord> ExtractDay(const HistoryStore& history, int day) {
  std::vector<SpeedRecord> records;
  if (day < 0 || day >= history.num_days()) return records;
  records.reserve(static_cast<size_t>(history.num_slots()) *
                  static_cast<size_t>(history.num_roads()));
  for (int slot = 0; slot < history.num_slots(); ++slot) {
    for (graph::RoadId r = 0; r < history.num_roads(); ++r) {
      records.push_back({day, slot, r, history.At(day, slot, r)});
    }
  }
  return records;
}

}  // namespace crowdrtse::traffic
