#include "traffic/traffic_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdrtse::traffic {

namespace {

// Gaussian bump centred at `center` slots with width `width` slots.
double Bump(int slot, double center, double width) {
  const double d = (static_cast<double>(slot) - center) / width;
  return std::exp(-0.5 * d * d);
}

constexpr double kMorningCenter = 8.25 * 60.0 / kMinutesPerSlot;   // ~08:15
constexpr double kEveningCenter = 18.0 * 60.0 / kMinutesPerSlot;   // ~18:00
constexpr double kRushWidth = 1.25 * 60.0 / kMinutesPerSlot;       // ~75 min

}  // namespace

util::Status ValidateTrafficOptions(const TrafficModelOptions& options) {
  if (options.num_days <= 0) {
    return util::Status::InvalidArgument("num_days must be positive");
  }
  if (options.min_base_speed <= 0.0 ||
      options.max_base_speed < options.min_base_speed) {
    return util::Status::InvalidArgument("bad base speed range");
  }
  if (options.min_rush_dip < 0.0 || options.max_rush_dip > 0.95 ||
      options.max_rush_dip < options.min_rush_dip) {
    return util::Status::InvalidArgument("bad rush dip range");
  }
  if (options.min_noise_scale < 0.0 ||
      options.max_noise_scale < options.min_noise_scale) {
    return util::Status::InvalidArgument("bad noise scale range");
  }
  if (options.temporal_persistence < 0.0 ||
      options.temporal_persistence >= 1.0) {
    return util::Status::InvalidArgument(
        "temporal_persistence must be in [0, 1)");
  }
  if (options.spatial_mix < 0.0 || options.spatial_mix > 1.0) {
    return util::Status::InvalidArgument("spatial_mix must be in [0, 1]");
  }
  if (options.incident_rate_per_road_day < 0.0 ||
      options.incident_rate_per_road_day > 1.0) {
    return util::Status::InvalidArgument("incident rate must be in [0, 1]");
  }
  if (options.incident_severity < 0.0 || options.incident_severity >= 1.0) {
    return util::Status::InvalidArgument(
        "incident severity must be in [0, 1)");
  }
  if (options.weekend_rush_factor < 0.0 ||
      options.weekend_rush_factor > 1.5) {
    return util::Status::InvalidArgument(
        "weekend_rush_factor must be in [0, 1.5]");
  }
  return util::Status::Ok();
}

TrafficSimulator::TrafficSimulator(const graph::Graph& graph,
                                   const TrafficModelOptions& options,
                                   uint64_t seed)
    : graph_(graph), options_(options), seed_(seed) {
  CROWDRTSE_CHECK(ValidateTrafficOptions(options).ok());
  util::Rng rng(seed);
  profiles_.resize(static_cast<size_t>(graph.num_roads()));
  for (auto& profile : profiles_) {
    profile.base_speed =
        rng.UniformDouble(options.min_base_speed, options.max_base_speed);
    profile.morning_dip =
        rng.UniformDouble(options.min_rush_dip, options.max_rush_dip);
    profile.evening_dip =
        rng.UniformDouble(options.min_rush_dip, options.max_rush_dip);
    profile.noise_scale =
        rng.UniformDouble(options.min_noise_scale, options.max_noise_scale);
  }
}

double TrafficSimulator::PeriodicSpeed(graph::RoadId road, int slot) const {
  return PeriodicSpeedOnDay(road, slot, /*day=*/0);
}

double TrafficSimulator::PeriodicSpeedOnDay(graph::RoadId road, int slot,
                                            int day) const {
  const RoadProfile& p = profiles_[static_cast<size_t>(road)];
  const double factor =
      IsWeekend(day) ? options_.weekend_rush_factor : 1.0;
  const double dip =
      factor * (p.morning_dip * Bump(slot, kMorningCenter, kRushWidth) +
                p.evening_dip * Bump(slot, kEveningCenter, kRushWidth));
  return std::max(options_.min_speed,
                  p.base_speed * (1.0 - std::min(dip, 0.9)));
}

DayMatrix TrafficSimulator::GenerateDay(int day) const {
  const int n = graph_.num_roads();
  DayMatrix out(kSlotsPerDay, n);
  // Each day gets its own deterministic stream.
  util::Rng rng(seed_ ^ (0xD1B54A32D192ED03ULL *
                         (static_cast<uint64_t>(day) + 1)));

  // --- incidents scheduled for the day --------------------------------
  // incident_drop[slot][road] accumulates fractional severity.
  std::vector<std::vector<double>> incident_drop(
      kSlotsPerDay, std::vector<double>(static_cast<size_t>(n), 0.0));
  for (graph::RoadId r = 0; r < n; ++r) {
    if (!rng.Bernoulli(options_.incident_rate_per_road_day)) continue;
    const int start = rng.UniformInt(0, kSlotsPerDay - 1);
    const int end = std::min(kSlotsPerDay,
                             start + options_.incident_duration_slots);
    // Severity decays by half per hop of spillover.
    std::vector<graph::RoadId> frontier{r};
    std::vector<bool> seen(static_cast<size_t>(n), false);
    seen[static_cast<size_t>(r)] = true;
    double severity = options_.incident_severity;
    for (int hop = 0; hop <= options_.incident_spillover_hops && severity > 0.01;
         ++hop) {
      for (graph::RoadId road : frontier) {
        for (int slot = start; slot < end; ++slot) {
          incident_drop[static_cast<size_t>(slot)]
                       [static_cast<size_t>(road)] += severity;
        }
      }
      std::vector<graph::RoadId> next;
      for (graph::RoadId road : frontier) {
        for (const graph::Adjacency& adj : graph_.Neighbors(road)) {
          if (!seen[static_cast<size_t>(adj.neighbor)]) {
            seen[static_cast<size_t>(adj.neighbor)] = true;
            next.push_back(adj.neighbor);
          }
        }
      }
      frontier = std::move(next);
      severity *= 0.5;
    }
  }

  // --- spatio-temporal latent fluctuation -----------------------------
  const double phi = options_.temporal_persistence;
  const double innovation_scale = std::sqrt(1.0 - phi * phi);
  std::vector<double> z(static_cast<size_t>(n));
  std::vector<double> noise(static_cast<size_t>(n));
  std::vector<double> smoothed(static_cast<size_t>(n));
  for (auto& v : z) v = rng.Normal();

  for (int slot = 0; slot < kSlotsPerDay; ++slot) {
    // Innovation: iid noise diffused over the graph so neighbours co-move.
    for (auto& v : noise) v = rng.Normal();
    for (int pass = 0; pass < options_.spatial_smoothing_passes; ++pass) {
      for (graph::RoadId r = 0; r < n; ++r) {
        const auto neighbors = graph_.Neighbors(r);
        if (neighbors.empty()) {
          smoothed[static_cast<size_t>(r)] = noise[static_cast<size_t>(r)];
          continue;
        }
        double avg = 0.0;
        for (const graph::Adjacency& adj : neighbors) {
          avg += noise[static_cast<size_t>(adj.neighbor)];
        }
        avg /= static_cast<double>(neighbors.size());
        smoothed[static_cast<size_t>(r)] =
            (1.0 - options_.spatial_mix) * noise[static_cast<size_t>(r)] +
            options_.spatial_mix * avg;
      }
      noise.swap(smoothed);
    }
    double* speeds = out.SlotPtr(slot);
    for (graph::RoadId r = 0; r < n; ++r) {
      z[static_cast<size_t>(r)] = phi * z[static_cast<size_t>(r)] +
                                  innovation_scale *
                                      noise[static_cast<size_t>(r)];
      const double periodic = PeriodicSpeedOnDay(r, slot, day);
      const double drop = std::min(
          0.9, incident_drop[static_cast<size_t>(slot)]
                            [static_cast<size_t>(r)]);
      const double speed =
          periodic * (1.0 - drop) +
          profiles_[static_cast<size_t>(r)].noise_scale *
              z[static_cast<size_t>(r)];
      speeds[r] = std::max(options_.min_speed, speed);
    }
  }
  return out;
}

HistoryStore TrafficSimulator::GenerateHistory() const {
  HistoryStore store(graph_.num_roads(), options_.num_days, kSlotsPerDay);
  for (int day = 0; day < options_.num_days; ++day) {
    const DayMatrix matrix = GenerateDay(day);
    CROWDRTSE_CHECK(store.SetDay(day, matrix).ok());
  }
  return store;
}

DayMatrix TrafficSimulator::GenerateEvaluationDay(int offset) const {
  return GenerateDay(options_.num_days + offset);
}

}  // namespace crowdrtse::traffic
