#ifndef CROWDRTSE_CROWD_CROWD_SIMULATOR_H_
#define CROWDRTSE_CROWD_CROWD_SIMULATOR_H_

#include <vector>

#include "crowd/aggregation.h"
#include "crowd/cost_model.h"
#include "crowd/task_assignment.h"
#include "crowd/worker.h"
#include "graph/graph.h"
#include "traffic/history_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// One probed road: the aggregated crowdsourced speed \hat v_i plus its
/// provenance.
struct ProbeResult {
  graph::RoadId road = graph::kInvalidRoad;
  double probed_kmh = 0.0;
  int num_answers = 0;
  int paid_units = 0;
};

/// The whole crowdsourcing round for a query.
struct CrowdRound {
  std::vector<ProbeResult> probes;
  std::vector<SpeedAnswer> raw_answers;
  int total_paid = 0;
};

/// Options for the answer generation.
struct CrowdSimOptions {
  AggregationPolicy aggregation = AggregationPolicy::kTrimmedMean;
  /// Multiplicative bias spread of ad-hoc (non-pool) answerers.
  double min_bias = 0.96;
  double max_bias = 1.04;
  /// Additive reading noise of ad-hoc answerers (km/h std-dev).
  double min_noise_kmh = 0.5;
  double max_noise_kmh = 3.0;
  /// Probability an answer is junk (device glitch / wrong road): replaced
  /// by a uniform speed in [2, 120] km/h. Exercises the robust aggregators.
  double outlier_rate = 0.0;
};

/// Simulates the "launch crowdsourcing" step: for each selected road,
/// cost-many answers are collected around the ground-truth slot speed and
/// aggregated. Each answer costs one unit of payment, so a round's total
/// payment equals the sum of selected roads' costs — exactly the budget
/// spend accounted by OCS.
class CrowdSimulator {
 public:
  CrowdSimulator(const CrowdSimOptions& options, util::Rng rng);

  /// Probes `roads` against the ground-truth speeds of `truth` at `slot`.
  /// The number of answers per road is its cost under `costs`; answerers
  /// are ad-hoc (bias/noise drawn from the options' ranges).
  util::Result<CrowdRound> Probe(const std::vector<graph::RoadId>& roads,
                                 const CostModel& costs,
                                 const traffic::DayMatrix& truth, int slot);

  /// Executes a concrete assignment plan: each assigned worker reports her
  /// road once, with *her own* persistent bias and noise (not the ad-hoc
  /// ranges). Underfilled roads simply aggregate fewer answers. `workers`
  /// must contain every assigned worker id.
  util::Result<CrowdRound> ProbeWithAssignments(
      const AssignmentPlan& plan, const std::vector<Worker>& workers,
      const traffic::DayMatrix& truth, int slot);

  /// One synthetic reading by `worker` for `road`: her persistent bias and
  /// noise applied to the ground truth at `slot` (or junk, with the
  /// options' outlier rate). Advances the simulator's RNG — the dispatch
  /// controller's answer source. `road` and `slot` must be in range.
  SpeedAnswer GenerateAnswer(const Worker& worker, graph::RoadId road,
                             const traffic::DayMatrix& truth, int slot);

 private:
  CrowdSimOptions options_;
  util::Rng rng_;
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_CROWD_SIMULATOR_H_
