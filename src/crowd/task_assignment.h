#ifndef CROWDRTSE_CROWD_TASK_ASSIGNMENT_H_
#define CROWDRTSE_CROWD_TASK_ASSIGNMENT_H_

#include <vector>

#include "crowd/cost_model.h"
#include "crowd/worker.h"
#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// One task handed to one worker: report the speed of the road she is on.
struct TaskAssignment {
  WorkerId worker = -1;
  graph::RoadId road = graph::kInvalidRoad;
  int payment_units = 1;
};

/// The realised assignment for a crowdsourcing round.
struct AssignmentPlan {
  std::vector<TaskAssignment> assignments;
  /// Selected roads that could not collect their full answer quota from
  /// the workers present (OCS decided on road-level coverage; the platform
  /// must still find warm bodies).
  std::vector<graph::RoadId> underfilled_roads;
  int total_payment = 0;

  bool FullyStaffed() const { return underfilled_roads.empty(); }
};

/// Matches the OCS-selected roads to concrete workers: each selected road
/// needs cost_i answers, each worker can take at most one task per round
/// (she is driving — one report per slot). Workers are taken in ascending
/// noise order, so the cleanest reporters on a road are hired first. The
/// paper abstracts this step away ("she will be allocated with a task");
/// a running platform has to do it.
util::Result<AssignmentPlan> AssignTasks(
    const std::vector<graph::RoadId>& selected_roads,
    const CostModel& costs, const std::vector<Worker>& workers);

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_TASK_ASSIGNMENT_H_
