#include "crowd/worker_pool.h"

#include <algorithm>
#include <map>

namespace crowdrtse::crowd {

Worker WorkerPool::MakeWorker(WorkerId id, graph::RoadId road,
                              const WorkerPoolOptions& options,
                              util::Rng& rng) {
  Worker w;
  w.id = id;
  w.road = road;
  w.bias = rng.UniformDouble(options.min_bias, options.max_bias);
  w.noise_kmh =
      rng.UniformDouble(options.min_noise_kmh, options.max_noise_kmh);
  return w;
}

WorkerPool WorkerPool::ScatterUniform(
    const std::vector<graph::RoadId>& roads,
    const WorkerPoolOptions& options, util::Rng& rng) {
  WorkerPool pool;
  if (roads.empty() || options.num_workers <= 0) return pool;
  pool.workers_.reserve(static_cast<size_t>(options.num_workers));
  for (int i = 0; i < options.num_workers; ++i) {
    const graph::RoadId road =
        roads[static_cast<size_t>(rng.UniformUint64(roads.size()))];
    pool.workers_.push_back(
        MakeWorker(static_cast<WorkerId>(i), road, options, rng));
  }
  return pool;
}

WorkerPool WorkerPool::CoverRoads(const std::vector<graph::RoadId>& roads,
                                  int per_road,
                                  const WorkerPoolOptions& options,
                                  util::Rng& rng) {
  WorkerPool pool;
  WorkerId next_id = 0;
  pool.workers_.reserve(roads.size() * static_cast<size_t>(per_road));
  for (graph::RoadId road : roads) {
    for (int i = 0; i < per_road; ++i) {
      pool.workers_.push_back(MakeWorker(next_id++, road, options, rng));
    }
  }
  return pool;
}

std::vector<graph::RoadId> WorkerPool::CoveredRoads(int min_workers) const {
  std::map<graph::RoadId, int> counts;
  for (const Worker& w : workers_) ++counts[w.road];
  std::vector<graph::RoadId> covered;
  for (const auto& [road, count] : counts) {
    if (count >= min_workers) covered.push_back(road);
  }
  return covered;
}

std::vector<const Worker*> WorkerPool::WorkersOn(graph::RoadId road) const {
  std::vector<const Worker*> out;
  for (const Worker& w : workers_) {
    if (w.road == road) out.push_back(&w);
  }
  return out;
}

int WorkerPool::CountOn(graph::RoadId road) const {
  int count = 0;
  for (const Worker& w : workers_) {
    if (w.road == road) ++count;
  }
  return count;
}

}  // namespace crowdrtse::crowd
