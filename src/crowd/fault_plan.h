#ifndef CROWDRTSE_CROWD_FAULT_PLAN_H_
#define CROWDRTSE_CROWD_FAULT_PLAN_H_

#include <cstdint>
#include <unordered_map>

#include "crowd/worker.h"
#include "graph/graph.h"

namespace crowdrtse::crowd {

/// What the injection layer does to one dispatched task attempt. The real
/// crowd exhibits all of these (paper §V-A assumes none): a worker who
/// never answers, answers late, double-submits, or reports garbage.
enum class FaultKind {
  kNone,       // the worker answers normally, within her response latency
  kDrop,       // the answer never arrives
  kDelay,      // the answer arrives, but after the fault's injected delay
  kDuplicate,  // the answer arrives twice (double tap / client retry)
  kCorrupt,    // the answer arrives on time with a wild value
};

const char* FaultKindName(FaultKind kind);

/// Fault mix for one scope (default, per-road, or per-worker). Rates are
/// mutually exclusive probabilities; their sum is clamped to 1 and the
/// remainder is healthy behaviour.
struct FaultSpec {
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  double duplicate_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Injected answer latency of a kDelay fault, drawn uniformly (ms).
  /// Defaults sit past any sane per-attempt deadline.
  double delay_min_ms = 100.0;
  double delay_max_ms = 400.0;
  /// A kCorrupt answer is replaced by a uniform speed in this range (km/h).
  double corrupt_min_kmh = 0.0;
  double corrupt_max_kmh = 500.0;

  bool FaultFree() const {
    return drop_rate <= 0.0 && delay_rate <= 0.0 && duplicate_rate <= 0.0 &&
           corrupt_rate <= 0.0;
  }
};

/// Deterministic, seeded fault-injection layer over the simulated crowd.
///
/// Decisions are a pure hash of (seed, worker, road, attempt) — no shared
/// RNG stream — so the outcome of an attempt does not depend on dispatch
/// order, thread interleaving, or how many other faults fired before it.
/// That is what makes a faulted scenario replay bit-identically under
/// SimClock and lets tests pin exact retry counts. Precedence: a per-worker
/// spec overrides a per-road spec overrides the default spec.
class FaultPlan {
 public:
  /// The default plan injects nothing (every attempt is kNone).
  FaultPlan() = default;
  explicit FaultPlan(const FaultSpec& default_spec, uint64_t seed)
      : default_spec_(default_spec), seed_(seed) {}

  void SetDefault(const FaultSpec& spec) { default_spec_ = spec; }
  void SetRoadSpec(graph::RoadId road, const FaultSpec& spec) {
    road_specs_[road] = spec;
  }
  void SetWorkerSpec(WorkerId worker, const FaultSpec& spec) {
    worker_specs_[worker] = spec;
  }
  void set_seed(uint64_t seed) { seed_ = seed; }
  uint64_t seed() const { return seed_; }

  /// Scope accessors, so a sharded engine can remap a global plan's road
  /// specs into each shard's local id space (see ShardedEngine::SetFaultPlan).
  const FaultSpec& default_spec() const { return default_spec_; }
  const std::unordered_map<graph::RoadId, FaultSpec>& road_specs() const {
    return road_specs_;
  }
  const std::unordered_map<WorkerId, FaultSpec>& worker_specs() const {
    return worker_specs_;
  }

  bool FaultFree() const {
    return default_spec_.FaultFree() && road_specs_.empty() &&
           worker_specs_.empty();
  }

  /// The resolved outcome for attempt `attempt` (1-based) of `worker`
  /// reporting `road`. delay_ms / corrupt_kmh are populated only for the
  /// matching kinds.
  struct Outcome {
    FaultKind kind = FaultKind::kNone;
    double delay_ms = 0.0;
    double corrupt_kmh = 0.0;
  };
  Outcome Decide(WorkerId worker, graph::RoadId road, int attempt) const;

 private:
  const FaultSpec& SpecFor(WorkerId worker, graph::RoadId road) const;

  FaultSpec default_spec_;
  std::unordered_map<graph::RoadId, FaultSpec> road_specs_;
  std::unordered_map<WorkerId, FaultSpec> worker_specs_;
  uint64_t seed_ = 0x0fa17ed0c0ffee42ULL;
};

/// Stateless SplitMix64-style mixer shared by the fault plan and the
/// dispatch controller's jitter/latency draws: maps a (seed, a, b, c, salt)
/// tuple to an i.i.d.-looking uint64. Exposed so every deterministic draw
/// in the dispatch path goes through one audited construction.
uint64_t DispatchHash(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                      uint64_t salt);

/// The same hash mapped to a uniform double in [0, 1).
double DispatchHashUnit(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                        uint64_t salt);

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_FAULT_PLAN_H_
