#ifndef CROWDRTSE_CROWD_WORKER_POOL_H_
#define CROWDRTSE_CROWD_WORKER_POOL_H_

#include <vector>

#include "crowd/worker.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// Knobs for synthetic worker placement.
struct WorkerPoolOptions {
  /// Total workers registered with the platform at query time.
  int num_workers = 2000;
  /// Worker answer quality spread.
  double min_bias = 0.96;
  double max_bias = 1.04;
  double min_noise_kmh = 0.5;
  double max_noise_kmh = 3.0;
};

/// The pool of workers currently available, each pinned to the road she is
/// travelling on. R^w — the candidate set OCS may select from — is the set
/// of distinct roads covered by at least `min answers` workers.
class WorkerPool {
 public:
  WorkerPool() = default;

  /// Scatters workers uniformly over `roads` (with repetition — busy roads
  /// naturally collect several workers).
  static WorkerPool ScatterUniform(const std::vector<graph::RoadId>& roads,
                                   const WorkerPoolOptions& options,
                                   util::Rng& rng);

  /// Places exactly `per_road` workers on every road of `roads` — the
  /// semi-synthetic setting where workers cover all tested roads.
  static WorkerPool CoverRoads(const std::vector<graph::RoadId>& roads,
                               int per_road, const WorkerPoolOptions& options,
                               util::Rng& rng);

  const std::vector<Worker>& workers() const { return workers_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Distinct roads hosting at least `min_workers` workers, ascending.
  std::vector<graph::RoadId> CoveredRoads(int min_workers = 1) const;

  /// Workers currently on `road`.
  std::vector<const Worker*> WorkersOn(graph::RoadId road) const;

  /// Number of workers on `road`.
  int CountOn(graph::RoadId road) const;

 private:
  static Worker MakeWorker(WorkerId id, graph::RoadId road,
                           const WorkerPoolOptions& options, util::Rng& rng);

  std::vector<Worker> workers_;
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_WORKER_POOL_H_
