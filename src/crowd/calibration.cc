#include "crowd/calibration.h"

namespace crowdrtse::crowd {

util::Status WorkerCalibration::Observe(WorkerId worker,
                                        double reported_kmh,
                                        double reference_kmh) {
  if (reference_kmh <= 0.0) {
    return util::Status::InvalidArgument("reference speed must be positive");
  }
  if (reported_kmh < 0.0) {
    return util::Status::InvalidArgument("reported speed must be >= 0");
  }
  Stats& stats = stats_[worker];
  ++stats.count;
  stats.ratio_sum += reported_kmh / reference_kmh;
  return util::Status::Ok();
}

double WorkerCalibration::EstimatedBias(WorkerId worker) const {
  const auto it = stats_.find(worker);
  if (it == stats_.end() || it->second.count < min_observations_) {
    return 1.0;
  }
  const double bias =
      it->second.ratio_sum / static_cast<double>(it->second.count);
  // A degenerate all-zero reporter would otherwise explode Debias.
  return bias > 1e-3 ? bias : 1.0;
}

int WorkerCalibration::ObservationCount(WorkerId worker) const {
  const auto it = stats_.find(worker);
  return it == stats_.end() ? 0 : it->second.count;
}

double WorkerCalibration::Debias(WorkerId worker,
                                 double reported_kmh) const {
  return reported_kmh / EstimatedBias(worker);
}

void WorkerCalibration::DebiasAnswers(
    std::vector<SpeedAnswer>& answers) const {
  for (SpeedAnswer& answer : answers) {
    answer.reported_kmh = Debias(answer.worker, answer.reported_kmh);
  }
}

}  // namespace crowdrtse::crowd
