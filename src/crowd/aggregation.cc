#include "crowd/aggregation.h"

#include "util/stats.h"

namespace crowdrtse::crowd {

const char* AggregationPolicyName(AggregationPolicy policy) {
  switch (policy) {
    case AggregationPolicy::kMean:
      return "mean";
    case AggregationPolicy::kMedian:
      return "median";
    case AggregationPolicy::kTrimmedMean:
      return "trimmed_mean";
  }
  return "?";
}

util::Result<double> AggregateAnswers(const std::vector<SpeedAnswer>& answers,
                                      AggregationPolicy policy) {
  if (answers.empty()) {
    return util::Status::InvalidArgument("no answers to aggregate");
  }
  std::vector<double> values;
  values.reserve(answers.size());
  for (const SpeedAnswer& a : answers) values.push_back(a.reported_kmh);
  switch (policy) {
    case AggregationPolicy::kMean:
      return util::Mean(values);
    case AggregationPolicy::kMedian:
      return util::Median(std::move(values));
    case AggregationPolicy::kTrimmedMean:
      return util::TrimmedMean(std::move(values), 0.2);
  }
  return util::Status::InvalidArgument("unknown aggregation policy");
}

}  // namespace crowdrtse::crowd
