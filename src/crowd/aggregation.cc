#include "crowd/aggregation.h"

#include <cmath>
#include <set>
#include <utility>

#include "util/stats.h"

namespace crowdrtse::crowd {

const char* AggregationPolicyName(AggregationPolicy policy) {
  switch (policy) {
    case AggregationPolicy::kMean:
      return "mean";
    case AggregationPolicy::kMedian:
      return "median";
    case AggregationPolicy::kTrimmedMean:
      return "trimmed_mean";
  }
  return "?";
}

util::Result<double> AggregateAnswers(const std::vector<SpeedAnswer>& answers,
                                      AggregationPolicy policy) {
  if (answers.empty()) {
    return util::Status::InvalidArgument("no answers to aggregate");
  }
  std::vector<double> values;
  values.reserve(answers.size());
  for (const SpeedAnswer& a : answers) values.push_back(a.reported_kmh);
  switch (policy) {
    case AggregationPolicy::kMean:
      return util::Mean(values);
    case AggregationPolicy::kMedian:
      return util::Median(std::move(values));
    case AggregationPolicy::kTrimmedMean:
      return util::TrimmedMean(std::move(values), 0.2);
  }
  return util::Status::InvalidArgument("unknown aggregation policy");
}

std::vector<SpeedAnswer> FilterReports(const std::vector<SpeedAnswer>& answers,
                                       double mad_sigmas) {
  std::vector<SpeedAnswer> deduped;
  deduped.reserve(answers.size());
  std::set<std::pair<WorkerId, graph::RoadId>> seen;
  for (const SpeedAnswer& a : answers) {
    if (seen.insert({a.worker, a.road}).second) deduped.push_back(a);
  }
  if (mad_sigmas <= 0.0 || deduped.size() < 4) return deduped;

  std::vector<double> values;
  values.reserve(deduped.size());
  for (const SpeedAnswer& a : deduped) values.push_back(a.reported_kmh);
  const double median = util::Median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  // 1.4826 * MAD estimates sigma for Gaussian data.
  const double robust_sigma = 1.4826 * util::Median(std::move(deviations));
  if (robust_sigma <= 0.0) return deduped;  // all answers (near) identical

  std::vector<SpeedAnswer> kept;
  kept.reserve(deduped.size());
  for (const SpeedAnswer& a : deduped) {
    if (std::fabs(a.reported_kmh - median) <= mad_sigmas * robust_sigma) {
      kept.push_back(a);
    }
  }
  return kept;
}

}  // namespace crowdrtse::crowd
