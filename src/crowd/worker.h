#ifndef CROWDRTSE_CROWD_WORKER_H_
#define CROWDRTSE_CROWD_WORKER_H_

#include <cstdint>

#include "graph/graph.h"

namespace crowdrtse::crowd {

using WorkerId = int32_t;

/// One crowdsourcing participant. A worker announces the road she is
/// currently on (localisation info from her task demand); if selected she
/// reports her device-measured travel speed. Answer quality is modelled by
/// a persistent multiplicative bias plus zero-mean reading noise.
struct Worker {
  WorkerId id = -1;
  graph::RoadId road = graph::kInvalidRoad;
  /// Multiplicative reporting bias (1.0 = calibrated device).
  double bias = 1.0;
  /// Additive measurement noise std-dev in km/h.
  double noise_kmh = 0.0;
};

/// One submitted answer: the reported realtime speed for a road.
struct SpeedAnswer {
  WorkerId worker = -1;
  graph::RoadId road = graph::kInvalidRoad;
  double reported_kmh = 0.0;
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_WORKER_H_
