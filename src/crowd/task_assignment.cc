#include "crowd/task_assignment.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace crowdrtse::crowd {

util::Result<AssignmentPlan> AssignTasks(
    const std::vector<graph::RoadId>& selected_roads,
    const CostModel& costs, const std::vector<Worker>& workers) {
  std::set<graph::RoadId> seen;
  for (graph::RoadId r : selected_roads) {
    if (r < 0) {
      return util::Status::InvalidArgument("invalid selected road");
    }
    if (r >= costs.num_roads()) {
      return util::Status::InvalidArgument(
          "selected road missing from cost model: " + std::to_string(r));
    }
    if (!seen.insert(r).second) {
      return util::Status::InvalidArgument("duplicate selected road: " +
                                           std::to_string(r));
    }
  }

  // Bucket the available workers by road, cleanest reporters first.
  std::map<graph::RoadId, std::vector<const Worker*>> by_road;
  for (const Worker& w : workers) by_road[w.road].push_back(&w);
  for (auto& [road, bucket] : by_road) {
    std::sort(bucket.begin(), bucket.end(),
              [](const Worker* a, const Worker* b) {
                return a->noise_kmh != b->noise_kmh
                           ? a->noise_kmh < b->noise_kmh
                           : a->id < b->id;
              });
  }

  AssignmentPlan plan;
  for (graph::RoadId road : selected_roads) {
    const int quota = std::max(1, costs.Cost(road));
    const auto it = by_road.find(road);
    const int available =
        it == by_road.end() ? 0 : static_cast<int>(it->second.size());
    const int hired = std::min(quota, available);
    for (int i = 0; i < hired; ++i) {
      TaskAssignment task;
      task.worker = it->second[static_cast<size_t>(i)]->id;
      task.road = road;
      task.payment_units = 1;
      plan.total_payment += task.payment_units;
      plan.assignments.push_back(task);
    }
    if (hired < quota) plan.underfilled_roads.push_back(road);
  }
  return plan;
}

}  // namespace crowdrtse::crowd
