#include "crowd/crowd_simulator.h"

#include <algorithm>
#include <map>
#include <string>

namespace crowdrtse::crowd {

CrowdSimulator::CrowdSimulator(const CrowdSimOptions& options, util::Rng rng)
    : options_(options), rng_(rng) {}

util::Result<CrowdRound> CrowdSimulator::Probe(
    const std::vector<graph::RoadId>& roads, const CostModel& costs,
    const traffic::DayMatrix& truth, int slot) {
  if (slot < 0 || slot >= truth.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  CrowdRound round;
  WorkerId next_worker = 0;
  for (graph::RoadId road : roads) {
    if (road < 0 || road >= truth.num_roads()) {
      return util::Status::InvalidArgument("road out of range: " +
                                           std::to_string(road));
    }
    if (road >= costs.num_roads()) {
      return util::Status::InvalidArgument("road missing from cost model: " +
                                           std::to_string(road));
    }
    const double true_speed = truth.At(slot, road);
    const int num_answers = std::max(1, costs.Cost(road));
    std::vector<SpeedAnswer> answers;
    answers.reserve(static_cast<size_t>(num_answers));
    for (int k = 0; k < num_answers; ++k) {
      SpeedAnswer answer;
      answer.worker = next_worker++;
      answer.road = road;
      if (rng_.Bernoulli(options_.outlier_rate)) {
        answer.reported_kmh = rng_.UniformDouble(2.0, 120.0);
      } else {
        const double bias =
            rng_.UniformDouble(options_.min_bias, options_.max_bias);
        const double noise = rng_.UniformDouble(options_.min_noise_kmh,
                                                options_.max_noise_kmh);
        answer.reported_kmh =
            std::max(0.0, bias * true_speed + rng_.Normal(0.0, noise));
      }
      answers.push_back(answer);
      round.raw_answers.push_back(answer);
    }
    util::Result<double> aggregated =
        AggregateAnswers(answers, options_.aggregation);
    if (!aggregated.ok()) return aggregated.status();
    ProbeResult probe;
    probe.road = road;
    probe.probed_kmh = *aggregated;
    probe.num_answers = num_answers;
    probe.paid_units = num_answers;  // one unit of payment per answer
    round.total_paid += probe.paid_units;
    round.probes.push_back(probe);
  }
  return round;
}

util::Result<CrowdRound> CrowdSimulator::ProbeWithAssignments(
    const AssignmentPlan& plan, const std::vector<Worker>& workers,
    const traffic::DayMatrix& truth, int slot) {
  if (slot < 0 || slot >= truth.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  std::map<WorkerId, const Worker*> by_id;
  for (const Worker& w : workers) by_id[w.id] = &w;

  // Generate one answer per assignment, grouped by road.
  std::map<graph::RoadId, std::vector<SpeedAnswer>> answers_by_road;
  CrowdRound round;
  for (const TaskAssignment& task : plan.assignments) {
    if (task.road < 0 || task.road >= truth.num_roads()) {
      return util::Status::InvalidArgument("assigned road out of range: " +
                                           std::to_string(task.road));
    }
    const auto it = by_id.find(task.worker);
    if (it == by_id.end()) {
      return util::Status::InvalidArgument(
          "assignment references unknown worker " +
          std::to_string(task.worker));
    }
    const Worker& worker = *it->second;
    const SpeedAnswer answer =
        GenerateAnswer(worker, task.road, truth, slot);
    answers_by_road[task.road].push_back(answer);
    round.raw_answers.push_back(answer);
    round.total_paid += task.payment_units;
  }

  for (const auto& [road, answers] : answers_by_road) {
    util::Result<double> aggregated =
        AggregateAnswers(answers, options_.aggregation);
    if (!aggregated.ok()) return aggregated.status();
    ProbeResult probe;
    probe.road = road;
    probe.probed_kmh = *aggregated;
    probe.num_answers = static_cast<int>(answers.size());
    probe.paid_units = static_cast<int>(answers.size());
    round.probes.push_back(probe);
  }
  return round;
}

SpeedAnswer CrowdSimulator::GenerateAnswer(const Worker& worker,
                                           graph::RoadId road,
                                           const traffic::DayMatrix& truth,
                                           int slot) {
  const double true_speed = truth.At(slot, road);
  SpeedAnswer answer;
  answer.worker = worker.id;
  answer.road = road;
  if (rng_.Bernoulli(options_.outlier_rate)) {
    answer.reported_kmh = rng_.UniformDouble(2.0, 120.0);
  } else {
    answer.reported_kmh =
        std::max(0.0, worker.bias * true_speed +
                          rng_.Normal(0.0, worker.noise_kmh));
  }
  return answer;
}

}  // namespace crowdrtse::crowd
