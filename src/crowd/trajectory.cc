#include "crowd/trajectory.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/dijkstra.h"
#include "traffic/time_slots.h"

namespace crowdrtse::crowd {

TrajectorySimulator::TrajectorySimulator(
    const graph::Graph& graph, const graph::RoadGeometry& geometry,
    const traffic::DayMatrix& truth, const TrajectorySimOptions& options,
    uint64_t seed)
    : graph_(graph),
      geometry_(geometry),
      truth_(truth),
      options_(options),
      rng_(seed) {}

util::Result<Trajectory> TrajectorySimulator::SimulateTrip(
    WorkerId worker, graph::RoadId start, graph::RoadId goal,
    double start_minute) {
  if (!graph_.IsValidRoad(start) || !graph_.IsValidRoad(goal)) {
    return util::Status::InvalidArgument("trip endpoints out of range");
  }
  if (start_minute < 0.0 || start_minute >= options_.day_end_minute) {
    return util::Status::InvalidArgument("start minute outside the day");
  }
  // Length-shortest route (drivers plan by distance here; the realised
  // timing then depends on the day's true speeds).
  const graph::ShortestPaths tree = graph::Dijkstra(
      graph_, start,
      [&](graph::EdgeId e) {
        // Edge i-j costs the destination road's length; close enough for a
        // road-as-vertex model.
        const auto [a, b] = graph_.EdgeEndpoints(e);
        return 0.5 * (geometry_.LengthKm(a) + geometry_.LengthKm(b));
      });
  const std::vector<graph::RoadId> route =
      graph::ReconstructPath(tree, start, goal);
  if (route.empty()) {
    return util::Status::NotFound("no route between roads " +
                                  std::to_string(start) + " and " +
                                  std::to_string(goal));
  }

  Trajectory trajectory;
  trajectory.worker = worker;
  double clock = start_minute;
  for (graph::RoadId road : route) {
    const int slot = std::min(
        traffic::kSlotsPerDay - 1,
        static_cast<int>(clock / traffic::kMinutesPerSlot));
    const double speed = truth_.At(slot, road);
    const double minutes = geometry_.TravelMinutes(road, speed);
    if (!std::isfinite(minutes) ||
        clock + minutes > options_.day_end_minute) {
      break;  // the trip cannot finish this traversal today
    }
    TraversalEvent event;
    event.road = road;
    event.enter_minute = clock;
    event.exit_minute = clock + minutes;
    trajectory.events.push_back(event);
    clock += minutes;
  }
  return trajectory;
}

util::Result<Trajectory> TrajectorySimulator::SimulateRandomTrip(
    WorkerId worker, double start_minute) {
  if (graph_.num_roads() < 2) {
    return util::Status::FailedPrecondition("need at least 2 roads");
  }
  const auto pick = [&] {
    return static_cast<graph::RoadId>(
        rng_.UniformUint64(static_cast<uint64_t>(graph_.num_roads())));
  };
  graph::RoadId start = pick();
  graph::RoadId goal = pick();
  for (int attempt = 0; attempt < 32 && goal == start; ++attempt) {
    goal = pick();
  }
  return SimulateTrip(worker, start, goal, start_minute);
}

std::vector<SpeedAnswer> TrajectorySimulator::DeriveAnswers(
    const Trajectory& trajectory) {
  std::vector<SpeedAnswer> answers;
  answers.reserve(trajectory.events.size());
  for (const TraversalEvent& event : trajectory.events) {
    const double minutes = event.DurationMinutes();
    if (minutes <= 0.0) continue;
    SpeedAnswer answer;
    answer.worker = trajectory.worker;
    answer.road = event.road;
    const double measured =
        geometry_.LengthKm(event.road) / minutes * 60.0;
    answer.reported_kmh = std::max(
        0.0, measured + rng_.Normal(0.0, options_.measurement_noise_kmh));
    answers.push_back(answer);
  }
  return answers;
}

std::vector<SpeedAnswer> TrajectorySimulator::AnswersInSlot(
    const Trajectory& trajectory, int slot) {
  const std::vector<SpeedAnswer> all = DeriveAnswers(trajectory);
  std::vector<SpeedAnswer> filtered;
  filtered.reserve(all.size());
  size_t answer_index = 0;
  for (const TraversalEvent& event : trajectory.events) {
    if (event.DurationMinutes() <= 0.0) continue;
    const int event_slot =
        std::min(traffic::kSlotsPerDay - 1,
                 static_cast<int>(event.enter_minute /
                                  traffic::kMinutesPerSlot));
    if (event_slot == slot) filtered.push_back(all[answer_index]);
    ++answer_index;
  }
  return filtered;
}

}  // namespace crowdrtse::crowd
