#ifndef CROWDRTSE_CROWD_CALIBRATION_H_
#define CROWDRTSE_CROWD_CALIBRATION_H_

#include <map>
#include <vector>

#include "crowd/worker.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// Per-worker answer calibration (the paper's refs [28], [29] debias
/// crowdsourced quantitative claims from historical answers): whenever a
/// worker's report can later be compared against a settled reference speed
/// (a sensor reading, or the consensus of many answers), the observation
/// feeds this calibrator; afterwards her raw reports are divided by her
/// estimated multiplicative bias.
class WorkerCalibration {
 public:
  /// Minimum observations before a worker's bias estimate is trusted.
  explicit WorkerCalibration(int min_observations = 3)
      : min_observations_(min_observations) {}

  /// Records that `worker` reported `reported_kmh` where the settled
  /// reference was `reference_kmh` (> 0).
  util::Status Observe(WorkerId worker, double reported_kmh,
                       double reference_kmh);

  /// The worker's estimated multiplicative bias (mean of report/reference
  /// ratios); 1.0 until enough observations accumulated.
  double EstimatedBias(WorkerId worker) const;

  /// Number of observations recorded for `worker`.
  int ObservationCount(WorkerId worker) const;

  /// Debiased value of a raw report from `worker`.
  double Debias(WorkerId worker, double reported_kmh) const;

  /// Applies Debias to every answer in place.
  void DebiasAnswers(std::vector<SpeedAnswer>& answers) const;

 private:
  struct Stats {
    int count = 0;
    double ratio_sum = 0.0;
  };

  int min_observations_;
  std::map<WorkerId, Stats> stats_;
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_CALIBRATION_H_
