#ifndef CROWDRTSE_CROWD_TRAJECTORY_H_
#define CROWDRTSE_CROWD_TRAJECTORY_H_

#include <vector>

#include "crowd/worker.h"
#include "graph/graph.h"
#include "graph/road_geometry.h"
#include "traffic/history_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// One traversal of one road inside a trip, with minute-of-day timing.
struct TraversalEvent {
  graph::RoadId road = graph::kInvalidRoad;
  double enter_minute = 0.0;
  double exit_minute = 0.0;

  double DurationMinutes() const { return exit_minute - enter_minute; }
};

/// A worker's trip: the sequence of roads she actually drove, with timing
/// grounded in the day's true speeds. The gMission experiment asked
/// workers to "travel along such roads" and computed their speed from
/// localisation — this struct is that trace.
struct Trajectory {
  WorkerId worker = -1;
  std::vector<TraversalEvent> events;

  bool empty() const { return events.empty(); }
  double StartMinute() const {
    return events.empty() ? 0.0 : events.front().enter_minute;
  }
  double EndMinute() const {
    return events.empty() ? 0.0 : events.back().exit_minute;
  }
};

/// Options for trip simulation and answer derivation.
struct TrajectorySimOptions {
  /// GPS/odometry noise on the derived speed report (km/h std-dev).
  double measurement_noise_kmh = 1.0;
  /// Trips end at midnight (a traversal is dropped if it cannot finish).
  double day_end_minute = 24.0 * 60.0;
};

/// Simulates worker trips over a day's ground-truth speeds and turns the
/// traversals into crowd answers. A traversal's duration is
/// length / speed(entry slot); the derived report is the trip-measured
/// average speed of that road — exactly what a phone would compute.
class TrajectorySimulator {
 public:
  /// All references must outlive the simulator.
  TrajectorySimulator(const graph::Graph& graph,
                      const graph::RoadGeometry& geometry,
                      const traffic::DayMatrix& truth,
                      const TrajectorySimOptions& options, uint64_t seed);

  /// Drives the length-shortest route from `start` to `goal`, departing at
  /// `start_minute`. Fails if no route exists.
  util::Result<Trajectory> SimulateTrip(WorkerId worker,
                                        graph::RoadId start,
                                        graph::RoadId goal,
                                        double start_minute);

  /// A trip between two random distinct roads.
  util::Result<Trajectory> SimulateRandomTrip(WorkerId worker,
                                              double start_minute);

  /// Converts a trajectory to noisy speed answers, one per completed
  /// traversal.
  std::vector<SpeedAnswer> DeriveAnswers(const Trajectory& trajectory);

  /// The answers of `trajectory` whose traversal started inside `slot`.
  std::vector<SpeedAnswer> AnswersInSlot(const Trajectory& trajectory,
                                         int slot);

 private:
  const graph::Graph& graph_;
  const graph::RoadGeometry& geometry_;
  const traffic::DayMatrix& truth_;
  TrajectorySimOptions options_;
  util::Rng rng_;
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_TRAJECTORY_H_
