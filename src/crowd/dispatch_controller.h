#ifndef CROWDRTSE_CROWD_DISPATCH_CONTROLLER_H_
#define CROWDRTSE_CROWD_DISPATCH_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "crowd/crowd_simulator.h"
#include "crowd/fault_plan.h"
#include "crowd/task_assignment.h"
#include "crowd/worker.h"
#include "util/clock.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// Knobs of the fault-tolerant dispatch state machine
/// (deadline -> retry -> reassign -> degrade; DESIGN.md §5c).
struct DispatchOptions {
  /// Per-attempt answer deadline (ms). An attempt that has not produced an
  /// accepted report by then is written off and retried.
  double deadline_ms = 50.0;
  /// Total attempts per task, initial dispatch included.
  int max_attempts = 3;
  /// Jittered exponential backoff between attempts: retry k (1-based)
  /// waits min(cap, base * 2^(k-1)) * U[1 - jitter, 1 + jitter] ms after
  /// the failed attempt resolves.
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 200.0;
  double backoff_jitter = 0.0;
  /// Healthy worker answer latency, drawn uniformly per attempt (ms).
  double min_response_ms = 5.0;
  double max_response_ms = 20.0;
  /// On a missed deadline, prefer a fresh worker on the same road over
  /// re-asking the straggler.
  bool reassign_stragglers = true;
  /// Plausibility window: reports outside are rejected as outliers before
  /// they can reach aggregation.
  double min_plausible_kmh = 0.5;
  double max_plausible_kmh = 150.0;
  /// Second-stage statistical rejection before aggregation (see
  /// crowd::FilterReports): per road, answers farther than this many robust
  /// standard deviations from the median are discarded. <= 0 disables.
  double mad_sigmas = 4.0;
  /// How accepted answers fuse into one probed speed per road.
  AggregationPolicy aggregation = AggregationPolicy::kTrimmedMean;
  /// Seed of the controller's deterministic latency/jitter draws (pure
  /// hashes, like FaultPlan — dispatch order never shifts them).
  uint64_t seed = 0xd15c0u;

  /// Worst-case wall/sim time from dispatch to the last task resolving:
  /// max_attempts deadlines plus every backoff at full jitter. The serving
  /// layer's crowd-phase latency budget.
  double MaxRoundSpanMs() const;
};

/// One dispatch in the round's deterministic timeline (times are
/// microseconds relative to round start). Tests assert retry counts and the
/// exact backoff schedule from this log.
struct DispatchAttempt {
  graph::RoadId road = graph::kInvalidRoad;
  WorkerId worker = -1;
  int task = 0;     // index into the round's task list
  int attempt = 0;  // 1-based
  int64_t dispatched_us = 0;
  bool reassigned = false;  // retry moved to a different worker
  FaultKind fault = FaultKind::kNone;
};

/// Aggregate fault/retry counters of one round.
struct DispatchStats {
  int tasks = 0;               // assignments dispatched (quota-sized)
  int answered = 0;            // tasks resolved by an accepted report
  int exhausted = 0;           // tasks that ran out of attempts
  int retries = 0;             // re-dispatches after a failed attempt
  int reassignments = 0;       // retries that moved to a fresh worker
  int deadline_misses = 0;     // attempts written off at their deadline
  int late_reports = 0;        // reports that arrived past their deadline
  int duplicate_reports = 0;   // dropped: task already answered
  int outlier_reports = 0;     // dropped: outside the plausibility window
};

/// Why a road ended the round with zero usable answers. The first three
/// reasons come out of the dispatch state machine; kLoadShed is assigned one
/// level up, by the serving layer, when admission control answers a query
/// from the periodic-mean fallback without running a crowd round at all
/// (degrade-before-drop — the same ladder rung, entered from the front).
enum class DegradeReason {
  kUnstaffed,  // no worker was on the road to begin with
  kDeadline,   // every attempt dropped out or missed its deadline
  kOutlier,    // answers arrived but all were rejected as implausible
  kLoadShed,   // admission control shed the query to the periodic fallback
};

const char* DegradeReasonName(DegradeReason reason);

/// Everything one fault-tolerant crowdsourcing round produced.
struct DispatchRound {
  /// Aggregated probes over roads with >= 1 accepted answer; total_paid
  /// counts accepted answers only (unanswered tasks are never paid).
  CrowdRound round;
  /// Roads that collected some but fewer than quota answers. Disjoint from
  /// degraded_roads by construction: a road is either underfilled (usable)
  /// or degraded (unusable), never both.
  std::vector<graph::RoadId> underfilled_roads;
  /// Roads with zero accepted answers — the degradation ladder's input.
  std::vector<graph::RoadId> degraded_roads;
  std::vector<DegradeReason> degraded_reasons;  // aligned with degraded_roads
  DispatchStats stats;
  std::vector<DispatchAttempt> attempts;
  /// Sim/wall time from dispatch to the last task resolving (ms). Bounded
  /// by DispatchOptions::MaxRoundSpanMs() — the crowd phase cannot stall a
  /// query past its budget no matter what the fault plan does.
  double span_ms = 0.0;
};

/// Runs one crowdsourcing round under deadlines, bounded jittered-backoff
/// retries, straggler reassignment, and duplicate/outlier rejection. Time
/// comes from the injected Clock (WallClock in prod, SimClock in tests);
/// faults come from the injected FaultPlan (fault-free by default).
///
/// The controller is an event-driven simulator of the platform side of the
/// round: it knows when each report would arrive (worker latency plus any
/// injected fault) and sleeps the clock forward between events, so on a
/// SimClock a round costs zero wall time and replays bit-identically.
/// Stateless across runs and const — safe to share between threads as long
/// as the answer callback is (the serving layer already serializes its
/// stateful CrowdSimulator).
class DispatchController {
 public:
  /// Produces the (bias/noise-applied) report of `worker` for her road —
  /// typically CrowdSimulator::GenerateAnswer against today's truth.
  using AnswerFn =
      std::function<SpeedAnswer(const Worker& worker, graph::RoadId road)>;

  DispatchController(const DispatchOptions& options, util::Clock* clock);

  const DispatchOptions& options() const { return options_; }

  /// Dispatches `plan` and drives it to resolution. `workers` is the full
  /// available population (replacement workers for reassignment come from
  /// it); roads in the plan with zero accepted answers come back degraded,
  /// never as an error — the round itself only fails on malformed input.
  util::Result<DispatchRound> Run(const AssignmentPlan& plan,
                                  const std::vector<Worker>& workers,
                                  const CostModel& costs,
                                  const FaultPlan& faults,
                                  const AnswerFn& answer) const;

 private:
  DispatchOptions options_;
  util::Clock* clock_;  // never null
};

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_DISPATCH_CONTROLLER_H_
