#ifndef CROWDRTSE_CROWD_AGGREGATION_H_
#define CROWDRTSE_CROWD_AGGREGATION_H_

#include <vector>

#include "crowd/worker.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// How multiple answers for one road are fused into a single probed speed.
/// One answer "may not reflect the ground truth" (paper §V-A), so each
/// crowdsourced road collects cost-many answers and aggregates.
enum class AggregationPolicy {
  kMean,
  kMedian,
  /// Mean after discarding 20% of mass at each tail; robust to a rogue
  /// worker while keeping the efficiency of the mean.
  kTrimmedMean,
};

const char* AggregationPolicyName(AggregationPolicy policy);

/// Fuses `answers` (all for the same road) under `policy`. Fails on an
/// empty answer set.
util::Result<double> AggregateAnswers(const std::vector<SpeedAnswer>& answers,
                                      AggregationPolicy policy);

/// Pre-aggregation hygiene for the fault-tolerant dispatch path: drops
/// duplicate submissions (a worker's second answer for the same road) and,
/// given >= 4 distinct answers, statistical outliers farther than
/// `mad_sigmas` robust standard deviations (1.4826 * MAD) from the median.
/// `mad_sigmas <= 0` disables the statistical stage. Never empties a
/// non-empty input — the median answer always survives — and preserves the
/// input order of the survivors.
std::vector<SpeedAnswer> FilterReports(const std::vector<SpeedAnswer>& answers,
                                       double mad_sigmas);

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_AGGREGATION_H_
