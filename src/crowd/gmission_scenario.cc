#include "crowd/gmission_scenario.h"

#include <algorithm>

#include "graph/connected_components.h"

namespace crowdrtse::crowd {

util::Result<GMissionScenario> BuildGMissionScenario(
    const graph::Graph& graph, const GMissionOptions& options,
    util::Rng& rng) {
  if (options.num_queried_roads <= 0 || options.num_worker_roads <= 0) {
    return util::Status::InvalidArgument("scenario sizes must be positive");
  }
  if (options.num_worker_roads > options.num_queried_roads) {
    return util::Status::InvalidArgument(
        "gMission requires R^w to be a subset of R^q");
  }
  const graph::Components components = graph::FindConnectedComponents(graph);
  const int largest = components.LargestComponent();
  if (largest < 0 ||
      static_cast<int>(components.members[static_cast<size_t>(largest)]
                           .size()) < options.num_queried_roads) {
    return util::Status::FailedPrecondition(
        "no connected component with enough roads for the scenario");
  }
  const auto& candidates =
      components.members[static_cast<size_t>(largest)];

  GMissionScenario scenario;
  scenario.seed = candidates[static_cast<size_t>(
      rng.UniformUint64(candidates.size()))];
  scenario.queried_roads = graph::GrowConnectedSubset(
      graph, scenario.seed, options.num_queried_roads);
  if (static_cast<int>(scenario.queried_roads.size()) <
      options.num_queried_roads) {
    return util::Status::FailedPrecondition(
        "connected subset smaller than requested");
  }
  const std::vector<int> picks = rng.SampleWithoutReplacement(
      options.num_queried_roads, options.num_worker_roads);
  scenario.worker_roads.reserve(picks.size());
  for (int p : picks) {
    scenario.worker_roads.push_back(
        scenario.queried_roads[static_cast<size_t>(p)]);
  }
  std::sort(scenario.worker_roads.begin(), scenario.worker_roads.end());
  return scenario;
}

}  // namespace crowdrtse::crowd
