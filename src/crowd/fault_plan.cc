#include "crowd/fault_plan.h"

#include <algorithm>

namespace crowdrtse::crowd {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double UniformIn(double lo, double hi, double unit) {
  if (hi <= lo) return lo;
  return lo + (hi - lo) * unit;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "?";
}

uint64_t DispatchHash(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                      uint64_t salt) {
  uint64_t h = SplitMix64(seed ^ salt);
  h = SplitMix64(h ^ a);
  h = SplitMix64(h ^ (b + 0x632BE59BD9B4E019ULL));
  h = SplitMix64(h ^ (c + 0x2545F4914F6CDD1DULL));
  return h;
}

double DispatchHashUnit(uint64_t seed, uint64_t a, uint64_t b, uint64_t c,
                        uint64_t salt) {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(DispatchHash(seed, a, b, c, salt) >> 11) *
         0x1.0p-53;
}

const FaultSpec& FaultPlan::SpecFor(WorkerId worker,
                                    graph::RoadId road) const {
  const auto wit = worker_specs_.find(worker);
  if (wit != worker_specs_.end()) return wit->second;
  const auto rit = road_specs_.find(road);
  if (rit != road_specs_.end()) return rit->second;
  return default_spec_;
}

FaultPlan::Outcome FaultPlan::Decide(WorkerId worker, graph::RoadId road,
                                     int attempt) const {
  const FaultSpec& spec = SpecFor(worker, road);
  Outcome outcome;
  if (spec.FaultFree()) return outcome;
  const uint64_t w = static_cast<uint64_t>(static_cast<int64_t>(worker));
  const uint64_t r = static_cast<uint64_t>(static_cast<int64_t>(road));
  const uint64_t k = static_cast<uint64_t>(attempt);
  const double u = DispatchHashUnit(seed_, w, r, k, /*salt=*/0x5fau);
  const double drop = std::max(0.0, spec.drop_rate);
  const double delay = drop + std::max(0.0, spec.delay_rate);
  const double dup = delay + std::max(0.0, spec.duplicate_rate);
  const double corrupt = dup + std::max(0.0, spec.corrupt_rate);
  if (u < drop) {
    outcome.kind = FaultKind::kDrop;
  } else if (u < delay) {
    outcome.kind = FaultKind::kDelay;
    outcome.delay_ms =
        UniformIn(spec.delay_min_ms, spec.delay_max_ms,
                  DispatchHashUnit(seed_, w, r, k, /*salt=*/0xde1au));
  } else if (u < dup) {
    outcome.kind = FaultKind::kDuplicate;
  } else if (u < corrupt) {
    outcome.kind = FaultKind::kCorrupt;
    outcome.corrupt_kmh =
        UniformIn(spec.corrupt_min_kmh, spec.corrupt_max_kmh,
                  DispatchHashUnit(seed_, w, r, k, /*salt=*/0xc0bbu));
  }
  return outcome;
}

}  // namespace crowdrtse::crowd
