#include "crowd/cost_model.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace crowdrtse::crowd {

util::Result<CostModel> CostModel::UniformRandom(int num_roads, int min_cost,
                                                 int max_cost,
                                                 util::Rng& rng) {
  if (num_roads < 0) {
    return util::Status::InvalidArgument("negative road count");
  }
  if (min_cost < 1 || max_cost < min_cost) {
    return util::Status::InvalidArgument("cost range must satisfy 1 <= min <= max");
  }
  CostModel model;
  model.costs_.resize(static_cast<size_t>(num_roads));
  for (int& c : model.costs_) c = rng.UniformInt(min_cost, max_cost);
  return model;
}

CostModel CostModel::Constant(int num_roads, int cost) {
  CostModel model;
  model.costs_.assign(static_cast<size_t>(num_roads), cost);
  return model;
}

util::Result<CostModel> CostModel::FromVolatility(
    const std::vector<double>& sigmas, int min_cost, int max_cost) {
  if (min_cost < 1 || max_cost < min_cost) {
    return util::Status::InvalidArgument("cost range must satisfy 1 <= min <= max");
  }
  CostModel model;
  model.costs_.resize(sigmas.size());
  if (sigmas.empty()) return model;
  const auto [lo_it, hi_it] = std::minmax_element(sigmas.begin(), sigmas.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double span = hi > lo ? hi - lo : 1.0;
  for (size_t i = 0; i < sigmas.size(); ++i) {
    const double frac = (sigmas[i] - lo) / span;
    model.costs_[i] = min_cost + static_cast<int>(std::lround(
                                     frac * (max_cost - min_cost)));
  }
  return model;
}

util::Result<CostModel> CostModel::FromCosts(std::vector<int> costs) {
  for (size_t i = 0; i < costs.size(); ++i) {
    if (costs[i] < 1) {
      return util::Status::InvalidArgument(
          "cost of road " + std::to_string(static_cast<long long>(i)) +
          " must be >= 1");
    }
  }
  CostModel model;
  model.costs_ = std::move(costs);
  return model;
}

int CostModel::TotalCost(const std::vector<graph::RoadId>& roads) const {
  int total = 0;
  for (graph::RoadId r : roads) total += Cost(r);
  return total;
}

}  // namespace crowdrtse::crowd
