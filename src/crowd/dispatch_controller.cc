#include "crowd/dispatch_controller.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <string>
#include <utility>

#include "crowd/aggregation.h"
#include "obs/flight_recorder.h"
#include "util/trace.h"

namespace crowdrtse::crowd {

namespace {

constexpr uint64_t kLatencySalt = 0x1a7eu;
constexpr uint64_t kDupGapSalt = 0xd0b1eu;
constexpr uint64_t kJitterSalt = 0xbad0u;

int64_t MsToUs(double ms) { return static_cast<int64_t>(ms * 1e3); }

struct Task {
  graph::RoadId road = graph::kInvalidRoad;
  int attempts_used = 0;     // dispatches so far
  int active_attempt = 0;    // 1-based; deadline events for older ones stale
  WorkerId current_worker = -1;
  bool resolved = false;
  bool answered = false;
  int deadline_failures = 0;
  int outlier_failures = 0;
};

struct Event {
  enum Type { kArrival, kDeadline };
  int64_t at_us = 0;
  int64_t seq = 0;  // deterministic tie-break: insertion order
  Type type = kArrival;
  int task = 0;
  int attempt = 0;
  WorkerId worker = -1;
  double value_kmh = 0.0;
  int64_t attempt_deadline_us = 0;

  bool operator>(const Event& other) const {
    return at_us != other.at_us ? at_us > other.at_us : seq > other.seq;
  }
};

using EventQueue =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

}  // namespace

double DispatchOptions::MaxRoundSpanMs() const {
  double span = deadline_ms * std::max(1, max_attempts);
  for (int k = 1; k < max_attempts; ++k) {
    const double backoff =
        std::min(backoff_cap_ms, backoff_base_ms * std::ldexp(1.0, k - 1));
    span += backoff * (1.0 + backoff_jitter);
  }
  return span;
}

const char* DegradeReasonName(DegradeReason reason) {
  switch (reason) {
    case DegradeReason::kUnstaffed:
      return "unstaffed";
    case DegradeReason::kDeadline:
      return "deadline";
    case DegradeReason::kOutlier:
      return "outlier";
    case DegradeReason::kLoadShed:
      return "load_shed";
  }
  return "?";
}

DispatchController::DispatchController(const DispatchOptions& options,
                                       util::Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : &util::WallClock::Get()) {}

util::Result<DispatchRound> DispatchController::Run(
    const AssignmentPlan& plan, const std::vector<Worker>& workers,
    const CostModel& costs, const FaultPlan& faults,
    const AnswerFn& answer) const {
  if (!answer) {
    return util::Status::InvalidArgument("dispatch needs an answer source");
  }
  if (options_.max_attempts < 1 || options_.deadline_ms <= 0.0) {
    return util::Status::InvalidArgument(
        "dispatch needs max_attempts >= 1 and a positive deadline");
  }
  std::map<WorkerId, const Worker*> by_id;
  for (const Worker& w : workers) by_id[w.id] = &w;
  for (const TaskAssignment& task : plan.assignments) {
    if (by_id.find(task.worker) == by_id.end()) {
      return util::Status::InvalidArgument(
          "assignment references unknown worker " +
          std::to_string(task.worker));
    }
    if (task.road < 0 || task.road >= costs.num_roads()) {
      return util::Status::InvalidArgument(
          "assigned road missing from cost model: " +
          std::to_string(task.road));
    }
  }

  // Replacement pools for straggler reassignment: every worker on a
  // selected road who was not hired by the plan, cleanest first (the same
  // order AssignTasks hires in, so a reassignment hires the next-best).
  std::map<graph::RoadId, std::vector<const Worker*>> spares;
  {
    std::map<WorkerId, bool> hired;
    std::map<graph::RoadId, bool> selected;
    for (const TaskAssignment& t : plan.assignments) {
      hired[t.worker] = true;
      selected[t.road] = true;
    }
    for (graph::RoadId r : plan.underfilled_roads) selected[r] = true;
    for (const Worker& w : workers) {
      if (selected.count(w.road) != 0 && hired.count(w.id) == 0) {
        spares[w.road].push_back(&w);
      }
    }
    for (auto& [road, bucket] : spares) {
      std::sort(bucket.begin(), bucket.end(),
                [](const Worker* a, const Worker* b) {
                  return a->noise_kmh != b->noise_kmh
                             ? a->noise_kmh < b->noise_kmh
                             : a->id < b->id;
                });
    }
  }
  std::map<graph::RoadId, size_t> next_spare;

  DispatchRound out;
  std::vector<Task> tasks;
  tasks.reserve(plan.assignments.size());
  EventQueue queue;
  int64_t next_seq = 0;
  const int64_t t0 = clock_->NowMicros();
  const int64_t deadline_us = MsToUs(options_.deadline_ms);

  // Tracing: attempts live on the round's simulated event timeline, not on
  // the call stack, so they are recorded as complete spans when they close
  // (accepted / deadline / outlier), all children of one pre-allocated
  // "crowd.dispatch" span that is written at the end of the round.
  util::trace::Trace* const tr = util::trace::ActiveTrace();
  const int64_t trace_parent = util::trace::ActiveSpanId();
  const int64_t dispatch_span_id = tr != nullptr ? tr->NextSpanId() : 0;
  struct OpenAttempt {
    int64_t start_us = 0;
    WorkerId worker = -1;
    graph::RoadId road = graph::kInvalidRoad;
    FaultKind fault = FaultKind::kNone;
    bool reassigned = false;
  };
  std::map<std::pair<int, int>, OpenAttempt> open_attempts;
  // Flight-record outcome codes: 0 accepted, 1 deadline, 2 outlier,
  // 3 preempted (distinct first letters; see the close_attempt callers).
  const auto outcome_code = [](const char* outcome) -> int64_t {
    switch (outcome[0]) {
      case 'a':
        return 0;
      case 'd':
        return 1;
      case 'o':
        return 2;
      default:
        return 3;
    }
  };
  const auto close_attempt = [&](int task_index, int attempt, int64_t end_us,
                                 const char* outcome) {
    const auto it = open_attempts.find({task_index, attempt});
    if (it == open_attempts.end()) return;  // already closed (stale event)
    const OpenAttempt& a = it->second;
    obs::RecordEvent(obs::EventKind::kDispatchAttempt, a.road, attempt,
                     outcome_code(outcome));
    if (tr == nullptr) {
      open_attempts.erase(it);
      return;
    }
    std::vector<util::trace::Annotation> notes;
    notes.push_back({"road", std::to_string(a.road)});
    notes.push_back({"worker", std::to_string(a.worker)});
    notes.push_back({"attempt", std::to_string(attempt)});
    notes.push_back({"outcome", outcome});
    if (a.fault != FaultKind::kNone) {
      notes.push_back({"fault", FaultKindName(a.fault)});
    }
    if (a.reassigned) notes.push_back({"reassigned", "true"});
    util::trace::AddCompleteSpan(tr, "crowd.attempt", dispatch_span_id,
                                 a.start_us, end_us, std::move(notes));
    open_attempts.erase(it);
  };

  const auto dispatch = [&](int task_index, const Worker& worker,
                            int attempt, int64_t at_us, bool reassigned) {
    Task& task = tasks[static_cast<size_t>(task_index)];
    task.attempts_used = attempt;
    task.active_attempt = attempt;
    task.current_worker = worker.id;

    DispatchAttempt log;
    log.road = task.road;
    log.worker = worker.id;
    log.task = task_index;
    log.attempt = attempt;
    log.dispatched_us = at_us - t0;
    log.reassigned = reassigned;

    const FaultPlan::Outcome fault =
        faults.Decide(worker.id, task.road, attempt);
    log.fault = fault.kind;
    out.attempts.push_back(log);
    // Tracked even when untraced: close_attempt needs the open-attempt
    // entry to flight-record each attempt outcome exactly once.
    open_attempts[{task_index, attempt}] =
        OpenAttempt{at_us, worker.id, task.road, fault.kind, reassigned};

    const uint64_t w = static_cast<uint64_t>(static_cast<int64_t>(worker.id));
    const uint64_t r = static_cast<uint64_t>(static_cast<int64_t>(task.road));
    const uint64_t k = static_cast<uint64_t>(attempt);
    if (fault.kind != FaultKind::kDrop) {
      // The worker really answers: draw her report now (dispatch order is
      // deterministic, so a stateful answer source replays identically).
      const SpeedAnswer report = answer(worker, task.road);
      const double latency_ms =
          fault.kind == FaultKind::kDelay
              ? fault.delay_ms
              : options_.min_response_ms +
                    (options_.max_response_ms - options_.min_response_ms) *
                        DispatchHashUnit(options_.seed, w, r, k,
                                         kLatencySalt);
      Event arrival;
      arrival.at_us = at_us + MsToUs(latency_ms);
      arrival.seq = next_seq++;
      arrival.type = Event::kArrival;
      arrival.task = task_index;
      arrival.attempt = attempt;
      arrival.worker = worker.id;
      arrival.value_kmh = fault.kind == FaultKind::kCorrupt
                              ? fault.corrupt_kmh
                              : report.reported_kmh;
      arrival.attempt_deadline_us = at_us + deadline_us;
      queue.push(arrival);
      if (fault.kind == FaultKind::kDuplicate) {
        Event dup = arrival;
        dup.seq = next_seq++;
        dup.at_us +=
            MsToUs(1.0 + 4.0 * DispatchHashUnit(options_.seed, w, r, k,
                                                kDupGapSalt));
        queue.push(dup);
      }
    }
    Event deadline;
    deadline.at_us = at_us + deadline_us;
    deadline.seq = next_seq++;
    deadline.type = Event::kDeadline;
    deadline.task = task_index;
    deadline.attempt = attempt;
    queue.push(deadline);
  };

  for (const TaskAssignment& assignment : plan.assignments) {
    Task task;
    task.road = assignment.road;
    tasks.push_back(task);
  }
  out.stats.tasks = static_cast<int>(tasks.size());
  for (size_t i = 0; i < plan.assignments.size(); ++i) {
    dispatch(static_cast<int>(i), *by_id.at(plan.assignments[i].worker),
             /*attempt=*/1, t0, /*reassigned=*/false);
  }

  std::map<graph::RoadId, std::vector<SpeedAnswer>> accepted;
  int resolved = 0;
  int64_t last_resolution_us = t0;

  const auto resolve = [&](Task& task, bool with_answer, int64_t at_us) {
    task.resolved = true;
    task.answered = with_answer;
    ++resolved;
    last_resolution_us = std::max(last_resolution_us, at_us);
  };

  // A failed attempt either exhausts the task or schedules the next
  // attempt after the jittered exponential backoff, preferring a spare
  // worker on the same road over the straggler.
  const auto fail_attempt = [&](int task_index, int64_t now_us) {
    Task& task = tasks[static_cast<size_t>(task_index)];
    if (task.attempts_used >= options_.max_attempts) {
      ++out.stats.exhausted;
      resolve(task, /*with_answer=*/false, now_us);
      return;
    }
    const int retry = task.attempts_used;  // 1-based retry index
    double backoff_ms =
        std::min(options_.backoff_cap_ms,
                 options_.backoff_base_ms * std::ldexp(1.0, retry - 1));
    if (options_.backoff_jitter > 0.0) {
      const double u = DispatchHashUnit(
          options_.seed, static_cast<uint64_t>(task_index),
          static_cast<uint64_t>(retry), 0, kJitterSalt);
      backoff_ms *= 1.0 + options_.backoff_jitter * (2.0 * u - 1.0);
    }
    ++out.stats.retries;
    const Worker* next_worker = by_id.at(task.current_worker);
    bool reassigned = false;
    if (options_.reassign_stragglers) {
      auto it = spares.find(task.road);
      if (it != spares.end()) {
        size_t& cursor = next_spare[task.road];
        if (cursor < it->second.size()) {
          next_worker = it->second[cursor++];
          reassigned = true;
          ++out.stats.reassignments;
        }
      }
    }
    dispatch(task_index, *next_worker, task.attempts_used + 1,
             now_us + MsToUs(backoff_ms), reassigned);
  };

  const auto plausible = [&](double kmh) {
    return std::isfinite(kmh) && kmh >= options_.min_plausible_kmh &&
           kmh <= options_.max_plausible_kmh;
  };

  while (resolved < static_cast<int>(tasks.size()) && !queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    clock_->SleepUntilMicros(ev.at_us);
    Task& task = tasks[static_cast<size_t>(ev.task)];
    if (ev.type == Event::kDeadline) {
      if (task.resolved || ev.attempt != task.active_attempt) continue;
      ++out.stats.deadline_misses;
      ++task.deadline_failures;
      close_attempt(ev.task, ev.attempt, ev.at_us, "deadline");
      fail_attempt(ev.task, ev.at_us);
      continue;
    }
    // Arrival.
    if (ev.at_us > ev.attempt_deadline_us) ++out.stats.late_reports;
    if (task.resolved) {
      if (task.answered) ++out.stats.duplicate_reports;
      continue;
    }
    if (!plausible(ev.value_kmh)) {
      ++out.stats.outlier_reports;
      if (ev.attempt == task.active_attempt) {
        ++task.outlier_failures;
        close_attempt(ev.task, ev.attempt, ev.at_us, "outlier");
        fail_attempt(ev.task, ev.at_us);
      }
      continue;
    }
    SpeedAnswer accepted_answer;
    accepted_answer.worker = ev.worker;
    accepted_answer.road = task.road;
    accepted_answer.reported_kmh = ev.value_kmh;
    accepted[task.road].push_back(accepted_answer);
    ++out.stats.answered;
    close_attempt(ev.task, ev.attempt, ev.at_us, "accepted");
    if (ev.attempt != task.active_attempt) {
      // A late report from an earlier attempt answered the task; the
      // in-flight attempt is moot.
      close_attempt(ev.task, task.active_attempt, ev.at_us, "preempted");
    }
    resolve(task, /*with_answer=*/true, ev.at_us);
  }

  // Post-resolution stragglers cost no time (nobody waits for them) but
  // still show up in the counters — they would hit the service logs.
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.type != Event::kArrival) continue;
    if (ev.at_us > ev.attempt_deadline_us) ++out.stats.late_reports;
    if (tasks[static_cast<size_t>(ev.task)].answered) {
      ++out.stats.duplicate_reports;
    }
  }

  out.span_ms = static_cast<double>(last_resolution_us - t0) / 1e3;

  // Attempts still open when the round ended (their task resolved by some
  // other path) close at the last resolution.
  if (tr != nullptr) {
    while (!open_attempts.empty()) {
      const auto [task_index, attempt] = open_attempts.begin()->first;
      close_attempt(task_index, attempt, last_resolution_us, "unresolved");
    }
  }

  util::trace::Span aggregate_span("crowd.aggregate");
  // Per-road verdicts. A selected road is exactly one of: probed (>= 1
  // accepted answer, possibly underfilled) or degraded (zero answers).
  std::map<graph::RoadId, std::pair<int, int>> failures;  // deadline, outlier
  std::map<graph::RoadId, int> staffed;
  for (const Task& task : tasks) {
    failures[task.road].first += task.deadline_failures;
    failures[task.road].second += task.outlier_failures;
    ++staffed[task.road];
  }
  std::vector<graph::RoadId> selected;
  for (const TaskAssignment& t : plan.assignments) selected.push_back(t.road);
  for (graph::RoadId r : plan.underfilled_roads) selected.push_back(r);
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  for (graph::RoadId road : selected) {
    const auto it = accepted.find(road);
    const int num_accepted =
        it == accepted.end() ? 0 : static_cast<int>(it->second.size());
    if (num_accepted == 0) {
      out.degraded_roads.push_back(road);
      DegradeReason reason = DegradeReason::kDeadline;
      if (staffed.count(road) == 0) {
        reason = DegradeReason::kUnstaffed;
      } else if (failures[road].second > failures[road].first) {
        reason = DegradeReason::kOutlier;
      }
      out.degraded_reasons.push_back(reason);
      continue;
    }
    // Accepted answers were paid in good faith; the statistical filter only
    // keeps them out of the aggregate, not out of the books.
    const std::vector<SpeedAnswer> kept =
        FilterReports(it->second, options_.mad_sigmas);
    out.stats.outlier_reports +=
        num_accepted - static_cast<int>(kept.size());
    util::Result<double> aggregated =
        AggregateAnswers(kept, options_.aggregation);
    if (!aggregated.ok()) return aggregated.status();
    ProbeResult probe;
    probe.road = road;
    probe.probed_kmh = *aggregated;
    probe.num_answers = static_cast<int>(kept.size());
    probe.paid_units = num_accepted;  // only accepted reports are paid
    out.round.total_paid += probe.paid_units;
    out.round.probes.push_back(probe);
    for (const SpeedAnswer& a : kept) {
      out.round.raw_answers.push_back(a);
    }
    const int quota = std::max(1, costs.Cost(road));
    if (num_accepted < quota) out.underfilled_roads.push_back(road);
  }
  aggregate_span.Annotate("probes",
                          static_cast<int64_t>(out.round.probes.size()));
  aggregate_span.Annotate("degraded",
                          static_cast<int64_t>(out.degraded_roads.size()));
  aggregate_span.End();

  // The parent dispatch span covers dispatch to last resolution and carries
  // the per-road degrade verdicts — the same reason codes the response
  // returns, so traces and responses can be checked against each other.
  if (tr != nullptr) {
    std::vector<util::trace::Annotation> notes;
    notes.push_back({"tasks", std::to_string(out.stats.tasks)});
    notes.push_back({"answered", std::to_string(out.stats.answered)});
    notes.push_back({"retries", std::to_string(out.stats.retries)});
    notes.push_back(
        {"deadline_misses", std::to_string(out.stats.deadline_misses)});
    if (!out.degraded_roads.empty()) {
      std::string verdicts;
      for (size_t i = 0; i < out.degraded_roads.size(); ++i) {
        if (i > 0) verdicts += ",";
        verdicts += std::to_string(out.degraded_roads[i]);
        verdicts += ":";
        verdicts += DegradeReasonName(out.degraded_reasons[i]);
      }
      notes.push_back({"degraded", std::move(verdicts)});
    }
    util::trace::SpanRecord record;
    record.id = dispatch_span_id;
    record.parent = trace_parent;
    record.name = "crowd.dispatch";
    record.start_us = t0;
    record.end_us = last_resolution_us;
    record.annotations = std::move(notes);
    tr->Record(std::move(record));
  }
  return out;
}

}  // namespace crowdrtse::crowd
