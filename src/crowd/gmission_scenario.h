#ifndef CROWDRTSE_CROWD_GMISSION_SCENARIO_H_
#define CROWDRTSE_CROWD_GMISSION_SCENARIO_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// Parameters of the gMission-style evaluation scenario (paper Table II row
/// 2): a mutually connected subcomponent of 50 roads is queried, and
/// workers travel along 30 of those roads, so R^w is a strict subset of
/// R^q. Budgets are small (10..50).
struct GMissionOptions {
  int num_queried_roads = 50;
  int num_worker_roads = 30;
};

/// The realised scenario: both sets plus the seed road the component was
/// grown from.
struct GMissionScenario {
  std::vector<graph::RoadId> queried_roads;  // R^q, connected
  std::vector<graph::RoadId> worker_roads;   // R^w subset of R^q
  graph::RoadId seed = graph::kInvalidRoad;
};

/// Grows a connected 50-road component around a random seed and samples 30
/// of its roads as worker-covered. Fails when the graph has no component of
/// the requested size.
util::Result<GMissionScenario> BuildGMissionScenario(
    const graph::Graph& graph, const GMissionOptions& options,
    util::Rng& rng);

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_GMISSION_SCENARIO_H_
