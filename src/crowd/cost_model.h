#ifndef CROWDRTSE_CROWD_COST_MODEL_H_
#define CROWDRTSE_CROWD_COST_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::crowd {

/// Per-road crowdsourcing cost c_i: the minimum number of unit-paid answers
/// that must be collected to trust a road's probed speed (paper §V-A,
/// "Feasibility"). The experiments randomise costs uniformly — the paper's
/// C1 = 1..5 and C2 = 1..10 ranges.
class CostModel {
 public:
  CostModel() = default;

  /// Uniform-random integer costs in [min_cost, max_cost] for every road.
  static util::Result<CostModel> UniformRandom(int num_roads, int min_cost,
                                               int max_cost, util::Rng& rng);

  /// Every road costs `cost` (the paper's trivial-case setting c_r = 1).
  static CostModel Constant(int num_roads, int cost);

  /// Costs derived from per-road speed variability: stable (highway-like)
  /// roads need fewer answers, volatile roads more. `sigmas` is the
  /// per-road periodicity intensity; costs scale linearly between
  /// [min_cost, max_cost] over the sigma range.
  static util::Result<CostModel> FromVolatility(
      const std::vector<double>& sigmas, int min_cost, int max_cost);

  /// Wraps an explicit per-road cost vector (e.g. a shard-local projection
  /// of a global model). Every cost must be >= 1.
  static util::Result<CostModel> FromCosts(std::vector<int> costs);

  int num_roads() const { return static_cast<int>(costs_.size()); }
  int Cost(graph::RoadId road) const {
    return costs_[static_cast<size_t>(road)];
  }
  const std::vector<int>& costs() const { return costs_; }

  /// Total cost of a road set.
  int TotalCost(const std::vector<graph::RoadId>& roads) const;

 private:
  std::vector<int> costs_;
};

/// The paper's two cost ranges (Table II lists 1..5 and 1..10; the Fig. 2
/// analysis calls C1 "the larger range", so C1 = 1..10 and C2 = 1..5).
inline constexpr int kCostRangeC1Min = 1;
inline constexpr int kCostRangeC1Max = 10;
inline constexpr int kCostRangeC2Min = 1;
inline constexpr int kCostRangeC2Max = 5;

}  // namespace crowdrtse::crowd

#endif  // CROWDRTSE_CROWD_COST_MODEL_H_
