#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "graph/bfs.h"
#include "graph/graph_io.h"

namespace crowdrtse::partition {

namespace {

/// SplitMix64 finaliser: the deterministic tie-break hash. Gridded maps
/// have whole rows sharing a coordinate; ordering ties by a seed-keyed
/// hash instead of raw id keeps the cut from degenerating into id order
/// while staying a pure function of (seed, road).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct BisectContext {
  const std::vector<std::pair<double, double>>* positions;
  uint64_t seed;
  std::vector<int32_t>* owner;
  int next_shard = 0;
};

/// Splits roads[begin, end) into k shards by recursive median bisection
/// along the wider geographic axis. Left half first, so shard ids sweep
/// the map in a deterministic spatial order.
void Bisect(BisectContext& ctx, std::vector<graph::RoadId>& roads,
            size_t begin, size_t end, int k) {
  if (k == 1) {
    const int shard = ctx.next_shard++;
    for (size_t i = begin; i < end; ++i) {
      (*ctx.owner)[static_cast<size_t>(roads[i])] = shard;
    }
    return;
  }

  double min_x = 0.0, max_x = 0.0, min_y = 0.0, max_y = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const auto& [x, y] = (*ctx.positions)[static_cast<size_t>(roads[i])];
    if (i == begin) {
      min_x = max_x = x;
      min_y = max_y = y;
      continue;
    }
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;
  int axis;  // 0 = x, 1 = y
  if (span_x > span_y) {
    axis = 0;
  } else if (span_y > span_x) {
    axis = 1;
  } else {
    axis = static_cast<int>(
        Mix64(ctx.seed ^ (static_cast<uint64_t>(begin) << 21) ^ end) & 1);
  }

  const auto key = [&](graph::RoadId r) {
    const auto& [x, y] = (*ctx.positions)[static_cast<size_t>(r)];
    return axis == 0 ? x : y;
  };
  const auto less = [&](graph::RoadId a, graph::RoadId b) {
    const double ka = key(a);
    const double kb = key(b);
    if (ka != kb) return ka < kb;
    const uint64_t ha = Mix64(ctx.seed ^ static_cast<uint64_t>(a));
    const uint64_t hb = Mix64(ctx.seed ^ static_cast<uint64_t>(b));
    if (ha != hb) return ha < hb;
    return a < b;
  };

  const int k1 = k / 2;
  const int k2 = k - k1;
  const size_t count = end - begin;
  const size_t n1 = static_cast<size_t>(std::llround(
      static_cast<double>(count) * static_cast<double>(k1) /
      static_cast<double>(k)));
  std::nth_element(roads.begin() + static_cast<ptrdiff_t>(begin),
                   roads.begin() + static_cast<ptrdiff_t>(begin + n1),
                   roads.begin() + static_cast<ptrdiff_t>(end), less);
  Bisect(ctx, roads, begin, begin + n1, k1);
  Bisect(ctx, roads, begin + n1, end, k2);
}

/// One greedy KL-style sweep: move boundary roads to the neighbouring
/// shard holding most of their adjacency when the cut strictly drops and
/// the balance envelope allows. Returns the number of moves.
int RefineSweep(const graph::Graph& graph, std::vector<int32_t>& owner,
                std::vector<size_t>& shard_size, size_t min_allowed,
                size_t max_allowed, int num_shards) {
  int moves = 0;
  std::vector<int> neighbor_count(static_cast<size_t>(num_shards), 0);
  std::vector<int32_t> touched;
  for (graph::RoadId r = 0; r < graph.num_roads(); ++r) {
    const int32_t a = owner[static_cast<size_t>(r)];
    touched.clear();
    for (const graph::Adjacency& adj : graph.Neighbors(r)) {
      const int32_t s = owner[static_cast<size_t>(adj.neighbor)];
      if (neighbor_count[static_cast<size_t>(s)] == 0) touched.push_back(s);
      ++neighbor_count[static_cast<size_t>(s)];
    }
    int32_t best = a;
    int best_count = neighbor_count[static_cast<size_t>(a)];
    for (const int32_t s : touched) {
      const int count = neighbor_count[static_cast<size_t>(s)];
      if (s != a && (count > best_count ||
                     (count == best_count && best != a && s < best))) {
        best = s;
        best_count = count;
      }
    }
    const int internal = neighbor_count[static_cast<size_t>(a)];
    if (best != a && best_count > internal &&
        shard_size[static_cast<size_t>(a)] > min_allowed &&
        shard_size[static_cast<size_t>(best)] < max_allowed) {
      owner[static_cast<size_t>(r)] = best;
      --shard_size[static_cast<size_t>(a)];
      ++shard_size[static_cast<size_t>(best)];
      ++moves;
    }
    for (const int32_t s : touched) {
      neighbor_count[static_cast<size_t>(s)] = 0;
    }
  }
  return moves;
}

}  // namespace

util::Result<Partition> PartitionByGeography(
    const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const PartitionerOptions& options) {
  const int n = graph.num_roads();
  if (n <= 0) {
    return util::Status::InvalidArgument("cannot partition an empty graph");
  }
  if (positions.size() != static_cast<size_t>(n)) {
    return util::Status::InvalidArgument(
        "positions size " + std::to_string(positions.size()) +
        " does not match the graph's " + std::to_string(n) + " roads");
  }
  if (options.num_shards < 1 || options.num_shards > n) {
    return util::Status::InvalidArgument(
        "num_shards must be in [1, num_roads]");
  }
  if (options.halo_radius < 0) {
    return util::Status::InvalidArgument("halo radius must be >= 0");
  }
  if (!(options.balance_slack >= 0.0 && options.balance_slack < 1.0)) {
    return util::Status::InvalidArgument("balance slack must be in [0, 1)");
  }
  if (options.refine_passes < 0) {
    return util::Status::InvalidArgument("refine passes must be >= 0");
  }

  Partition partition;
  partition.num_roads = n;
  partition.num_shards = options.num_shards;
  partition.halo_radius = options.halo_radius;
  partition.seed = options.seed;
  partition.graph_checksum = graph::EdgeListChecksum(graph);
  partition.owner.assign(static_cast<size_t>(n), 0);

  // Phase 1: recursive geographic bisection.
  std::vector<graph::RoadId> roads(static_cast<size_t>(n));
  std::iota(roads.begin(), roads.end(), 0);
  BisectContext ctx{&positions, options.seed, &partition.owner, 0};
  Bisect(ctx, roads, 0, static_cast<size_t>(n), options.num_shards);

  // Phase 2: edge-cut refinement inside the balance envelope.
  if (options.num_shards > 1 && options.refine_passes > 0) {
    std::vector<size_t> shard_size(
        static_cast<size_t>(options.num_shards), 0);
    for (int32_t s : partition.owner) {
      ++shard_size[static_cast<size_t>(s)];
    }
    const double target =
        static_cast<double>(n) / static_cast<double>(options.num_shards);
    const size_t min_allowed = std::max<size_t>(
        1, static_cast<size_t>(
               std::floor(target * (1.0 - options.balance_slack))));
    const size_t max_allowed = std::max(
        min_allowed, static_cast<size_t>(
                         std::ceil(target * (1.0 + options.balance_slack))));
    for (int pass = 0; pass < options.refine_passes; ++pass) {
      if (RefineSweep(graph, partition.owner, shard_size, min_allowed,
                      max_allowed, options.num_shards) == 0) {
        break;
      }
    }
  }

  // Phase 3: owned lists (ascending by construction) and halo rings.
  partition.shards.assign(static_cast<size_t>(options.num_shards), {});
  for (graph::RoadId r = 0; r < n; ++r) {
    partition.shards[static_cast<size_t>(partition.owner[static_cast<size_t>(r)])]
        .owned.push_back(r);
  }
  for (ShardLayout& shard : partition.shards) {
    if (partition.halo_radius == 0) continue;
    std::vector<graph::RoadId> ball = graph::RoadsWithinHops(
        graph, shard.owned, partition.halo_radius);
    std::sort(ball.begin(), ball.end());
    shard.halo.clear();
    std::set_difference(ball.begin(), ball.end(), shard.owned.begin(),
                        shard.owned.end(), std::back_inserter(shard.halo));
  }

  const util::Status derived = partition.BuildDerivedTables();
  if (!derived.ok()) return derived;
  return partition;
}

}  // namespace crowdrtse::partition
