#ifndef CROWDRTSE_PARTITION_PARTITION_H_
#define CROWDRTSE_PARTITION_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::partition {

/// One shard's slice of the road network, in global road ids.
///
/// `owned` are the roads this shard answers for; `halo` is the ring of
/// ghost roads within the partition's halo_radius hops of any owned road.
/// The halo exists so the shard's induced subgraph closes every locality
/// contract the serve pipeline relies on (see DESIGN.md §7): with a
/// correlation hop radius C and a GSP hop limit H, halo_radius >=
/// max(2C, C + H + 1) makes shard-local Gamma_R entries, OCS candidate
/// pools and GSP fixpoints bit-identical to their global counterparts for
/// owned queries.
///
/// Local ids are positions in `members` = sorted(owned ∪ halo). Keeping
/// the local order the ascending global order matters: every sorted road
/// list in the pipeline (probes, candidate pools, BFS level contents) then
/// maps between local and global form without reordering, which is what
/// makes sharded answers reproduce unsharded ones bitwise.
struct ShardLayout {
  std::vector<graph::RoadId> owned;  // sorted ascending, global ids
  std::vector<graph::RoadId> halo;   // sorted ascending, disjoint from owned

  // Derived by Partition::BuildDerivedTables():
  std::vector<graph::RoadId> members;  // sorted(owned ∪ halo); local -> global
  std::vector<uint8_t> owned_local;    // members.size(); 1 = owned

  int num_members() const { return static_cast<int>(members.size()); }

  /// Local id of global road `r`, or graph::kInvalidRoad when `r` is not a
  /// member. O(log members).
  graph::RoadId LocalId(graph::RoadId r) const;
};

/// A K-way partition of a road network plus per-shard remapping tables.
/// `owner[r]` is the shard answering for global road r; every road is
/// owned by exactly one shard. `graph_checksum` pins the partition to the
/// exact graph it was computed from (see partition_io).
struct Partition {
  int num_roads = 0;
  int num_shards = 0;
  int halo_radius = 0;
  uint64_t seed = 0;
  uint64_t graph_checksum = 0;
  std::vector<int32_t> owner;  // size num_roads
  std::vector<ShardLayout> shards;

  int OwnerOf(graph::RoadId r) const {
    return owner[static_cast<size_t>(r)];
  }

  /// Rebuilds every shard's derived tables (members, owned_local) from
  /// owned/halo and validates the whole structure: sizes, sortedness,
  /// owned/halo disjointness, and owner[] consistency with the shard owned
  /// lists. Called by the partitioner and by partition_io loads.
  util::Status BuildDerivedTables();

  /// max(owned size) / min(owned size) — the balance figure the partitioner
  /// bounds (<= (1 + slack) / (1 - slack)).
  double BalanceRatio() const;
};

/// Number of graph edges whose endpoints are owned by different shards —
/// the partitioner's refinement objective, exposed for tests and bench
/// logging.
int64_t EdgeCut(const graph::Graph& graph, const Partition& partition);

}  // namespace crowdrtse::partition

#endif  // CROWDRTSE_PARTITION_PARTITION_H_
