#include "partition/partition.h"

#include <algorithm>
#include <string>

namespace crowdrtse::partition {

graph::RoadId ShardLayout::LocalId(graph::RoadId r) const {
  const auto it = std::lower_bound(members.begin(), members.end(), r);
  if (it == members.end() || *it != r) return graph::kInvalidRoad;
  return static_cast<graph::RoadId>(it - members.begin());
}

namespace {

util::Status CheckSortedInRange(const std::vector<graph::RoadId>& roads,
                                int num_roads, const std::string& what,
                                int shard) {
  for (size_t i = 0; i < roads.size(); ++i) {
    const graph::RoadId r = roads[i];
    if (r < 0 || r >= num_roads) {
      return util::Status::InvalidArgument(
          "shard " + std::to_string(shard) + " " + what + " road " +
          std::to_string(r) + " out of range [0, " +
          std::to_string(num_roads) + ")");
    }
    if (i > 0 && roads[i - 1] >= r) {
      return util::Status::InvalidArgument(
          "shard " + std::to_string(shard) + " " + what +
          " list must be strictly increasing");
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Status Partition::BuildDerivedTables() {
  if (num_roads < 0 || num_shards <= 0) {
    return util::Status::InvalidArgument(
        "partition needs num_roads >= 0 and num_shards >= 1");
  }
  if (halo_radius < 0) {
    return util::Status::InvalidArgument("halo radius must be >= 0");
  }
  if (static_cast<int>(shards.size()) != num_shards) {
    return util::Status::InvalidArgument(
        "shard list size " + std::to_string(shards.size()) +
        " does not match num_shards " + std::to_string(num_shards));
  }
  if (static_cast<int>(owner.size()) != num_roads) {
    return util::Status::InvalidArgument(
        "owner table size " + std::to_string(owner.size()) +
        " does not match num_roads " + std::to_string(num_roads));
  }

  std::vector<uint8_t> seen(static_cast<size_t>(num_roads), 0);
  for (int s = 0; s < num_shards; ++s) {
    ShardLayout& shard = shards[static_cast<size_t>(s)];
    util::Status ok = CheckSortedInRange(shard.owned, num_roads, "owned", s);
    if (!ok.ok()) return ok;
    ok = CheckSortedInRange(shard.halo, num_roads, "halo", s);
    if (!ok.ok()) return ok;
    for (graph::RoadId r : shard.owned) {
      if (seen[static_cast<size_t>(r)]) {
        return util::Status::InvalidArgument(
            "road " + std::to_string(r) + " owned by more than one shard");
      }
      seen[static_cast<size_t>(r)] = 1;
      if (owner[static_cast<size_t>(r)] != s) {
        return util::Status::InvalidArgument(
            "owner table disagrees with shard " + std::to_string(s) +
            " for road " + std::to_string(r));
      }
    }

    // members = sorted merge of owned and halo; both inputs are sorted and
    // must be disjoint.
    shard.members.clear();
    shard.owned_local.clear();
    shard.members.reserve(shard.owned.size() + shard.halo.size());
    shard.owned_local.reserve(shard.owned.size() + shard.halo.size());
    size_t oi = 0;
    size_t hi = 0;
    while (oi < shard.owned.size() || hi < shard.halo.size()) {
      const bool take_owned =
          hi >= shard.halo.size() ||
          (oi < shard.owned.size() && shard.owned[oi] < shard.halo[hi]);
      if (!take_owned && oi < shard.owned.size() &&
          shard.owned[oi] == shard.halo[hi]) {
        return util::Status::InvalidArgument(
            "road " + std::to_string(shard.owned[oi]) +
            " appears in both owned and halo of shard " + std::to_string(s));
      }
      if (take_owned) {
        shard.members.push_back(shard.owned[oi++]);
        shard.owned_local.push_back(1);
      } else {
        shard.members.push_back(shard.halo[hi++]);
        shard.owned_local.push_back(0);
      }
    }
  }

  for (int r = 0; r < num_roads; ++r) {
    if (!seen[static_cast<size_t>(r)]) {
      return util::Status::InvalidArgument(
          "road " + std::to_string(r) + " is owned by no shard");
    }
  }
  return util::Status::Ok();
}

double Partition::BalanceRatio() const {
  size_t min_size = 0;
  size_t max_size = 0;
  bool first = true;
  for (const ShardLayout& shard : shards) {
    if (first) {
      min_size = max_size = shard.owned.size();
      first = false;
      continue;
    }
    min_size = std::min(min_size, shard.owned.size());
    max_size = std::max(max_size, shard.owned.size());
  }
  if (min_size == 0) return 0.0;
  return static_cast<double>(max_size) / static_cast<double>(min_size);
}

int64_t EdgeCut(const graph::Graph& graph, const Partition& partition) {
  int64_t cut = 0;
  for (graph::EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    if (partition.OwnerOf(a) != partition.OwnerOf(b)) ++cut;
  }
  return cut;
}

}  // namespace crowdrtse::partition
