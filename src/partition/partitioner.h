#ifndef CROWDRTSE_PARTITION_PARTITIONER_H_
#define CROWDRTSE_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "partition/partition.h"
#include "util/status.h"

namespace crowdrtse::partition {

/// Knobs of the geographic partitioner.
struct PartitionerOptions {
  /// K: number of shards. Any K in [1, num_roads]; K need not be a power
  /// of two (bisection splits the shard count K -> floor(K/2) + ceil(K/2)).
  int num_shards = 4;

  /// Ghost-ring depth: every road within this many hops of an owned road
  /// joins the shard's halo. Pick >= max(2C, C + H + 1) for a correlation
  /// hop radius C and GSP hop limit H to get bit-exact shard-local serving
  /// (DESIGN.md §7).
  int halo_radius = 2;

  /// Deterministic tie-break salt: roads sharing a coordinate are ordered
  /// by a seed-keyed hash, so one seed always reproduces the same
  /// partition and different seeds explore different tie resolutions on
  /// gridded maps.
  uint64_t seed = 0;

  /// Refinement may move a road only while every shard's owned size stays
  /// within [target*(1-slack), target*(1+slack)] of the ideal target
  /// n/K, bounding BalanceRatio() by (1+slack)/(1-slack) — 1.198 at the
  /// default 0.09, inside the 1.2 budget the tests assert.
  double balance_slack = 0.09;

  /// Greedy edge-cut refinement sweeps after bisection (0 disables): each
  /// sweep scans roads in ascending id order and moves a road to the
  /// neighbouring shard holding most of its adjacency when that strictly
  /// reduces the cut and balance allows.
  int refine_passes = 2;
};

/// Recursive geographic bisection over road positions (x, y), followed by
/// an edge-cut refinement pass and halo construction. Deterministic for a
/// given (graph, positions, options) — same seed, same partition, always.
util::Result<Partition> PartitionByGeography(
    const graph::Graph& graph,
    const std::vector<std::pair<double, double>>& positions,
    const PartitionerOptions& options);

}  // namespace crowdrtse::partition

#endif  // CROWDRTSE_PARTITION_PARTITIONER_H_
