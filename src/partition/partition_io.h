#ifndef CROWDRTSE_PARTITION_PARTITION_IO_H_
#define CROWDRTSE_PARTITION_PARTITION_IO_H_

#include <string>

#include "graph/graph.h"
#include "partition/partition.h"
#include "util/status.h"

namespace crowdrtse::partition {

/// Persists a partition table: magic, version, header (num_roads,
/// num_shards, halo_radius, seed, graph checksum), owner table, then each
/// shard's owned and halo lists. Little-endian via util::BinaryWriter.
util::Status SavePartition(const std::string& path,
                           const Partition& partition);

/// Loads a partition table and binds it to `graph`: the stored road count
/// must equal graph.num_roads() and the stored checksum must equal
/// graph::EdgeListChecksum(graph), so a table computed for one map can
/// never be applied to another. Rebuilds and validates derived tables
/// before returning.
util::Result<Partition> LoadPartition(const std::string& path,
                                      const graph::Graph& graph);

}  // namespace crowdrtse::partition

#endif  // CROWDRTSE_PARTITION_PARTITION_IO_H_
