#include "partition/partition_io.h"

#include <string>
#include <vector>

#include "graph/graph_io.h"
#include "util/serialize.h"

namespace crowdrtse::partition {

namespace {

constexpr uint32_t kMagic = 0x50415254;  // "PART"
constexpr uint32_t kFormatVersion = 1;

}  // namespace

util::Status SavePartition(const std::string& path,
                           const Partition& partition) {
  util::BinaryWriter writer;
  writer.WriteUint32(kMagic);
  writer.WriteUint32(kFormatVersion);
  writer.WriteInt32(partition.num_roads);
  writer.WriteInt32(partition.num_shards);
  writer.WriteInt32(partition.halo_radius);
  writer.WriteUint64(partition.seed);
  writer.WriteUint64(partition.graph_checksum);
  writer.WriteInt32Vector(partition.owner);
  for (const ShardLayout& shard : partition.shards) {
    writer.WriteInt32Vector(shard.owned);
    writer.WriteInt32Vector(shard.halo);
  }
  return writer.Flush(path);
}

util::Result<Partition> LoadPartition(const std::string& path,
                                      const graph::Graph& graph) {
  util::Result<util::BinaryReader> reader = util::BinaryReader::FromFile(path);
  if (!reader.ok()) return reader.status();

  const util::Result<uint32_t> magic = reader->ReadUint32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) {
    return util::Status::InvalidArgument(
        path + " is not a partition table (bad magic)");
  }
  const util::Result<uint32_t> version = reader->ReadUint32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported partition format version " + std::to_string(*version));
  }

  Partition partition;
  const util::Result<int32_t> num_roads = reader->ReadInt32();
  if (!num_roads.ok()) return num_roads.status();
  const util::Result<int32_t> num_shards = reader->ReadInt32();
  if (!num_shards.ok()) return num_shards.status();
  const util::Result<int32_t> halo_radius = reader->ReadInt32();
  if (!halo_radius.ok()) return halo_radius.status();
  const util::Result<uint64_t> seed = reader->ReadUint64();
  if (!seed.ok()) return seed.status();
  const util::Result<uint64_t> checksum = reader->ReadUint64();
  if (!checksum.ok()) return checksum.status();
  partition.num_roads = *num_roads;
  partition.num_shards = *num_shards;
  partition.halo_radius = *halo_radius;
  partition.seed = *seed;
  partition.graph_checksum = *checksum;

  if (partition.num_roads != graph.num_roads()) {
    return util::Status::InvalidArgument(
        "partition table covers " + std::to_string(partition.num_roads) +
        " roads but the graph has " + std::to_string(graph.num_roads()) +
        " — refusing to apply a table from a different map");
  }
  const uint64_t graph_checksum = graph::EdgeListChecksum(graph);
  if (partition.graph_checksum != graph_checksum) {
    return util::Status::InvalidArgument(
        "partition table checksum " + std::to_string(partition.graph_checksum) +
        " does not match the graph's edge-list checksum " +
        std::to_string(graph_checksum) +
        " — the table was computed for a different edge set");
  }
  if (partition.num_shards <= 0) {
    return util::Status::InvalidArgument("partition table has no shards");
  }

  util::Result<std::vector<int32_t>> owner = reader->ReadInt32Vector();
  if (!owner.ok()) return owner.status();
  partition.owner = std::move(*owner);
  partition.shards.resize(static_cast<size_t>(partition.num_shards));
  for (ShardLayout& shard : partition.shards) {
    util::Result<std::vector<int32_t>> owned = reader->ReadInt32Vector();
    if (!owned.ok()) return owned.status();
    shard.owned = std::move(*owned);
    util::Result<std::vector<int32_t>> halo = reader->ReadInt32Vector();
    if (!halo.ok()) return halo.status();
    shard.halo = std::move(*halo);
  }
  if (!reader->AtEnd()) {
    return util::Status::InvalidArgument(
        path + " has trailing bytes after the partition table");
  }

  const util::Status derived = partition.BuildDerivedTables();
  if (!derived.ok()) return derived;
  return partition;
}

}  // namespace crowdrtse::partition
