#include "scenario/envelope.h"

#include "util/string_util.h"

namespace crowdrtse::scenario {

namespace {

void CheckMax(std::vector<std::string>& failures, const char* name,
              double bound, double actual) {
  if (bound >= 0.0 && actual > bound) {
    failures.push_back(std::string(name) + ": " +
                       util::FormatDouble(actual, 4) + " > " +
                       util::FormatDouble(bound, 4));
  }
}

void CheckMin(std::vector<std::string>& failures, const char* name,
              double bound, double actual) {
  if (bound >= 0.0 && actual < bound) {
    failures.push_back(std::string(name) + ": " +
                       util::FormatDouble(actual, 4) + " < " +
                       util::FormatDouble(bound, 4));
  }
}

void CheckMaxCount(std::vector<std::string>& failures, const char* name,
                   int64_t bound, int64_t actual) {
  if (bound >= 0 && actual > bound) {
    failures.push_back(std::string(name) + ": " + std::to_string(actual) +
                       " > " + std::to_string(bound));
  }
}

void CheckMinCount(std::vector<std::string>& failures, const char* name,
                   int64_t bound, int64_t actual) {
  if (bound >= 0 && actual < bound) {
    failures.push_back(std::string(name) + ": " + std::to_string(actual) +
                       " < " + std::to_string(bound));
  }
}

}  // namespace

std::vector<std::string> EvaluateEnvelope(const EnvelopeSpec& spec,
                                          const PhaseMetrics& metrics) {
  std::vector<std::string> failures;

  if (spec.zero_silent_drops) {
    const int64_t accounted = metrics.served + metrics.rejected +
                              metrics.failed;
    if (accounted != metrics.attempts) {
      failures.push_back("zero_silent_drops: offered " +
                         std::to_string(metrics.attempts) +
                         " queries but served+rejected+failed = " +
                         std::to_string(accounted));
    }
  }
  if (spec.reservations_settled && metrics.reserved_outstanding != 0) {
    failures.push_back("reservations_settled: " +
                       std::to_string(metrics.reserved_outstanding) +
                       " budget units still reserved");
  }
  if (spec.span_bounded && metrics.max_round_span_ms > 0.0 &&
      metrics.max_span_ms > metrics.max_round_span_ms + 1e-6) {
    failures.push_back("span_bounded: " +
                       util::FormatDouble(metrics.max_span_ms, 3) +
                       "ms > MaxRoundSpanMs " +
                       util::FormatDouble(metrics.max_round_span_ms, 3) +
                       "ms");
  }

  CheckMax(failures, "max_mape", spec.max_mape, metrics.Mape());
  CheckMinCount(failures, "min_served", spec.min_served, metrics.served);
  CheckMaxCount(failures, "max_failed", spec.max_failed, metrics.failed);
  CheckMaxCount(failures, "max_rejected", spec.max_rejected,
                metrics.rejected);
  CheckMinCount(failures, "min_rejected", spec.min_rejected,
                metrics.rejected);
  CheckMaxCount(failures, "max_shed", spec.max_shed, metrics.shed);
  CheckMinCount(failures, "min_shed", spec.min_shed, metrics.shed);
  CheckMax(failures, "max_degraded_fraction", spec.max_degraded_fraction,
           metrics.DegradedFraction());
  CheckMin(failures, "min_degraded_fraction", spec.min_degraded_fraction,
           metrics.DegradedFraction());
  CheckMax(failures, "max_underfilled_fraction",
           spec.max_underfilled_fraction, metrics.UnderfilledFraction());
  CheckMinCount(failures, "min_outlier_reports", spec.min_outlier_reports,
                metrics.outlier_reports);
  CheckMaxCount(failures, "max_paid", spec.max_paid, metrics.paid);
  CheckMinCount(failures, "min_paid", spec.min_paid, metrics.paid);

  return failures;
}

}  // namespace crowdrtse::scenario
