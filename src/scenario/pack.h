#ifndef CROWDRTSE_SCENARIO_PACK_H_
#define CROWDRTSE_SCENARIO_PACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crowd/fault_plan.h"
#include "scenario/ascii_map.h"
#include "scenario/world.h"
#include "util/status.h"

namespace crowdrtse::scenario {

/// A set of roads named by a timeline event or a storm: the whole map, an
/// explicit list (road names for sketch maps, numeric ids for generator
/// maps), or the district within `hops` hops of a center road.
struct RoadsSpec {
  enum class Kind { kAll, kList, kDistrict };
  Kind kind = Kind::kAll;
  std::vector<std::string> names;  // kList
  std::string center;              // kDistrict
  int hops = 2;                    // kDistrict
};

/// Alternative to an ascii sketch: a generated map. `grid` is rows x cols
/// (positions synthesised on the unit square); `metro` is the O(n)
/// street-grid + arterials generator (graph::MetroNetwork).
struct GeneratorSpec {
  std::string kind;  // empty = no generator, use the sketch
  int rows = 8;
  int cols = 8;
  int roads = 1024;  // metro target road count
};

/// One timeline event. Events fire at slot `at` on the scenario day, in
/// file order within a slot (DESIGN.md §9 lists the per-kind keys).
struct Event {
  enum class Kind {
    kPhase,     // snapshot boundary: close the running phase, open `name`
    kStorm,     // a burst of queries at this slot
    kIncident,  // ground-truth speed drop with spillover
    kDrift,     // workers move to adjacent roads with probability p
    kWorkers,   // population churn: leave fraction and/or add count
    kFaults,    // swap the engine's crowd::FaultPlan
    kLiars,     // a coordinated lying cohort on one road
  };
  Kind kind = Kind::kPhase;
  int at = 0;

  std::string name;  // kPhase

  // kStorm: `queries` fixed count, or `rate` > 0 for a Poisson-distributed
  // count; each query asks `size` distinct roads drawn from `roads` and
  // carries budget_cap `budget` (0 = ledger default).
  int queries = 0;
  double rate = -1.0;
  int size = 3;
  int budget = 0;
  RoadsSpec roads;

  // kIncident (also reuses `road`): fractional `drop` for `duration`
  // slots, spilling `spillover` hops.
  std::string road;
  double drop = 0.5;
  int duration = 6;
  int spillover = 1;

  // kDrift.
  double probability = 0.5;

  // kWorkers: each worker on `roads` leaves with probability `leave`;
  // `add` fresh workers spawn spread over `roads`.
  double leave = 0.0;
  int add = 0;

  // kFaults: the new default FaultSpec (scoped to `roads` when not kAll);
  // `clear` resets the plan to fault-free.
  crowd::FaultSpec fault;
  bool clear = false;

  // kLiars: `cohort` workers on `road` start reporting exactly
  // `value` km/h (coordinated, so the MAD filter sees agreeing liars).
  int cohort = 0;
  double value = 100.0;
};

/// One envelope block: declarative bounds a phase (or the whole run, when
/// `phase` is empty) must satisfy. Numeric bounds < 0 are disabled; the
/// three structural booleans default on and can be switched off.
struct EnvelopeSpec {
  std::string phase;  // "" = run totals

  /// attempts == served + rejected + failed (+ shed answers are counted
  /// inside served): nothing the storm offered vanished silently.
  bool zero_silent_drops = true;
  /// Every ledger reservation was settled or released (run totals only).
  bool reservations_settled = true;
  /// Every crowd round resolved within DispatchOptions::MaxRoundSpanMs()
  /// (fault-tolerant packs only).
  bool span_bounded = true;

  double max_mape = -1.0;
  int min_served = -1;
  int max_failed = -1;
  int max_rejected = -1;
  int min_rejected = -1;
  int max_shed = -1;
  int min_shed = -1;
  double max_degraded_fraction = -1.0;  // degraded roads / queried roads
  double min_degraded_fraction = -1.0;
  double max_underfilled_fraction = -1.0;
  int64_t min_outlier_reports = -1;
  int64_t max_paid = -1;
  int64_t min_paid = -1;
};

/// A parsed scenario pack: map + world + engine knobs + timeline +
/// envelopes. See DESIGN.md §9 for the file format.
struct Pack {
  std::string name;
  std::string description;
  uint64_t seed = 1;

  // Map: exactly one of `sketch` (with optional `tags`) or `generator`.
  std::string sketch;
  std::vector<TagLine> tags;
  GeneratorSpec generator;

  WorldOptions world;

  // Worker population.
  int workers_per_road = 3;
  bool noiseless = true;
  double min_bias = 0.97, max_bias = 1.03;
  double min_noise_kmh = 0.5, max_noise_kmh = 2.0;

  // Engine / campaign knobs.
  int64_t campaign_budget = -1;  // < 0 = unlimited
  int per_query_cap = 10;
  int cost_per_road = 2;
  bool fault_tolerant = false;
  int hop_radius = 2;     // C (0 = dense closure)
  int gsp_hop_limit = 2;  // H (0 = unlimited)
  bool prune_zero_gain = true;
  double theta = 0.92;
  double mad_sigmas = 4.0;
  int max_attempts = 3;
  double deadline_ms = 50.0;
  /// When the campaign ledger is dry, answer from the periodic fallback
  /// (counted served + shed) instead of rejecting — the admission ladder's
  /// bottom rung, driven from the runner.
  bool shed_when_dry = false;

  // Sharded replays.
  int shards = 4;
  int halo = 0;  // 0 = auto: max(2C, C + H + 1)

  std::vector<Event> timeline;
  std::vector<EnvelopeSpec> envelopes;

  /// Timeline horizon: the largest event slot.
  int LastEventSlot() const;
  /// The envelope block for `phase` ("" = run totals), or nullptr.
  const EnvelopeSpec* EnvelopeFor(const std::string& phase) const;
};

/// Parses the `.scn` text format. Rejects unknown sections, keys, event
/// kinds, out-of-range slots, and packs without a map or with both map
/// forms.
util::Result<Pack> ParsePack(const std::string& text);

/// Reads and parses a pack file.
util::Result<Pack> LoadPackFile(const std::string& path);

/// Compiles the pack's map — the ascii sketch (with tags) or the generator
/// — into a fixture. Generator roads get synthetic names "0", "1", ... and
/// default arterial profiles.
util::Result<MapFixture> BuildFixture(const Pack& pack);

/// Resolves a RoadsSpec against a fixture. Returns sorted unique ids;
/// rejects names that match no road.
util::Result<std::vector<graph::RoadId>> ResolveRoads(const RoadsSpec& spec,
                                                      const MapFixture& fixture);

}  // namespace crowdrtse::scenario

#endif  // CROWDRTSE_SCENARIO_PACK_H_
