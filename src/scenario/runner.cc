#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "core/crowd_rtse.h"
#include "crowd/cost_model.h"
#include "crowd/crowd_simulator.h"
#include "crowd/fault_plan.h"
#include "eval/metrics.h"
#include "obs/flight_recorder.h"
#include "util/logging.h"
#include "partition/partitioner.h"
#include "scenario/world.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/sharded_engine.h"
#include "server/worker_registry.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace crowdrtse::scenario {

namespace {

// Purpose-separated seed streams: each subsystem forks off the replay seed
// with its own salt, so adding draws to one stream never shifts another.
constexpr uint64_t kWorkerSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kCrowdSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kTimelineSalt = 0x165667b19e3779f9ULL;
constexpr uint64_t kFaultSalt = 0x27d4eb2f165667c5ULL;
constexpr uint64_t kDispatchSalt = 0x85ebca6b27d4eb4fULL;

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(uint64_t& digest, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    digest ^= bytes[i];
    digest *= kFnvPrime;
  }
}

void HashUint64(uint64_t& digest, uint64_t value) {
  HashBytes(digest, &value, sizeof(value));
}

void HashDouble(uint64_t& digest, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  HashUint64(digest, bits);
}

void HashRoads(uint64_t& digest, const std::vector<graph::RoadId>& roads) {
  HashUint64(digest, roads.size());
  for (graph::RoadId r : roads) {
    HashUint64(digest, static_cast<uint64_t>(r));
  }
}

std::string HexDigest(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

/// Knuth's Poisson sampler — fine at scenario rates (tens of queries).
int SamplePoisson(util::Rng& rng, double rate) {
  const double limit = std::exp(-rate);
  int count = 0;
  double product = 1.0;
  do {
    ++count;
    product *= rng.UniformDouble();
  } while (product > limit);
  return count - 1;
}

/// All per-phase stat counters come from engine-stat deltas, so the phase
/// attribution is exact whatever the engine counted internally.
struct StatsBase {
  int64_t served = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  int64_t paid = 0;
  int64_t outliers = 0;
};

StatsBase SnapshotStats(const server::Engine& engine) {
  const server::EngineStats stats = engine.stats();
  StatsBase base;
  base.served = stats.queries_served;
  base.rejected = stats.queries_rejected;
  base.failed = stats.queries_failed;
  base.shed = stats.queries_shed;
  base.paid = stats.total_paid;
  base.outliers = stats.reports_outlier;
  return base;
}

void JsonAppendMetrics(std::ostringstream& out, const PhaseMetrics& m) {
  out << "\"attempts\":" << m.attempts << ",\"served\":" << m.served
      << ",\"rejected\":" << m.rejected << ",\"failed\":" << m.failed
      << ",\"shed\":" << m.shed << ",\"paid\":" << m.paid
      << ",\"outlier_reports\":" << m.outlier_reports
      << ",\"roads_queried\":" << m.roads_queried
      << ",\"roads_probed\":" << m.roads_probed
      << ",\"roads_underfilled\":" << m.roads_underfilled
      << ",\"roads_degraded\":" << m.roads_degraded
      << ",\"mape\":" << util::FormatDouble(m.Mape(), 6)
      << ",\"degraded_fraction\":"
      << util::FormatDouble(m.DegradedFraction(), 6)
      << ",\"max_span_ms\":" << util::FormatDouble(m.max_span_ms, 3)
      << ",\"reserved_outstanding\":" << m.reserved_outstanding;
}

void JsonAppendPhase(std::ostringstream& out, const PhaseReport& phase) {
  out << "{\"name\":\"" << util::JsonEscape(phase.name) << "\",";
  JsonAppendMetrics(out, phase.metrics);
  out << ",\"checked\":" << (phase.checked ? "true" : "false")
      << ",\"passed\":" << (phase.Passed() ? "true" : "false")
      << ",\"failures\":[";
  for (size_t i = 0; i < phase.failures.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << util::JsonEscape(phase.failures[i]) << "\"";
  }
  out << "]}";
}

/// Everything the timeline loop mutates, bundled so event handlers stay
/// small. All references point into RunScenario's stack frame.
struct RunState {
  // Borrowed stack state, bound at construction (in this order).
  const Pack& pack;
  const MapFixture& fixture;
  ScenarioWorld& world;
  server::BudgetLedger& ledger;
  std::vector<crowd::Worker>& workers;
  util::Rng& timeline_rng;
  RunReport& report;

  // Wired up after construction.
  server::Engine* engine = nullptr;
  server::QueryEngine* single = nullptr;    // exactly one of these two
  server::ShardedEngine* sharded = nullptr;
  server::WorkerRegistry* registry = nullptr;  // single-engine only
  double max_round_span_ms = 0.0;
  bool keep_responses = false;

  crowd::FaultPlan fault_plan = {};
  crowd::WorkerId next_worker_id = 0;

  uint64_t digest = kFnvOffset;

  // The open phase: name, stat baseline, and response-side accumulators.
  std::string phase_name = {};
  StatsBase phase_base = {};
  PhaseMetrics phase_accum = {};  // attempts/roads/ape/span only
  PhaseMetrics total_accum = {};  // same, over the whole run
};

/// Pushes the canonical worker vector into whichever engine serves. The
/// runner owns the population; engines only ever see projected copies.
void PushWorkers(RunState& state) {
  if (state.registry != nullptr) {
    state.registry->ReplaceWorkers(state.workers);
  }
  if (state.sharded != nullptr) {
    state.sharded->SyncWorkers(state.workers);
  }
}

void PushFaultPlan(RunState& state) {
  if (state.single != nullptr) state.single->SetFaultPlan(state.fault_plan);
  if (state.sharded != nullptr) state.sharded->SetFaultPlan(state.fault_plan);
}

void ClosePhase(RunState& state) {
  PhaseReport phase;
  phase.name = state.phase_name;
  phase.metrics = state.phase_accum;
  const StatsBase now = SnapshotStats(*state.engine);
  phase.metrics.served = now.served - state.phase_base.served;
  phase.metrics.rejected = now.rejected - state.phase_base.rejected;
  phase.metrics.failed = now.failed - state.phase_base.failed;
  phase.metrics.shed = now.shed - state.phase_base.shed;
  phase.metrics.paid = now.paid - state.phase_base.paid;
  phase.metrics.outlier_reports = now.outliers - state.phase_base.outliers;
  phase.metrics.reserved_outstanding = state.ledger.reserved_outstanding();
  phase.metrics.max_round_span_ms = state.max_round_span_ms;
  if (const EnvelopeSpec* spec = state.pack.EnvelopeFor(phase.name)) {
    phase.checked = true;
    phase.failures = EvaluateEnvelope(*spec, phase.metrics);
  }
  // The implicit preamble only appears in the report when it did work.
  if (phase.name != "preamble" || phase.metrics.attempts > 0) {
    state.report.phases.push_back(std::move(phase));
  }
}

void OpenPhase(RunState& state, const std::string& name) {
  state.phase_name = name;
  state.phase_base = SnapshotStats(*state.engine);
  state.phase_accum = PhaseMetrics{};
}

void ServeOne(RunState& state, const server::QueryRequest& request) {
  ++state.phase_accum.attempts;
  ++state.total_accum.attempts;
  bool shed = false;
  util::Result<server::QueryResponse> result = util::Status::Ok();
  if (state.pack.shed_when_dry && state.ledger.NextQueryBudget() <= 0) {
    shed = true;
    result = state.engine->ServePeriodicFallback(request, state.world.truth);
  } else {
    result = state.engine->Serve(request, state.world.truth);
  }

  const uint64_t tag =
      (result.ok() ? 1ULL : 0ULL) | (shed ? 2ULL : 0ULL);
  HashUint64(state.digest, tag);
  if (result.ok()) {
    const server::QueryResponse& response = *result;
    for (double speed : response.queried_speeds) {
      HashDouble(state.digest, speed);
    }
    HashRoads(state.digest, response.probed_roads);
    HashRoads(state.digest, response.underfilled_roads);
    HashRoads(state.digest, response.degraded_roads);
    HashUint64(state.digest, static_cast<uint64_t>(response.granted_budget));
    HashUint64(state.digest, static_cast<uint64_t>(response.paid));
    HashDouble(state.digest, response.dispatch_span_ms);

    for (PhaseMetrics* accum :
         {&state.phase_accum, &state.total_accum}) {
      accum->roads_queried +=
          static_cast<int64_t>(request.queried.size());
      accum->roads_probed +=
          static_cast<int64_t>(response.probed_roads.size());
      accum->roads_underfilled +=
          static_cast<int64_t>(response.underfilled_roads.size());
      accum->roads_degraded +=
          static_cast<int64_t>(response.degraded_roads.size());
      accum->max_span_ms =
          std::max(accum->max_span_ms, response.dispatch_span_ms);
    }
    for (size_t i = 0; i < request.queried.size(); ++i) {
      const double truth_kmh =
          state.world.truth.At(request.slot, request.queried[i]);
      if (truth_kmh <= 0.0) continue;
      const double ape = eval::AbsolutePercentageError(
          response.queried_speeds[i], truth_kmh);
      state.phase_accum.ape_sum += ape;
      ++state.phase_accum.ape_cases;
      state.total_accum.ape_sum += ape;
      ++state.total_accum.ape_cases;
    }
  }
  if (state.keep_responses) {
    QueryRecord record;
    record.request = request;
    record.ok = result.ok();
    record.shed = shed;
    if (result.ok()) record.response = *result;
    state.report.records.push_back(std::move(record));
  }
}

util::Status RunStorm(RunState& state, const Event& event) {
  auto roads = ResolveRoads(event.roads, state.fixture);
  if (!roads.ok()) return roads.status();
  const int count = event.queries > 0
                        ? event.queries
                        : SamplePoisson(state.timeline_rng, event.rate);
  for (int q = 0; q < count; ++q) {
    server::QueryRequest request;
    request.slot = event.at;
    request.budget_cap = event.budget;
    const std::vector<int> picks = state.timeline_rng.SampleWithoutReplacement(
        static_cast<int>(roads->size()), event.size);
    request.queried.reserve(picks.size());
    for (int pick : picks) {
      request.queried.push_back((*roads)[static_cast<size_t>(pick)]);
    }
    // Ascending order keeps the request canonical: the response's speed
    // alignment, cross-shard grouping, and the digest all see one form.
    std::sort(request.queried.begin(), request.queried.end());
    ServeOne(state, request);
  }
  return util::Status::Ok();
}

util::Status RunIncident(RunState& state, const Event& event) {
  const graph::RoadId road = state.fixture.RoadByName(event.road);
  if (road == graph::kInvalidRoad) {
    return util::Status::NotFound("incident road '" + event.road +
                                  "' is not on the map");
  }
  if (auto s = ApplyIncident(state.fixture.graph, road, event.at,
                             event.duration, event.drop, event.spillover,
                             state.pack.world.min_speed, state.world.truth);
      !s.ok()) {
    return s;
  }
  if (state.sharded != nullptr) state.sharded->SyncWorld();
  return util::Status::Ok();
}

void RunDrift(RunState& state, const Event& event) {
  for (crowd::Worker& worker : state.workers) {
    if (!state.timeline_rng.Bernoulli(event.probability)) continue;
    const auto neighbors = state.fixture.graph.Neighbors(worker.road);
    if (neighbors.empty()) continue;
    const int pick = state.timeline_rng.UniformInt(
        0, static_cast<int>(neighbors.size()) - 1);
    worker.road = neighbors[static_cast<size_t>(pick)].neighbor;
  }
}

util::Status RunWorkerChurn(RunState& state, const Event& event) {
  auto roads = ResolveRoads(event.roads, state.fixture);
  if (!roads.ok()) return roads.status();
  std::vector<uint8_t> in_scope(
      static_cast<size_t>(state.fixture.graph.num_roads()), 0);
  for (graph::RoadId r : *roads) in_scope[static_cast<size_t>(r)] = 1;

  if (event.leave > 0.0) {
    // One Bernoulli draw per worker, departed or not, keeps the RNG
    // consumption independent of the population's current layout.
    std::vector<crowd::Worker> kept;
    kept.reserve(state.workers.size());
    for (const crowd::Worker& worker : state.workers) {
      const bool leaves = state.timeline_rng.Bernoulli(event.leave);
      if (leaves && in_scope[static_cast<size_t>(worker.road)]) continue;
      kept.push_back(worker);
    }
    state.workers = std::move(kept);
  }
  for (int i = 0; i < event.add; ++i) {
    crowd::Worker worker;
    worker.id = state.next_worker_id++;
    worker.road = (*roads)[state.timeline_rng.UniformUint64(roads->size())];
    if (state.pack.noiseless) {
      worker.bias = 1.0;
      worker.noise_kmh = 0.0;
    } else {
      worker.bias = state.timeline_rng.UniformDouble(state.pack.min_bias,
                                                     state.pack.max_bias);
      worker.noise_kmh = state.timeline_rng.UniformDouble(
          state.pack.min_noise_kmh, state.pack.max_noise_kmh);
    }
    state.workers.push_back(worker);
  }
  return util::Status::Ok();
}

util::Status RunFaultSwap(RunState& state, const Event& event) {
  if (event.clear) {
    state.fault_plan = crowd::FaultPlan();
    state.fault_plan.set_seed(state.pack.seed ^ kFaultSalt);
  } else if (event.roads.kind == RoadsSpec::Kind::kAll) {
    state.fault_plan.SetDefault(event.fault);
  } else {
    auto roads = ResolveRoads(event.roads, state.fixture);
    if (!roads.ok()) return roads.status();
    for (graph::RoadId road : *roads) {
      state.fault_plan.SetRoadSpec(road, event.fault);
    }
  }
  PushFaultPlan(state);
  return util::Status::Ok();
}

util::Status RunLiarCohort(RunState& state, const Event& event) {
  const graph::RoadId road = state.fixture.RoadByName(event.road);
  if (road == graph::kInvalidRoad) {
    return util::Status::NotFound("liar road '" + event.road +
                                  "' is not on the map");
  }
  // A coordinated liar is rate-1 fixed-value corruption: every answer the
  // cohort submits is exactly `value`, whatever the hash draw — which is
  // also why liar packs stay deterministic across engine kinds.
  crowd::FaultSpec lie;
  lie.corrupt_rate = 1.0;
  lie.corrupt_min_kmh = event.value;
  lie.corrupt_max_kmh = event.value;
  int recruited = 0;
  for (const crowd::Worker& worker : state.workers) {
    if (worker.road != road) continue;
    state.fault_plan.SetWorkerSpec(worker.id, lie);
    if (++recruited >= event.cohort) break;
  }
  if (recruited < event.cohort) {
    return util::Status::FailedPrecondition(
        "liar cohort wants " + std::to_string(event.cohort) +
        " workers on road '" + event.road + "' but only " +
        std::to_string(recruited) + " are there");
  }
  PushFaultPlan(state);
  return util::Status::Ok();
}

}  // namespace

const char* EngineKindName(RunnerOptions::EngineKind kind) {
  switch (kind) {
    case RunnerOptions::EngineKind::kSingle:
      return "single";
    case RunnerOptions::EngineKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

bool RunReport::AllPassed() const {
  for (const PhaseReport& phase : phases) {
    if (!phase.Passed()) return false;
  }
  return total.Passed();
}

std::string RunReport::ToJson() const {
  std::ostringstream out;
  out << "{\"pack\":\"" << util::JsonEscape(pack_name) << "\",\"engine\":\""
      << util::JsonEscape(engine) << "\",\"seed\":" << seed
      << ",\"digest\":\"" << HexDigest(answers_digest) << "\",\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out << ",";
    JsonAppendPhase(out, phases[i]);
  }
  out << "],\"total\":";
  JsonAppendPhase(out, total);
  out << ",\"passed\":" << (AllPassed() ? "true" : "false") << "}";
  return out.str();
}

std::string RunReport::Summary() const {
  std::ostringstream out;
  out << "pack " << pack_name << " [" << engine << ", seed " << seed
      << "] digest " << HexDigest(answers_digest) << "\n";
  auto line = [&out](const PhaseReport& phase, const std::string& label) {
    const PhaseMetrics& m = phase.metrics;
    out << "  " << label << ": " << m.attempts << " offered, " << m.served
        << " served (" << m.shed << " shed), " << m.rejected << " rejected, "
        << m.failed << " failed, paid " << m.paid << ", mape "
        << util::FormatDouble(m.Mape(), 4) << ", degraded "
        << util::FormatDouble(m.DegradedFraction(), 4);
    if (phase.checked) {
      out << (phase.Passed() ? "  [envelope OK]" : "  [envelope FAILED]");
      for (const std::string& failure : phase.failures) {
        out << "\n      " << failure;
      }
    }
    out << "\n";
  };
  for (const PhaseReport& phase : phases) line(phase, phase.name);
  line(total, "TOTAL");
  out << (AllPassed() ? "PASS" : "FAIL") << "\n";
  return out.str();
}

int PackHaloRadius(const Pack& pack) {
  if (pack.halo > 0) return pack.halo;
  const int c = pack.hop_radius;
  const int h = pack.gsp_hop_limit;
  return std::max({2, 2 * c, c + h + 1});
}

util::Result<partition::Partition> BuildPackPartition(
    const Pack& pack, const MapFixture& fixture, int num_shards,
    uint64_t seed) {
  partition::PartitionerOptions options;
  options.num_shards = num_shards;
  options.halo_radius = PackHaloRadius(pack);
  options.seed = seed;
  return partition::PartitionByGeography(fixture.graph, fixture.positions,
                                         options);
}

std::vector<crowd::Worker> BuildWorkerPopulation(const Pack& pack,
                                                 const MapFixture& fixture,
                                                 uint64_t seed) {
  util::Rng rng(seed ^ kWorkerSalt);
  std::vector<crowd::Worker> workers;
  workers.reserve(static_cast<size_t>(fixture.graph.num_roads()) *
                  static_cast<size_t>(pack.workers_per_road));
  crowd::WorkerId next_id = 0;
  for (int road = 0; road < fixture.graph.num_roads(); ++road) {
    for (int k = 0; k < pack.workers_per_road; ++k) {
      crowd::Worker worker;
      worker.id = next_id++;
      worker.road = road;
      if (pack.noiseless) {
        worker.bias = 1.0;
        worker.noise_kmh = 0.0;
      } else {
        worker.bias = rng.UniformDouble(pack.min_bias, pack.max_bias);
        worker.noise_kmh =
            rng.UniformDouble(pack.min_noise_kmh, pack.max_noise_kmh);
      }
      workers.push_back(worker);
    }
  }
  return workers;
}

util::Result<RunReport> RunScenario(const Pack& pack,
                                    const RunnerOptions& options) {
  // A fresh recorder window per replay: the envelope-failure dump below
  // must cover exactly this run's events, nothing from a prior replay in
  // the same process. Clear() requires quiescence — see RunnerOptions.
  if (!options.flight_dump_path.empty()) {
    obs::FlightRecorder::Global().Clear();
  }
  const uint64_t seed = options.seed != 0 ? options.seed : pack.seed;
  const bool sharded = options.engine == RunnerOptions::EngineKind::kSharded;

  if (!pack.fault_tolerant) {
    for (const Event& event : pack.timeline) {
      if (event.kind == Event::Kind::kFaults ||
          event.kind == Event::Kind::kLiars) {
        return util::Status::FailedPrecondition(
            "faults/liars events need [engine] fault_tolerant=true (the "
            "legacy dispatch path never consults the fault plan)");
      }
    }
  }

  auto fixture = BuildFixture(pack);
  if (!fixture.ok()) return fixture.status();
  auto world = BuildScenarioWorld(*fixture, pack.world, seed);
  if (!world.ok()) return world.status();

  core::CrowdRtseConfig config;
  config.correlation_hop_radius = pack.hop_radius;
  config.prune_zero_gain_candidates = pack.prune_zero_gain;
  config.theta = pack.theta;
  config.gsp.hop_limit = pack.gsp_hop_limit;
  config.gsp.num_threads = 1;  // replay determinism: sequential sweeps

  const crowd::CostModel costs =
      crowd::CostModel::Constant(fixture->graph.num_roads(),
                                 pack.cost_per_road);
  std::vector<crowd::Worker> workers =
      BuildWorkerPopulation(pack, *fixture, seed);

  util::SimClock clock;
  server::QueryEngine::Options engine_options;
  engine_options.propagator_pool_size = 1;
  engine_options.fault_tolerant_dispatch = pack.fault_tolerant;
  engine_options.dispatch.deadline_ms = pack.deadline_ms;
  engine_options.dispatch.max_attempts = pack.max_attempts;
  engine_options.dispatch.mad_sigmas = pack.mad_sigmas;
  engine_options.dispatch.seed = seed ^ kDispatchSalt;
  engine_options.clock = &clock;

  crowd::CrowdSimOptions crowd_options;
  crowd_options.outlier_rate = 0.0;
  if (pack.noiseless) {
    crowd_options.min_bias = crowd_options.max_bias = 1.0;
    crowd_options.min_noise_kmh = crowd_options.max_noise_kmh = 0.0;
  } else {
    crowd_options.min_bias = pack.min_bias;
    crowd_options.max_bias = pack.max_bias;
    crowd_options.min_noise_kmh = pack.min_noise_kmh;
    crowd_options.max_noise_kmh = pack.max_noise_kmh;
  }

  server::BudgetLedger ledger(pack.campaign_budget, pack.per_query_cap);

  // Both engine stacks are declared up front so whichever is built lives
  // until the end of this frame (everything borrows by reference).
  std::optional<core::CrowdRtse> system;
  std::optional<server::WorkerRegistry> registry;
  std::optional<crowd::CrowdSimulator> crowd_sim;
  std::unique_ptr<server::QueryEngine> single;
  std::unique_ptr<server::ShardedEngine> sharded_engine;
  server::Engine* engine = nullptr;

  if (!sharded) {
    auto built =
        core::CrowdRtse::BuildOffline(fixture->graph, world->history, config);
    if (!built.ok()) return built.status();
    system.emplace(std::move(*built));
    server::WorkerRegistryOptions registry_options;
    registry.emplace(fixture->graph, workers, registry_options, seed);
    crowd_sim.emplace(crowd_options, util::Rng(seed ^ kCrowdSalt));
    single = std::make_unique<server::QueryEngine>(
        *system, *registry, ledger, costs, *crowd_sim, engine_options);
    engine = single.get();
  } else {
    const int num_shards = options.shards > 0 ? options.shards : pack.shards;
    auto partition = BuildPackPartition(pack, *fixture, num_shards, seed);
    if (!partition.ok()) return partition.status();
    server::ShardedEngineOptions sharded_options;
    sharded_options.engine = engine_options;
    sharded_options.crowd = crowd_options;
    sharded_options.crowd_seed = seed ^ kCrowdSalt;
    sharded_options.fanout_threads = 1;  // replay determinism
    auto built = server::ShardedEngine::Create(
        fixture->graph, *partition, world->history, config, costs, workers,
        ledger, world->truth, sharded_options);
    if (!built.ok()) return built.status();
    sharded_engine = std::move(*built);
    engine = sharded_engine.get();
  }

  util::Rng timeline_rng(seed ^ kTimelineSalt);
  RunReport report;
  report.pack_name = pack.name;
  report.engine = EngineKindName(options.engine);
  report.seed = seed;

  RunState state{pack,    *fixture, *world, ledger,
                 workers, timeline_rng,     report};
  state.engine = engine;
  state.single = single.get();
  state.sharded = sharded_engine.get();
  state.registry = registry.has_value() ? &*registry : nullptr;
  state.max_round_span_ms =
      pack.fault_tolerant ? engine_options.dispatch.MaxRoundSpanMs() : 0.0;
  state.keep_responses = options.keep_responses;
  state.next_worker_id = static_cast<crowd::WorkerId>(workers.size());
  state.fault_plan.set_seed(pack.seed ^ kFaultSalt);
  PushFaultPlan(state);

  OpenPhase(state, "preamble");
  for (const Event& event : pack.timeline) {
    util::Status status = util::Status::Ok();
    switch (event.kind) {
      case Event::Kind::kPhase:
        ClosePhase(state);
        OpenPhase(state, event.name);
        break;
      case Event::Kind::kStorm:
        status = RunStorm(state, event);
        break;
      case Event::Kind::kIncident:
        status = RunIncident(state, event);
        break;
      case Event::Kind::kDrift:
        RunDrift(state, event);
        PushWorkers(state);
        break;
      case Event::Kind::kWorkers:
        status = RunWorkerChurn(state, event);
        if (status.ok()) PushWorkers(state);
        break;
      case Event::Kind::kFaults:
        status = RunFaultSwap(state, event);
        break;
      case Event::Kind::kLiars:
        status = RunLiarCohort(state, event);
        break;
    }
    if (!status.ok()) return status;
  }
  ClosePhase(state);

  report.total.name = "";
  report.total.metrics = state.total_accum;
  const StatsBase final_stats = SnapshotStats(*engine);
  report.total.metrics.served = final_stats.served;
  report.total.metrics.rejected = final_stats.rejected;
  report.total.metrics.failed = final_stats.failed;
  report.total.metrics.shed = final_stats.shed;
  report.total.metrics.paid = final_stats.paid;
  report.total.metrics.outlier_reports = final_stats.outliers;
  report.total.metrics.reserved_outstanding = ledger.reserved_outstanding();
  report.total.metrics.max_round_span_ms = state.max_round_span_ms;
  if (const EnvelopeSpec* spec = pack.EnvelopeFor("")) {
    report.total.checked = true;
    report.total.failures = EvaluateEnvelope(*spec, report.total.metrics);
  }
  report.answers_digest = state.digest;

  engine->Drain();
  if (!options.flight_dump_path.empty() && !report.AllPassed()) {
    // The engine is drained: every event of the failing replay is in the
    // rings and no writer races the snapshot. The dump is a debugging
    // artifact beside the report, never part of it (sequence numbers are
    // not replay-stable).
    const std::string dump = obs::FlightRecorder::Global().DumpJson();
    std::FILE* file = std::fopen(options.flight_dump_path.c_str(), "wb");
    if (file == nullptr) {
      CROWDRTSE_LOG(Warning, "cannot open flight dump path: " +
                                 options.flight_dump_path);
    } else {
      const size_t written =
          std::fwrite(dump.data(), 1, dump.size(), file);
      if (std::fclose(file) != 0 || written != dump.size()) {
        CROWDRTSE_LOG(Warning, "short write to flight dump: " +
                                   options.flight_dump_path);
      } else {
        CROWDRTSE_LOG(Info, "envelope failure: flight recorder dumped to " +
                                options.flight_dump_path);
      }
    }
  }
  return report;
}

}  // namespace crowdrtse::scenario
