#ifndef CROWDRTSE_SCENARIO_ENVELOPE_H_
#define CROWDRTSE_SCENARIO_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/pack.h"

namespace crowdrtse::scenario {

/// Everything one phase (or the whole run) measured — the facts an
/// EnvelopeSpec's bounds are checked against. The runner fills one of
/// these per phase from engine-stat deltas and per-response accumulation.
struct PhaseMetrics {
  /// Queries the runner offered to the engine in this phase. The sum of
  /// the three outcome counters must equal it (zero_silent_drops).
  int64_t attempts = 0;
  int64_t served = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  /// Queries answered from the periodic fallback (subset of served).
  int64_t shed = 0;
  int64_t paid = 0;
  int64_t outlier_reports = 0;

  /// Road-level accumulation over the phase's successful responses.
  int64_t roads_queried = 0;
  int64_t roads_probed = 0;
  int64_t roads_underfilled = 0;
  int64_t roads_degraded = 0;

  /// Accuracy against ground truth: sum of absolute percentage errors and
  /// the number of cases (roads with positive truth) behind it.
  double ape_sum = 0.0;
  int64_t ape_cases = 0;

  /// Largest dispatch_span_ms observed (SimClock-driven, deterministic).
  double max_span_ms = 0.0;
  /// The DispatchOptions bound spans are checked against; <= 0 means the
  /// pack ran the legacy non-fault-tolerant path (spans are all zero).
  double max_round_span_ms = 0.0;

  /// Ledger reservations still open when the phase closed (sequential
  /// serving means this should always be zero at a boundary).
  int64_t reserved_outstanding = 0;

  double Mape() const {
    return ape_cases > 0 ? ape_sum / static_cast<double>(ape_cases) : 0.0;
  }
  double DegradedFraction() const {
    return roads_queried > 0
               ? static_cast<double>(roads_degraded) /
                     static_cast<double>(roads_queried)
               : 0.0;
  }
  double UnderfilledFraction() const {
    return roads_queried > 0
               ? static_cast<double>(roads_underfilled) /
                     static_cast<double>(roads_queried)
               : 0.0;
  }
};

/// Checks `metrics` against `spec`. Returns one human-readable violation
/// per failed bound ("max_mape: 0.3124 > 0.2500"); empty means the
/// envelope passed.
std::vector<std::string> EvaluateEnvelope(const EnvelopeSpec& spec,
                                          const PhaseMetrics& metrics);

}  // namespace crowdrtse::scenario

#endif  // CROWDRTSE_SCENARIO_ENVELOPE_H_
