#ifndef CROWDRTSE_SCENARIO_RUNNER_H_
#define CROWDRTSE_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crowd/worker.h"
#include "partition/partition.h"
#include "scenario/envelope.h"
#include "scenario/pack.h"
#include "server/engine.h"
#include "util/status.h"

namespace crowdrtse::scenario {

/// How to replay a pack.
struct RunnerOptions {
  enum class EngineKind { kSingle, kSharded };
  EngineKind engine = EngineKind::kSingle;
  /// Shard count for kSharded; 0 takes the pack's [sharding] value.
  int shards = 0;
  /// Replay seed; 0 takes the pack's [scenario] seed. Every stochastic
  /// choice of the run — world generation, worker population, storm
  /// composition, churn, fault decisions — derives from it, so one
  /// (pack, seed, engine) triple always produces byte-identical reports.
  uint64_t seed = 0;
  /// Keep every request/response pair in the report (equality tests).
  bool keep_responses = false;
  /// When non-empty and the replay misses any envelope, the global flight
  /// recorder (obs/flight_recorder.h) is dumped to this path — the
  /// sequence-ordered event log of the exact failing run. The recorder is
  /// cleared at run start so the dump covers only this replay; callers
  /// must not run scenarios concurrently when set (Clear() requires
  /// quiescence). The dump never enters the deterministic report JSON:
  /// sequence numbers and thread registration order are not replay-stable.
  std::string flight_dump_path;
};

const char* EngineKindName(RunnerOptions::EngineKind kind);

/// One replayed query, kept only under RunnerOptions::keep_responses.
struct QueryRecord {
  server::QueryRequest request;
  bool ok = false;
  bool shed = false;  // answered via the periodic fallback (budget dry)
  server::QueryResponse response;  // valid when ok
};

/// One phase's outcome: measured facts plus the envelope verdict.
struct PhaseReport {
  std::string name;
  PhaseMetrics metrics;
  /// True when the pack declared an envelope for this phase.
  bool checked = false;
  std::vector<std::string> failures;
  bool Passed() const { return failures.empty(); }
};

/// The whole replay: per-phase reports, run totals, and a digest of every
/// response's bit pattern (speeds, probe sets, payments, SimClock spans —
/// never wall-clock latencies), so two runs can be compared for exact
/// replay equality with one integer.
struct RunReport {
  std::string pack_name;
  std::string engine;
  uint64_t seed = 0;
  std::vector<PhaseReport> phases;
  PhaseReport total;  // name "", checked against the pack's [envelope]
  uint64_t answers_digest = 0;
  std::vector<QueryRecord> records;  // only under keep_responses

  bool AllPassed() const;
  /// Deterministic JSON: identical bytes for identical replays (excludes
  /// every wall-clock measurement). The scenario-smoke CI job diffs this.
  std::string ToJson() const;
  /// Human-readable multi-line summary.
  std::string Summary() const;
};

/// The halo radius a sharded replay of `pack` uses: the pack's explicit
/// [sharding] halo, or the locality bound max(2C, C+H+1) when 0.
int PackHaloRadius(const Pack& pack);

/// Deterministic geographic partition of the pack's fixture.
util::Result<partition::Partition> BuildPackPartition(
    const Pack& pack, const MapFixture& fixture, int num_shards,
    uint64_t seed);

/// The canonical worker population: workers_per_road workers on every
/// road, ids dense in road order, bias/noise per the pack's [workers]
/// block. The runner owns this vector and pushes copies into whichever
/// engine serves, so both engine kinds see byte-identical crowds.
std::vector<crowd::Worker> BuildWorkerPopulation(const Pack& pack,
                                                 const MapFixture& fixture,
                                                 uint64_t seed);

/// Replays `pack` end to end against a freshly built engine and returns
/// the report. Free function rather than a class on purpose: the engine
/// stack borrows raw references up and down (CrowdRtse keeps pointers to
/// the graph and history), so everything lives on this call's stack and
/// nothing can dangle.
util::Result<RunReport> RunScenario(const Pack& pack,
                                    const RunnerOptions& options);

}  // namespace crowdrtse::scenario

#endif  // CROWDRTSE_SCENARIO_RUNNER_H_
