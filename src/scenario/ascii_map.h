#ifndef CROWDRTSE_SCENARIO_ASCII_MAP_H_
#define CROWDRTSE_SCENARIO_ASCII_MAP_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/road_geometry.h"
#include "util/status.h"

namespace crowdrtse::scenario {

/// Speed class of a road in a scenario map. Classes are shorthand for the
/// (base speed, rush dip, day-to-day noise) triple a road's ground-truth
/// profile is built from; any component can be overridden per road via
/// tags (DESIGN.md §9).
enum class SpeedClass {
  kHighway,   // 95 km/h base, shallow rush dip
  kArterial,  // 65 km/h base, deep rush dip
  kLocal,     // 45 km/h base, medium dip
  kSlow,      // 28 km/h base, shallow dip
};

const char* SpeedClassName(SpeedClass c);
util::Result<SpeedClass> ParseSpeedClass(const std::string& name);

/// Ground-truth profile of one road in a compiled map: what the scenario
/// world builder turns into the historical record and the live day.
struct RoadProfile {
  SpeedClass speed_class = SpeedClass::kArterial;
  double base_kmh = 65.0;     // free-flow speed
  double morning_dip = 0.40;  // fractional rush-hour dip
  double evening_dip = 0.40;
  double noise_kmh = 3.0;     // day-to-day sigma (periodicity intensity)
  double length_km = 0.5;     // physical length (geometry only)
};

/// One tag line attached to a map: `selector` is either a single road
/// letter ("B") or an edge name ("A-B"); `tags` are its key=value pairs.
/// Road tags override edge tags, which override class defaults.
struct TagLine {
  std::string selector;
  std::map<std::string, std::string> tags;
};

/// What an ascii sketch compiles into: the road network (roads are the
/// sketch's letters — vertices of the paper's graph model G = (R, E)),
/// deterministic unit-square geometry, physical lengths, and a per-road
/// ground-truth profile.
struct MapFixture {
  graph::Graph graph;
  /// Road (x, y) in the unit square, derived from the sketch grid: the
  /// partitioner's geographic-bisection input.
  std::vector<std::pair<double, double>> positions;
  graph::RoadGeometry lengths;
  std::vector<RoadProfile> profiles;
  /// Road names in id order (single characters for sketch maps, synthetic
  /// "r<i>" names for generator maps).
  std::vector<std::string> names;

  /// Road id of `name`, or graph::kInvalidRoad when unknown.
  graph::RoadId RoadByName(const std::string& name) const;
};

/// Compiles a gurka-style ascii sketch into a MapFixture.
///
/// Grammar (DESIGN.md §9): alphanumeric characters are roads; a horizontal
/// run of `-` (or direct horizontal adjacency) joins two roads, a vertical
/// run of `|` joins two roads across rows. Every `-`/`|` must lie on a
/// completed run between two roads — a run hitting a border, a blank, or a
/// perpendicular connector is a dangling edge and rejects. A road letter
/// may appear only once. Edges are numbered in discovery order: letters
/// scanned row-major, east run before south run — so fixtures can pin
/// exact edge lists.
///
/// `tags` attaches length/speed-class/profile attributes: an edge selector
/// "A-B" (either endpoint order) applies to both endpoint roads, a road
/// selector "A" to that road alone, with road tags taking precedence.
/// Keys: class=<highway|arterial|local|slow>, base=<kmh>, dip=<frac>,
/// morning_dip=<frac>, evening_dip=<frac>, noise=<kmh>, len=<km>.
util::Result<MapFixture> CompileAsciiMap(const std::string& sketch,
                                         const std::vector<TagLine>& tags = {});

}  // namespace crowdrtse::scenario

#endif  // CROWDRTSE_SCENARIO_ASCII_MAP_H_
