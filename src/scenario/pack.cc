#include "scenario/pack.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "util/string_util.h"

namespace crowdrtse::scenario {

namespace {

std::vector<std::string> SplitWhitespace(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

util::Result<bool> ParseBool(const std::string& text) {
  if (text == "true" || text == "on" || text == "1") return true;
  if (text == "false" || text == "off" || text == "0") return false;
  return util::Status::InvalidArgument("expected a boolean, got '" + text +
                                       "'");
}

util::Status ParseError(int line, const std::string& message) {
  return util::Status::InvalidArgument("pack line " + std::to_string(line) +
                                       ": " + message);
}

/// Splits "key=value" (first '='). Returns false when no '=' is present.
bool SplitKeyValue(const std::string& token, std::string& key,
                   std::string& value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = util::Trim(token.substr(0, eq));
  value = util::Trim(token.substr(eq + 1));
  return !key.empty();
}

util::Result<RoadsSpec> ParseRoadsSpec(const std::string& text) {
  RoadsSpec spec;
  if (text == "all") {
    spec.kind = RoadsSpec::Kind::kAll;
    return spec;
  }
  if (util::StartsWith(text, "list:")) {
    spec.kind = RoadsSpec::Kind::kList;
    for (const std::string& piece : util::Split(text.substr(5), ',')) {
      const std::string name = util::Trim(piece);
      if (!name.empty()) spec.names.push_back(name);
    }
    if (spec.names.empty()) {
      return util::Status::InvalidArgument("empty road list");
    }
    return spec;
  }
  if (util::StartsWith(text, "district:")) {
    spec.kind = RoadsSpec::Kind::kDistrict;
    const std::vector<std::string> parts = util::Split(text, ':');
    if (parts.size() != 3) {
      return util::Status::InvalidArgument(
          "district spec must be district:<center>:<hops>");
    }
    spec.center = util::Trim(parts[1]);
    auto hops = util::ParseInt(util::Trim(parts[2]));
    if (!hops.ok() || *hops < 0) {
      return util::Status::InvalidArgument("bad district hop count");
    }
    spec.hops = *hops;
    if (spec.center.empty()) {
      return util::Status::InvalidArgument("district needs a center road");
    }
    return spec;
  }
  return util::Status::InvalidArgument(
      "roads must be 'all', 'list:A,B,...', or 'district:<center>:<hops>'");
}

util::Result<Event::Kind> ParseEventKind(const std::string& text) {
  if (text == "phase") return Event::Kind::kPhase;
  if (text == "storm") return Event::Kind::kStorm;
  if (text == "incident") return Event::Kind::kIncident;
  if (text == "drift") return Event::Kind::kDrift;
  if (text == "workers") return Event::Kind::kWorkers;
  if (text == "faults") return Event::Kind::kFaults;
  if (text == "liars") return Event::Kind::kLiars;
  return util::Status::InvalidArgument("unknown event kind '" + text + "'");
}

util::Status ApplyEventKey(Event& event, const std::string& key,
                           const std::string& value) {
  auto as_int = [&]() { return util::ParseInt(value); };
  auto as_double = [&]() { return util::ParseDouble(value); };
  switch (event.kind) {
    case Event::Kind::kPhase:
      if (key == "name") {
        event.name = value;
        return util::Status::Ok();
      }
      break;
    case Event::Kind::kStorm:
      if (key == "queries") {
        auto v = as_int();
        if (!v.ok() || *v <= 0) break;
        event.queries = *v;
        return util::Status::Ok();
      }
      if (key == "rate") {
        auto v = as_double();
        if (!v.ok() || *v <= 0.0) break;
        event.rate = *v;
        return util::Status::Ok();
      }
      if (key == "size") {
        auto v = as_int();
        if (!v.ok() || *v <= 0) break;
        event.size = *v;
        return util::Status::Ok();
      }
      if (key == "budget") {
        auto v = as_int();
        if (!v.ok() || *v < 0) break;
        event.budget = *v;
        return util::Status::Ok();
      }
      if (key == "roads") {
        auto spec = ParseRoadsSpec(value);
        if (!spec.ok()) return spec.status();
        event.roads = *spec;
        return util::Status::Ok();
      }
      break;
    case Event::Kind::kIncident:
      if (key == "road") {
        event.road = value;
        return util::Status::Ok();
      }
      if (key == "drop") {
        auto v = as_double();
        if (!v.ok() || *v <= 0.0 || *v >= 1.0) break;
        event.drop = *v;
        return util::Status::Ok();
      }
      if (key == "duration") {
        auto v = as_int();
        if (!v.ok() || *v <= 0) break;
        event.duration = *v;
        return util::Status::Ok();
      }
      if (key == "spillover") {
        auto v = as_int();
        if (!v.ok() || *v < 0) break;
        event.spillover = *v;
        return util::Status::Ok();
      }
      break;
    case Event::Kind::kDrift:
      if (key == "p") {
        auto v = as_double();
        if (!v.ok() || *v < 0.0 || *v > 1.0) break;
        event.probability = *v;
        return util::Status::Ok();
      }
      break;
    case Event::Kind::kWorkers:
      if (key == "leave") {
        auto v = as_double();
        if (!v.ok() || *v < 0.0 || *v > 1.0) break;
        event.leave = *v;
        return util::Status::Ok();
      }
      if (key == "add") {
        auto v = as_int();
        if (!v.ok() || *v < 0) break;
        event.add = *v;
        return util::Status::Ok();
      }
      if (key == "roads") {
        auto spec = ParseRoadsSpec(value);
        if (!spec.ok()) return spec.status();
        event.roads = *spec;
        return util::Status::Ok();
      }
      break;
    case Event::Kind::kFaults: {
      if (key == "clear") {
        auto v = ParseBool(value);
        if (!v.ok()) return v.status();
        event.clear = *v;
        return util::Status::Ok();
      }
      if (key == "roads") {
        auto spec = ParseRoadsSpec(value);
        if (!spec.ok()) return spec.status();
        event.roads = *spec;
        return util::Status::Ok();
      }
      double* rate = nullptr;
      if (key == "drop") rate = &event.fault.drop_rate;
      if (key == "delay") rate = &event.fault.delay_rate;
      if (key == "duplicate") rate = &event.fault.duplicate_rate;
      if (key == "corrupt") rate = &event.fault.corrupt_rate;
      if (rate != nullptr) {
        auto v = as_double();
        if (!v.ok() || *v < 0.0 || *v > 1.0) break;
        *rate = *v;
        return util::Status::Ok();
      }
      double* field = nullptr;
      if (key == "delay_min_ms") field = &event.fault.delay_min_ms;
      if (key == "delay_max_ms") field = &event.fault.delay_max_ms;
      if (key == "corrupt_min") field = &event.fault.corrupt_min_kmh;
      if (key == "corrupt_max") field = &event.fault.corrupt_max_kmh;
      if (field != nullptr) {
        auto v = as_double();
        if (!v.ok() || *v < 0.0) break;
        *field = *v;
        return util::Status::Ok();
      }
      break;
    }
    case Event::Kind::kLiars:
      if (key == "road") {
        event.road = value;
        return util::Status::Ok();
      }
      if (key == "cohort") {
        auto v = as_int();
        if (!v.ok() || *v <= 0) break;
        event.cohort = *v;
        return util::Status::Ok();
      }
      if (key == "value") {
        auto v = as_double();
        if (!v.ok() || *v <= 0.0) break;
        event.value = *v;
        return util::Status::Ok();
      }
      break;
  }
  return util::Status::InvalidArgument("bad event key '" + key + "=" + value +
                                       "'");
}

util::Status ApplyScenarioKey(Pack& pack, const std::string& key,
                              const std::string& value) {
  if (key == "name") {
    pack.name = value;
    return util::Status::Ok();
  }
  if (key == "description") {
    pack.description = value;
    return util::Status::Ok();
  }
  if (key == "seed") {
    auto v = util::ParseInt(value);
    if (!v.ok() || *v < 0) {
      return util::Status::InvalidArgument("bad seed");
    }
    pack.seed = static_cast<uint64_t>(*v);
    return util::Status::Ok();
  }
  if (key == "slots_per_day") {
    auto v = util::ParseInt(value);
    if (!v.ok()) return v.status();
    pack.world.slots_per_day = *v;
    return util::Status::Ok();
  }
  if (key == "history_days") {
    auto v = util::ParseInt(value);
    if (!v.ok()) return v.status();
    pack.world.history_days = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [scenario] key '" + key + "'");
}

util::Status ApplyGeneratorKey(Pack& pack, const std::string& key,
                               const std::string& value) {
  if (key == "kind") {
    if (value != "grid" && value != "metro") {
      return util::Status::InvalidArgument(
          "generator kind must be 'grid' or 'metro'");
    }
    pack.generator.kind = value;
    return util::Status::Ok();
  }
  auto v = util::ParseInt(value);
  if (!v.ok() || *v <= 0) {
    return util::Status::InvalidArgument("bad [generator] value for '" + key +
                                         "'");
  }
  if (key == "rows") {
    pack.generator.rows = *v;
    return util::Status::Ok();
  }
  if (key == "cols") {
    pack.generator.cols = *v;
    return util::Status::Ok();
  }
  if (key == "roads") {
    pack.generator.roads = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [generator] key '" + key +
                                       "'");
}

util::Status ApplyWorldKey(Pack& pack, const std::string& key,
                           const std::string& value) {
  auto v = util::ParseDouble(value);
  if (!v.ok()) return v.status();
  if (key == "temporal_persistence") {
    pack.world.temporal_persistence = *v;
    return util::Status::Ok();
  }
  if (key == "spatial_mix") {
    pack.world.spatial_mix = *v;
    return util::Status::Ok();
  }
  if (key == "min_speed") {
    pack.world.min_speed = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [world] key '" + key + "'");
}

util::Status ApplyWorkersKey(Pack& pack, const std::string& key,
                             const std::string& value) {
  if (key == "per_road") {
    auto v = util::ParseInt(value);
    if (!v.ok() || *v <= 0) {
      return util::Status::InvalidArgument("per_road must be positive");
    }
    pack.workers_per_road = *v;
    return util::Status::Ok();
  }
  if (key == "noiseless") {
    auto v = ParseBool(value);
    if (!v.ok()) return v.status();
    pack.noiseless = *v;
    return util::Status::Ok();
  }
  auto v = util::ParseDouble(value);
  if (!v.ok()) return v.status();
  if (key == "min_bias") {
    pack.min_bias = *v;
    return util::Status::Ok();
  }
  if (key == "max_bias") {
    pack.max_bias = *v;
    return util::Status::Ok();
  }
  if (key == "min_noise") {
    pack.min_noise_kmh = *v;
    return util::Status::Ok();
  }
  if (key == "max_noise") {
    pack.max_noise_kmh = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [workers] key '" + key + "'");
}

util::Status ApplyEngineKey(Pack& pack, const std::string& key,
                            const std::string& value) {
  if (key == "fault_tolerant" || key == "prune_zero_gain" ||
      key == "shed_when_dry") {
    auto v = ParseBool(value);
    if (!v.ok()) return v.status();
    if (key == "fault_tolerant") pack.fault_tolerant = *v;
    if (key == "prune_zero_gain") pack.prune_zero_gain = *v;
    if (key == "shed_when_dry") pack.shed_when_dry = *v;
    return util::Status::Ok();
  }
  if (key == "theta" || key == "mad_sigmas" || key == "deadline_ms") {
    auto v = util::ParseDouble(value);
    if (!v.ok() || *v <= 0.0) {
      return util::Status::InvalidArgument("'" + key + "' must be positive");
    }
    if (key == "theta") pack.theta = *v;
    if (key == "mad_sigmas") pack.mad_sigmas = *v;
    if (key == "deadline_ms") pack.deadline_ms = *v;
    return util::Status::Ok();
  }
  auto v = util::ParseInt(value);
  if (!v.ok()) return v.status();
  if (key == "campaign_budget") {
    pack.campaign_budget = *v;
    return util::Status::Ok();
  }
  if (key == "per_query_cap") {
    pack.per_query_cap = *v;
    return util::Status::Ok();
  }
  if (key == "cost_per_road") {
    pack.cost_per_road = *v;
    return util::Status::Ok();
  }
  if (key == "hop_radius") {
    pack.hop_radius = *v;
    return util::Status::Ok();
  }
  if (key == "gsp_hop_limit") {
    pack.gsp_hop_limit = *v;
    return util::Status::Ok();
  }
  if (key == "max_attempts") {
    pack.max_attempts = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [engine] key '" + key + "'");
}

util::Status ApplyShardingKey(Pack& pack, const std::string& key,
                              const std::string& value) {
  auto v = util::ParseInt(value);
  if (!v.ok() || *v < 0) {
    return util::Status::InvalidArgument("bad [sharding] value for '" + key +
                                         "'");
  }
  if (key == "shards") {
    if (*v < 1) {
      return util::Status::InvalidArgument("shards must be >= 1");
    }
    pack.shards = *v;
    return util::Status::Ok();
  }
  if (key == "halo") {
    pack.halo = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown [sharding] key '" + key + "'");
}

util::Status ApplyEnvelopeKey(EnvelopeSpec& envelope, const std::string& key,
                              const std::string& value) {
  if (key == "zero_silent_drops" || key == "reservations_settled" ||
      key == "span_bounded") {
    auto v = ParseBool(value);
    if (!v.ok()) return v.status();
    if (key == "zero_silent_drops") envelope.zero_silent_drops = *v;
    if (key == "reservations_settled") envelope.reservations_settled = *v;
    if (key == "span_bounded") envelope.span_bounded = *v;
    return util::Status::Ok();
  }
  if (key == "max_mape" || key == "max_degraded_fraction" ||
      key == "min_degraded_fraction" || key == "max_underfilled_fraction") {
    auto v = util::ParseDouble(value);
    if (!v.ok() || *v < 0.0) {
      return util::Status::InvalidArgument("'" + key + "' must be >= 0");
    }
    if (key == "max_mape") envelope.max_mape = *v;
    if (key == "max_degraded_fraction") envelope.max_degraded_fraction = *v;
    if (key == "min_degraded_fraction") envelope.min_degraded_fraction = *v;
    if (key == "max_underfilled_fraction") {
      envelope.max_underfilled_fraction = *v;
    }
    return util::Status::Ok();
  }
  auto v = util::ParseInt(value);
  if (!v.ok() || *v < 0) {
    return util::Status::InvalidArgument("'" + key + "' must be >= 0");
  }
  if (key == "min_served") {
    envelope.min_served = *v;
    return util::Status::Ok();
  }
  if (key == "max_failed") {
    envelope.max_failed = *v;
    return util::Status::Ok();
  }
  if (key == "max_rejected") {
    envelope.max_rejected = *v;
    return util::Status::Ok();
  }
  if (key == "min_rejected") {
    envelope.min_rejected = *v;
    return util::Status::Ok();
  }
  if (key == "max_shed") {
    envelope.max_shed = *v;
    return util::Status::Ok();
  }
  if (key == "min_shed") {
    envelope.min_shed = *v;
    return util::Status::Ok();
  }
  if (key == "min_outlier_reports") {
    envelope.min_outlier_reports = *v;
    return util::Status::Ok();
  }
  if (key == "max_paid") {
    envelope.max_paid = *v;
    return util::Status::Ok();
  }
  if (key == "min_paid") {
    envelope.min_paid = *v;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown envelope key '" + key + "'");
}

util::Status ValidatePack(const Pack& pack) {
  const bool has_sketch = !pack.sketch.empty();
  const bool has_generator = !pack.generator.kind.empty();
  if (has_sketch == has_generator) {
    return util::Status::InvalidArgument(
        "a pack needs exactly one of [map] or [generator]");
  }
  if (pack.name.empty()) {
    return util::Status::InvalidArgument("[scenario] name is required");
  }
  int prev_at = 0;
  std::set<std::string> phases;
  for (const Event& event : pack.timeline) {
    if (event.at < 0 || event.at >= pack.world.slots_per_day) {
      return util::Status::OutOfRange(
          "event at=" + std::to_string(event.at) +
          " falls outside the scenario day (slots_per_day=" +
          std::to_string(pack.world.slots_per_day) + ")");
    }
    if (event.at < prev_at) {
      return util::Status::InvalidArgument(
          "timeline events must be non-decreasing in 'at'");
    }
    prev_at = event.at;
    switch (event.kind) {
      case Event::Kind::kPhase:
        if (event.name.empty()) {
          return util::Status::InvalidArgument("phase events need name=");
        }
        if (!phases.insert(event.name).second) {
          return util::Status::InvalidArgument("duplicate phase '" +
                                               event.name + "'");
        }
        break;
      case Event::Kind::kStorm:
        if (event.queries <= 0 && event.rate <= 0.0) {
          return util::Status::InvalidArgument(
              "storm events need queries= or rate=");
        }
        break;
      case Event::Kind::kIncident:
      case Event::Kind::kLiars:
        if (event.road.empty()) {
          return util::Status::InvalidArgument("event needs road=");
        }
        if (event.kind == Event::Kind::kLiars && event.cohort <= 0) {
          return util::Status::InvalidArgument("liars events need cohort=");
        }
        break;
      case Event::Kind::kWorkers:
        if (event.leave <= 0.0 && event.add <= 0) {
          return util::Status::InvalidArgument(
              "workers events need leave= or add=");
        }
        break;
      case Event::Kind::kDrift:
      case Event::Kind::kFaults:
        break;
    }
  }
  std::set<std::string> envelope_phases;
  for (const EnvelopeSpec& envelope : pack.envelopes) {
    if (!envelope_phases.insert(envelope.phase).second) {
      return util::Status::InvalidArgument(
          "duplicate envelope block for phase '" + envelope.phase + "'");
    }
    if (!envelope.phase.empty() && phases.count(envelope.phase) == 0) {
      return util::Status::InvalidArgument("[envelope:" + envelope.phase +
                                           "] names no timeline phase");
    }
  }
  return util::Status::Ok();
}

}  // namespace

int Pack::LastEventSlot() const {
  int last = 0;
  for (const Event& event : timeline) last = std::max(last, event.at);
  return last;
}

const EnvelopeSpec* Pack::EnvelopeFor(const std::string& phase) const {
  for (const EnvelopeSpec& envelope : envelopes) {
    if (envelope.phase == phase) return &envelope;
  }
  return nullptr;
}

util::Result<Pack> ParsePack(const std::string& text) {
  Pack pack;
  enum class Section {
    kNone,
    kScenario,
    kMap,
    kTags,
    kGenerator,
    kWorld,
    kWorkers,
    kEngine,
    kSharding,
    kTimeline,
    kEnvelope,
  };
  Section section = Section::kNone;
  EnvelopeSpec* envelope = nullptr;
  std::vector<std::string> map_lines;

  std::istringstream stream(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    const std::string trimmed = util::Trim(raw);
    const bool is_header = !trimmed.empty() && trimmed.front() == '[';
    if (section == Section::kMap && !is_header) {
      // Sketch lines are taken verbatim: leading spaces are geometry.
      map_lines.push_back(raw);
      continue;
    }
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (is_header) {
      if (trimmed.back() != ']') {
        return ParseError(line_number, "unterminated section header");
      }
      const std::string header = trimmed.substr(1, trimmed.size() - 2);
      envelope = nullptr;
      if (header == "scenario") {
        section = Section::kScenario;
      } else if (header == "map") {
        section = Section::kMap;
      } else if (header == "tags") {
        section = Section::kTags;
      } else if (header == "generator") {
        section = Section::kGenerator;
      } else if (header == "world") {
        section = Section::kWorld;
      } else if (header == "workers") {
        section = Section::kWorkers;
      } else if (header == "engine") {
        section = Section::kEngine;
      } else if (header == "sharding") {
        section = Section::kSharding;
      } else if (header == "timeline") {
        section = Section::kTimeline;
      } else if (header == "envelope" ||
                 util::StartsWith(header, "envelope:")) {
        section = Section::kEnvelope;
        EnvelopeSpec spec;
        if (header != "envelope") spec.phase = util::Trim(header.substr(9));
        pack.envelopes.push_back(spec);
        envelope = &pack.envelopes.back();
      } else {
        return ParseError(line_number, "unknown section [" + header + "]");
      }
      continue;
    }
    switch (section) {
      case Section::kNone:
        return ParseError(line_number, "content before the first section");
      case Section::kMap:
        break;  // unreachable: handled above
      case Section::kTags: {
        const size_t colon = trimmed.find(':');
        if (colon == std::string::npos) {
          return ParseError(line_number,
                            "tag lines are '<selector>: k=v k=v'");
        }
        TagLine tag;
        tag.selector = util::Trim(trimmed.substr(0, colon));
        if (tag.selector.empty()) {
          return ParseError(line_number, "empty tag selector");
        }
        for (const std::string& token :
             SplitWhitespace(trimmed.substr(colon + 1))) {
          std::string key, value;
          if (!SplitKeyValue(token, key, value)) {
            return ParseError(line_number, "bad tag token '" + token + "'");
          }
          tag.tags[key] = value;
        }
        if (tag.tags.empty()) {
          return ParseError(line_number, "tag line sets nothing");
        }
        pack.tags.push_back(std::move(tag));
        break;
      }
      case Section::kTimeline: {
        const std::vector<std::string> tokens = SplitWhitespace(trimmed);
        std::string key, value;
        if (tokens.size() < 2 || !SplitKeyValue(tokens[0], key, value) ||
            key != "at") {
          return ParseError(line_number,
                            "timeline lines are 'at=<slot> <kind> k=v ...'");
        }
        Event event;
        auto at = util::ParseInt(value);
        if (!at.ok()) return ParseError(line_number, "bad at= slot");
        event.at = *at;
        auto kind = ParseEventKind(tokens[1]);
        if (!kind.ok()) return ParseError(line_number, kind.status().message());
        event.kind = *kind;
        for (size_t i = 2; i < tokens.size(); ++i) {
          if (!SplitKeyValue(tokens[i], key, value)) {
            return ParseError(line_number,
                              "bad event token '" + tokens[i] + "'");
          }
          if (auto s = ApplyEventKey(event, key, value); !s.ok()) {
            return ParseError(line_number, s.message());
          }
        }
        pack.timeline.push_back(std::move(event));
        break;
      }
      default: {
        std::string key, value;
        if (!SplitKeyValue(trimmed, key, value)) {
          return ParseError(line_number, "expected key=value");
        }
        util::Status status = util::Status::Ok();
        switch (section) {
          case Section::kScenario:
            status = ApplyScenarioKey(pack, key, value);
            break;
          case Section::kGenerator:
            status = ApplyGeneratorKey(pack, key, value);
            break;
          case Section::kWorld:
            status = ApplyWorldKey(pack, key, value);
            break;
          case Section::kWorkers:
            status = ApplyWorkersKey(pack, key, value);
            break;
          case Section::kEngine:
            status = ApplyEngineKey(pack, key, value);
            break;
          case Section::kSharding:
            status = ApplyShardingKey(pack, key, value);
            break;
          case Section::kEnvelope:
            status = ApplyEnvelopeKey(*envelope, key, value);
            break;
          default:
            status = util::Status::InvalidArgument("unreachable");
        }
        if (!status.ok()) return ParseError(line_number, status.message());
        break;
      }
    }
  }

  // Drop trailing blank sketch lines, keep interior ones (geometry).
  while (!map_lines.empty() && util::Trim(map_lines.back()).empty()) {
    map_lines.pop_back();
  }
  pack.sketch = util::Join(map_lines, "\n");

  if (auto s = ValidatePack(pack); !s.ok()) return s;
  if (auto s = ValidateWorldOptions(pack.world); !s.ok()) return s;
  return pack;
}

util::Result<Pack> LoadPackFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return util::Status::IoError("cannot open pack file '" + path + "'");
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParsePack(contents.str());
}

util::Result<MapFixture> BuildFixture(const Pack& pack) {
  if (!pack.sketch.empty()) {
    return CompileAsciiMap(pack.sketch, pack.tags);
  }
  MapFixture fixture;
  if (pack.generator.kind == "grid") {
    auto graph = graph::GridNetwork(pack.generator.rows, pack.generator.cols);
    if (!graph.ok()) return graph.status();
    fixture.graph = std::move(*graph);
    fixture.positions.reserve(
        static_cast<size_t>(pack.generator.rows * pack.generator.cols));
    for (int row = 0; row < pack.generator.rows; ++row) {
      for (int col = 0; col < pack.generator.cols; ++col) {
        fixture.positions.emplace_back(
            (col + 0.5) / pack.generator.cols,
            (row + 0.5) / pack.generator.rows);
      }
    }
  } else if (pack.generator.kind == "metro") {
    graph::MetroNetworkOptions options;
    options.num_roads = pack.generator.roads;
    auto graph = graph::MetroNetwork(options, &fixture.positions);
    if (!graph.ok()) return graph.status();
    fixture.graph = std::move(*graph);
  } else {
    return util::Status::InvalidArgument("pack has no map source");
  }
  const int num_roads = fixture.graph.num_roads();
  fixture.profiles.assign(static_cast<size_t>(num_roads), RoadProfile{});
  fixture.names.reserve(static_cast<size_t>(num_roads));
  std::vector<double> lengths(static_cast<size_t>(num_roads));
  for (int r = 0; r < num_roads; ++r) {
    fixture.names.push_back(std::to_string(r));
    lengths[static_cast<size_t>(r)] =
        fixture.profiles[static_cast<size_t>(r)].length_km;
  }
  auto geometry = graph::RoadGeometry::FromLengths(std::move(lengths));
  if (!geometry.ok()) return geometry.status();
  fixture.lengths = std::move(*geometry);
  return fixture;
}

util::Result<std::vector<graph::RoadId>> ResolveRoads(
    const RoadsSpec& spec, const MapFixture& fixture) {
  std::vector<graph::RoadId> roads;
  switch (spec.kind) {
    case RoadsSpec::Kind::kAll:
      roads.resize(static_cast<size_t>(fixture.graph.num_roads()));
      for (int r = 0; r < fixture.graph.num_roads(); ++r) roads[r] = r;
      return roads;
    case RoadsSpec::Kind::kList:
      for (const std::string& name : spec.names) {
        const graph::RoadId road = fixture.RoadByName(name);
        if (road < 0) {
          return util::Status::NotFound("no road named '" + name + "'");
        }
        roads.push_back(road);
      }
      break;
    case RoadsSpec::Kind::kDistrict: {
      const graph::RoadId center = fixture.RoadByName(spec.center);
      if (center < 0) {
        return util::Status::NotFound("no road named '" + spec.center + "'");
      }
      const graph::HopLevels levels =
          graph::MultiSourceBfs(fixture.graph, {center});
      const int max_hop = std::min(
          spec.hops, static_cast<int>(levels.levels.size()) - 1);
      for (int hop = 0; hop <= max_hop; ++hop) {
        const auto& ring = levels.levels[static_cast<size_t>(hop)];
        roads.insert(roads.end(), ring.begin(), ring.end());
      }
      break;
    }
  }
  std::sort(roads.begin(), roads.end());
  roads.erase(std::unique(roads.begin(), roads.end()), roads.end());
  if (roads.empty()) {
    return util::Status::InvalidArgument("road spec resolves to no roads");
  }
  return roads;
}

}  // namespace crowdrtse::scenario
