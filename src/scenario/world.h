#ifndef CROWDRTSE_SCENARIO_WORLD_H_
#define CROWDRTSE_SCENARIO_WORLD_H_

#include <cstdint>

#include "scenario/ascii_map.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::scenario {

/// Knobs of the scenario ground truth. Unlike traffic::TrafficSimulator —
/// whose per-road profiles are random draws — a scenario world is built
/// from the map fixture's tag-controlled profiles, so a pack author knows
/// exactly which road is a highway and which a congested arterial.
struct WorldOptions {
  int history_days = 6;
  /// Scenario days are shorter than the paper's 288-slot day so packs stay
  /// fast; rush hours scale onto the shorter day proportionally.
  int slots_per_day = 48;
  /// AR(1) persistence of the latent fluctuation across consecutive slots.
  double temporal_persistence = 0.9;
  /// Fraction of each road's fluctuation mixed from its neighbours (one
  /// smoothing pass): adjacent roads co-move, which is what gives the RTF
  /// non-trivial correlations to exploit.
  double spatial_mix = 0.5;
  double min_speed = 2.0;
};

util::Status ValidateWorldOptions(const WorldOptions& options);

/// The compiled ground truth: the offline historical record H and today's
/// live day (the DayMatrix the engine serves against, and the accuracy
/// reference of every envelope). Both are pure functions of
/// (fixture, options, seed).
struct ScenarioWorld {
  traffic::HistoryStore history;
  traffic::DayMatrix truth;
};

/// Deterministic periodic component of road `road` at `slot` — the profile
/// base dipped through the morning/evening rush windows.
double PeriodicSpeed(const RoadProfile& profile, int slot, int slots_per_day);

/// Builds history_days of history plus one evaluation day from the
/// fixture's profiles. Day d is generated from a per-day forked RNG, so
/// the construction is bit-reproducible for a given seed.
util::Result<ScenarioWorld> BuildScenarioWorld(const MapFixture& fixture,
                                               const WorldOptions& options,
                                               uint64_t seed);

/// Applies an incident to the live day in place: road speeds in
/// [from_slot, from_slot + duration) drop by `severity` (fractional), and
/// congestion spills `spillover_hops` hops outward with the severity
/// halving per hop. Speeds never fall below `min_speed`.
util::Status ApplyIncident(const graph::Graph& graph, graph::RoadId road,
                           int from_slot, int duration, double severity,
                           int spillover_hops, double min_speed,
                           traffic::DayMatrix& truth);

}  // namespace crowdrtse::scenario

#endif  // CROWDRTSE_SCENARIO_WORLD_H_
