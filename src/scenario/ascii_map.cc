#include "scenario/ascii_map.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace crowdrtse::scenario {

namespace {

bool IsRoadChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}

/// Class defaults: the (base, dips, noise, length) each SpeedClass stands
/// for. Highways are fast with shallow dips; arterials carry the deep rush
/// dips; locals are slower and noisier; slow streets barely move.
RoadProfile ClassDefaults(SpeedClass c) {
  RoadProfile p;
  p.speed_class = c;
  switch (c) {
    case SpeedClass::kHighway:
      p.base_kmh = 95.0;
      p.morning_dip = 0.25;
      p.evening_dip = 0.30;
      p.noise_kmh = 2.0;
      p.length_km = 1.5;
      break;
    case SpeedClass::kArterial:
      p.base_kmh = 65.0;
      p.morning_dip = 0.40;
      p.evening_dip = 0.45;
      p.noise_kmh = 3.0;
      p.length_km = 0.8;
      break;
    case SpeedClass::kLocal:
      p.base_kmh = 45.0;
      p.morning_dip = 0.30;
      p.evening_dip = 0.35;
      p.noise_kmh = 4.0;
      p.length_km = 0.4;
      break;
    case SpeedClass::kSlow:
      p.base_kmh = 28.0;
      p.morning_dip = 0.20;
      p.evening_dip = 0.25;
      p.noise_kmh = 2.5;
      p.length_km = 0.3;
      break;
  }
  return p;
}

util::Status ApplyTags(const std::map<std::string, std::string>& tags,
                       RoadProfile& profile) {
  // The class tag resets the whole profile before the explicit keys land,
  // whatever order the tag line wrote them in.
  auto it = tags.find("class");
  if (it != tags.end()) {
    auto parsed = ParseSpeedClass(it->second);
    if (!parsed.ok()) return parsed.status();
    profile = ClassDefaults(*parsed);
  }
  for (const auto& [key, value] : tags) {
    if (key == "class") continue;
    const auto number = util::ParseDouble(value);
    if (!number.ok()) {
      return util::Status::InvalidArgument("tag " + key + "=" + value +
                                           ": not a number");
    }
    if (key == "base") {
      profile.base_kmh = *number;
    } else if (key == "dip") {
      profile.morning_dip = *number;
      profile.evening_dip = *number;
    } else if (key == "morning_dip") {
      profile.morning_dip = *number;
    } else if (key == "evening_dip") {
      profile.evening_dip = *number;
    } else if (key == "noise") {
      profile.noise_kmh = *number;
    } else if (key == "len") {
      profile.length_km = *number;
    } else {
      return util::Status::InvalidArgument("unknown map tag key: " + key);
    }
  }
  if (profile.base_kmh <= 0.0) {
    return util::Status::InvalidArgument("road base speed must be positive");
  }
  if (profile.morning_dip < 0.0 || profile.morning_dip >= 1.0 ||
      profile.evening_dip < 0.0 || profile.evening_dip >= 1.0) {
    return util::Status::InvalidArgument("rush dips must lie in [0, 1)");
  }
  if (profile.noise_kmh < 0.0 || profile.length_km <= 0.0) {
    return util::Status::InvalidArgument(
        "noise must be >= 0 and length positive");
  }
  return util::Status::Ok();
}

std::string CellName(size_t row, size_t col) {
  return "row " + std::to_string(row + 1) + " col " + std::to_string(col + 1);
}

}  // namespace

const char* SpeedClassName(SpeedClass c) {
  switch (c) {
    case SpeedClass::kHighway:
      return "highway";
    case SpeedClass::kArterial:
      return "arterial";
    case SpeedClass::kLocal:
      return "local";
    case SpeedClass::kSlow:
      return "slow";
  }
  return "unknown";
}

util::Result<SpeedClass> ParseSpeedClass(const std::string& name) {
  if (name == "highway") return SpeedClass::kHighway;
  if (name == "arterial") return SpeedClass::kArterial;
  if (name == "local") return SpeedClass::kLocal;
  if (name == "slow") return SpeedClass::kSlow;
  return util::Status::InvalidArgument("unknown speed class: " + name);
}

graph::RoadId MapFixture::RoadByName(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<graph::RoadId>(i);
  }
  return graph::kInvalidRoad;
}

util::Result<MapFixture> CompileAsciiMap(const std::string& sketch,
                                         const std::vector<TagLine>& tags) {
  // Grid pass: split into rows, validate the character set. Trailing
  // blank rows are presentation, not geography — a sketch must compile to
  // the same unit-square geometry with or without a final newline.
  std::vector<std::string> grid = util::Split(sketch, '\n');
  while (!grid.empty() &&
         grid.back().find_first_not_of(" \t\r") == std::string::npos) {
    grid.pop_back();
  }
  size_t width = 0;
  for (size_t r = 0; r < grid.size(); ++r) {
    for (size_t c = 0; c < grid[r].size(); ++c) {
      const char ch = grid[r][c];
      if (ch != ' ' && ch != '-' && ch != '|' && !IsRoadChar(ch)) {
        return util::Status::InvalidArgument(
            std::string("unexpected sketch character '") + ch + "' at " +
            CellName(r, c));
      }
    }
    width = std::max(width, grid[r].size());
  }

  // Road pass: letters become roads in row-major discovery order, so ids
  // (and therefore edge ids below) are pinned by the drawing alone.
  MapFixture fixture;
  std::vector<std::vector<graph::RoadId>> road_at(
      grid.size(), std::vector<graph::RoadId>(width, graph::kInvalidRoad));
  struct Cell {
    size_t row, col;
  };
  std::vector<Cell> cells;
  for (size_t r = 0; r < grid.size(); ++r) {
    for (size_t c = 0; c < grid[r].size(); ++c) {
      if (!IsRoadChar(grid[r][c])) continue;
      const std::string name(1, grid[r][c]);
      if (fixture.RoadByName(name) != graph::kInvalidRoad) {
        return util::Status::InvalidArgument("duplicate road letter '" +
                                             name + "' at " + CellName(r, c));
      }
      road_at[r][c] = static_cast<graph::RoadId>(fixture.names.size());
      fixture.names.push_back(name);
      cells.push_back({r, c});
    }
  }
  if (fixture.names.empty()) {
    return util::Status::InvalidArgument("sketch contains no roads");
  }

  // Edge pass: from every road scan east through `-` and south through
  // `|`; every connector consumed by a completed run is marked, and any
  // connector left unmarked afterwards is a dangling edge.
  std::vector<std::vector<uint8_t>> consumed(
      grid.size(), std::vector<uint8_t>(width, 0));
  graph::GraphBuilder builder(static_cast<int>(fixture.names.size()));
  std::vector<std::pair<graph::RoadId, graph::RoadId>> edge_list;
  const auto at = [&](size_t r, size_t c) -> char {
    if (r >= grid.size() || c >= grid[r].size()) return '\0';
    return grid[r][c];
  };
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto [row, col] = cells[i];
    const graph::RoadId from = road_at[row][col];
    // East.
    {
      size_t c = col + 1;
      while (at(row, c) == '-') ++c;
      if (c > col + 1 && !IsRoadChar(at(row, c))) {
        return util::Status::InvalidArgument(
            "dangling horizontal edge from '" + fixture.names[from] +
            "' at " + CellName(row, col));
      }
      if (IsRoadChar(at(row, c))) {
        for (size_t k = col + 1; k < c; ++k) consumed[row][k] = 1;
        edge_list.emplace_back(from, road_at[row][c]);
        builder.AddEdge(from, road_at[row][c]);
      }
    }
    // South.
    {
      size_t r = row + 1;
      while (at(r, col) == '|') ++r;
      if (r > row + 1 && !IsRoadChar(at(r, col))) {
        return util::Status::InvalidArgument(
            "dangling vertical edge from '" + fixture.names[from] + "' at " +
            CellName(row, col));
      }
      if (r > row + 1 && IsRoadChar(at(r, col))) {
        for (size_t k = row + 1; k < r; ++k) consumed[k][col] = 1;
        edge_list.emplace_back(from, road_at[r][col]);
        builder.AddEdge(from, road_at[r][col]);
      }
    }
  }
  for (size_t r = 0; r < grid.size(); ++r) {
    for (size_t c = 0; c < grid[r].size(); ++c) {
      if ((grid[r][c] == '-' || grid[r][c] == '|') && !consumed[r][c]) {
        return util::Status::InvalidArgument(
            std::string("dangling edge character '") + grid[r][c] + "' at " +
            CellName(r, c) + " connects fewer than two roads");
      }
    }
  }

  auto graph = builder.Build();
  if (!graph.ok()) return graph.status();
  fixture.graph = std::move(*graph);

  // Geometry: cell centers normalised onto the unit square; a single row
  // or column still spreads so the partitioner's bisection has an axis.
  const double inv_w = 1.0 / static_cast<double>(std::max<size_t>(width, 1));
  const double inv_h =
      1.0 / static_cast<double>(std::max<size_t>(grid.size(), 1));
  for (const Cell& cell : cells) {
    fixture.positions.emplace_back(
        (static_cast<double>(cell.col) + 0.5) * inv_w,
        (static_cast<double>(cell.row) + 0.5) * inv_h);
  }

  // Tag pass: edge tags paint both endpoints, road tags override.
  fixture.profiles.assign(fixture.names.size(),
                          ClassDefaults(SpeedClass::kArterial));
  for (const TagLine& line : tags) {
    const std::vector<std::string> parts = util::Split(line.selector, '-');
    if (parts.size() == 2) {
      const graph::RoadId a = fixture.RoadByName(util::Trim(parts[0]));
      const graph::RoadId b = fixture.RoadByName(util::Trim(parts[1]));
      if (a == graph::kInvalidRoad || b == graph::kInvalidRoad ||
          !fixture.graph.AreAdjacent(a, b)) {
        return util::Status::InvalidArgument("tag selector '" +
                                             line.selector +
                                             "' names no edge of the sketch");
      }
      for (graph::RoadId road : {a, b}) {
        if (auto s = ApplyTags(line.tags,
                               fixture.profiles[static_cast<size_t>(road)]);
            !s.ok()) {
          return s;
        }
      }
    } else if (parts.size() == 1) {
      const graph::RoadId road = fixture.RoadByName(util::Trim(parts[0]));
      if (road == graph::kInvalidRoad) {
        return util::Status::InvalidArgument("tag selector '" +
                                             line.selector +
                                             "' names no road of the sketch");
      }
      if (auto s = ApplyTags(line.tags,
                             fixture.profiles[static_cast<size_t>(road)]);
          !s.ok()) {
        return s;
      }
    } else {
      return util::Status::InvalidArgument("malformed tag selector: " +
                                           line.selector);
    }
  }

  // Road tags must win over edge tags whatever the section order, so edge
  // selectors are applied in a first pass above only when no road selector
  // names the same road later. Simpler and equivalent: re-apply every road
  // selector after the edge selectors.
  for (const TagLine& line : tags) {
    if (line.selector.find('-') != std::string::npos) continue;
    const graph::RoadId road = fixture.RoadByName(util::Trim(line.selector));
    if (auto s = ApplyTags(line.tags,
                           fixture.profiles[static_cast<size_t>(road)]);
        !s.ok()) {
      return s;
    }
  }

  std::vector<double> lengths;
  lengths.reserve(fixture.profiles.size());
  for (const RoadProfile& p : fixture.profiles) lengths.push_back(p.length_km);
  auto geometry = graph::RoadGeometry::FromLengths(std::move(lengths));
  if (!geometry.ok()) return geometry.status();
  fixture.lengths = std::move(*geometry);

  return fixture;
}

}  // namespace crowdrtse::scenario
