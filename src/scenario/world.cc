#include "scenario/world.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/bfs.h"
#include "util/rng.h"

namespace crowdrtse::scenario {

namespace {

/// One Gaussian rush window: fractional dip weight of `slot` for a rush
/// centered at `center_hours` with ~1.5h half-width, scaled onto the
/// scenario's (possibly shortened) day.
double RushWeight(int slot, int slots_per_day, double center_hours) {
  const double center = slots_per_day * (center_hours / 24.0);
  const double sigma = slots_per_day * (1.5 / 24.0);
  const double z = (static_cast<double>(slot) - center) / sigma;
  return std::exp(-0.5 * z * z);
}

/// One generated day: periodic profile + AR(1) fluctuation diffused one
/// pass over the graph so neighbours co-move.
void GenerateDay(const MapFixture& fixture, const WorldOptions& options,
                 util::Rng& rng, traffic::DayMatrix& day) {
  const int num_roads = fixture.graph.num_roads();
  const double a = options.temporal_persistence;
  const double innovation_scale = std::sqrt(std::max(0.0, 1.0 - a * a));
  std::vector<double> fluctuation(static_cast<size_t>(num_roads), 0.0);
  std::vector<double> mixed(static_cast<size_t>(num_roads), 0.0);
  for (int slot = 0; slot < options.slots_per_day; ++slot) {
    for (int r = 0; r < num_roads; ++r) {
      const double noise = fixture.profiles[static_cast<size_t>(r)].noise_kmh;
      fluctuation[static_cast<size_t>(r)] =
          a * fluctuation[static_cast<size_t>(r)] +
          innovation_scale * rng.Normal(0.0, noise);
    }
    for (int r = 0; r < num_roads; ++r) {
      const auto neighbors = fixture.graph.Neighbors(r);
      double neighbor_sum = 0.0;
      for (const graph::Adjacency& adj : neighbors) {
        neighbor_sum += fluctuation[static_cast<size_t>(adj.neighbor)];
      }
      const double neighbor_mean =
          neighbors.empty()
              ? fluctuation[static_cast<size_t>(r)]
              : neighbor_sum / static_cast<double>(neighbors.size());
      mixed[static_cast<size_t>(r)] =
          (1.0 - options.spatial_mix) * fluctuation[static_cast<size_t>(r)] +
          options.spatial_mix * neighbor_mean;
    }
    for (int r = 0; r < num_roads; ++r) {
      const double speed =
          PeriodicSpeed(fixture.profiles[static_cast<size_t>(r)], slot,
                        options.slots_per_day) +
          mixed[static_cast<size_t>(r)];
      day.At(slot, r) = std::max(options.min_speed, speed);
    }
  }
}

}  // namespace

util::Status ValidateWorldOptions(const WorldOptions& options) {
  if (options.history_days < 2) {
    return util::Status::InvalidArgument(
        "scenario history needs >= 2 days to estimate variances");
  }
  if (options.slots_per_day < 4) {
    return util::Status::InvalidArgument("slots_per_day must be >= 4");
  }
  if (options.temporal_persistence < 0.0 ||
      options.temporal_persistence >= 1.0) {
    return util::Status::InvalidArgument(
        "temporal_persistence must lie in [0, 1)");
  }
  if (options.spatial_mix < 0.0 || options.spatial_mix > 1.0) {
    return util::Status::InvalidArgument("spatial_mix must lie in [0, 1]");
  }
  if (options.min_speed <= 0.0) {
    return util::Status::InvalidArgument("min_speed must be positive");
  }
  return util::Status::Ok();
}

double PeriodicSpeed(const RoadProfile& profile, int slot,
                     int slots_per_day) {
  const double morning = RushWeight(slot, slots_per_day, 8.5);
  const double evening = RushWeight(slot, slots_per_day, 17.5);
  const double dip =
      profile.morning_dip * morning + profile.evening_dip * evening;
  return profile.base_kmh * (1.0 - std::min(0.95, dip));
}

util::Result<ScenarioWorld> BuildScenarioWorld(const MapFixture& fixture,
                                               const WorldOptions& options,
                                               uint64_t seed) {
  if (auto s = ValidateWorldOptions(options); !s.ok()) return s;
  const int num_roads = fixture.graph.num_roads();
  if (static_cast<size_t>(num_roads) != fixture.profiles.size()) {
    return util::Status::InvalidArgument(
        "fixture profiles do not cover every road");
  }
  ScenarioWorld world;
  world.history = traffic::HistoryStore(num_roads, options.history_days,
                                        options.slots_per_day);
  // Each day draws from its own forked stream, keyed by the day index —
  // day d is a pure function of (fixture, options, seed, d).
  for (int day = 0; day < options.history_days; ++day) {
    traffic::DayMatrix matrix(options.slots_per_day, num_roads);
    util::Rng rng(seed + 1000003ULL * static_cast<uint64_t>(day + 1));
    GenerateDay(fixture, options, rng, matrix);
    if (auto s = world.history.SetDay(day, matrix); !s.ok()) return s;
  }
  world.truth = traffic::DayMatrix(options.slots_per_day, num_roads);
  util::Rng rng(seed +
                1000003ULL * static_cast<uint64_t>(options.history_days + 1));
  GenerateDay(fixture, options, rng, world.truth);
  return world;
}

util::Status ApplyIncident(const graph::Graph& graph, graph::RoadId road,
                           int from_slot, int duration, double severity,
                           int spillover_hops, double min_speed,
                           traffic::DayMatrix& truth) {
  if (!graph.IsValidRoad(road)) {
    return util::Status::InvalidArgument("incident road out of range");
  }
  if (from_slot < 0 || from_slot >= truth.num_slots() || duration <= 0) {
    return util::Status::InvalidArgument(
        "incident window must start inside the day and last >= 1 slot");
  }
  if (severity <= 0.0 || severity >= 1.0) {
    return util::Status::InvalidArgument("incident severity must be in (0,1)");
  }
  const graph::HopLevels levels =
      graph::MultiSourceBfs(graph, {road});
  const int last_slot =
      std::min(truth.num_slots(), from_slot + duration);
  const int max_hop = std::min(spillover_hops,
                               static_cast<int>(levels.levels.size()) - 1);
  for (int hop = 0; hop <= max_hop; ++hop) {
    // Congestion spills outward at half strength per hop.
    const double factor = 1.0 - severity * std::pow(0.5, hop);
    for (graph::RoadId r : levels.levels[static_cast<size_t>(hop)]) {
      for (int slot = from_slot; slot < last_slot; ++slot) {
        truth.At(slot, r) = std::max(min_speed, truth.At(slot, r) * factor);
      }
    }
  }
  return util::Status::Ok();
}

}  // namespace crowdrtse::scenario
