#ifndef CROWDRTSE_BASELINES_LASSO_H_
#define CROWDRTSE_BASELINES_LASSO_H_

#include <vector>

#include "baselines/estimator.h"
#include "math/dense_matrix.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::baselines {

/// Options of the cyclic-coordinate-descent LASSO solver.
struct LassoFitOptions {
  /// L1 penalty weight lambda (paper tunes in 0..0.5; best 0.1). Applied to
  /// standardised predictors, objective (1/2n)||y - Xb||^2 + lambda |b|_1.
  double l1_penalty = 0.1;
  int max_iterations = 1000;
  /// Converged when no coefficient moved more than this in a sweep.
  double tolerance = 1e-6;
};

/// A fitted LASSO model: coefficients on the *original* (unstandardised)
/// predictor scale plus an intercept.
struct LassoFitResult {
  std::vector<double> coefficients;
  double intercept = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Solves min_b (1/2n) ||y - b0 - X b||^2 + lambda ||b||_1 by cyclic
/// coordinate descent on internally standardised columns. Constant columns
/// get a zero coefficient.
util::Result<LassoFitResult> LassoFit(const math::DenseMatrix& x,
                                      const std::vector<double>& y,
                                      const LassoFitOptions& options);

/// Options of the LASSO realtime estimator.
struct LassoEstimatorOptions {
  LassoFitOptions fit;
  /// Pool slots t-w..t+w across historical days as training samples (~30
  /// days alone are too few rows once tens of probes are predictors).
  int slot_window = 2;
};

/// The paper's regression baseline: for each unobserved road, regress its
/// historical speeds on the observed roads' historical speeds (LASSO for
/// sparsity/over-fitting control) and apply the fit to the realtime probes.
/// Pure correlation — no periodicity prior — exactly the methodology limits
/// the paper criticises: trained per query because crowdsourced observation
/// sites move.
class LassoEstimator : public RealtimeEstimator {
 public:
  /// History must cover the graph's roads and outlive the estimator.
  LassoEstimator(const graph::Graph& graph,
                 const traffic::HistoryStore& history,
                 const LassoEstimatorOptions& options);

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override;

  /// Trains one regression per target only — the per-query cost is
  /// proportional to |targets|, which matters when the network is big and
  /// the query touches a few dozen roads.
  util::Result<std::vector<double>> EstimateTargets(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds,
      const std::vector<graph::RoadId>& targets) const override;

  std::string name() const override { return "LASSO"; }

 private:
  const graph::Graph& graph_;
  const traffic::HistoryStore& history_;
  LassoEstimatorOptions options_;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_LASSO_H_
