#ifndef CROWDRTSE_BASELINES_ESTIMATOR_H_
#define CROWDRTSE_BASELINES_ESTIMATOR_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::baselines {

/// Common interface of every realtime speed estimator evaluated in the
/// paper (GSP, LASSO, GRMC, Per): given the query slot and the sparse
/// probed speeds, produce an estimate for every road of the network.
class RealtimeEstimator {
 public:
  virtual ~RealtimeEstimator() = default;

  /// Estimates the speed of all roads at `slot`. `observed_roads[i]` was
  /// probed at `observed_speeds[i]`; estimators must echo probed roads'
  /// values back unchanged.
  virtual util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const = 0;

  /// Like Estimate, but the caller only needs the entries at `targets`
  /// (plus the observed roads). The default forwards to Estimate; an
  /// estimator whose per-road cost is high (LASSO trains one regression
  /// per target) overrides this to skip unrequested roads. Entries outside
  /// targets/observed are unspecified but finite.
  virtual util::Result<std::vector<double>> EstimateTargets(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds,
      const std::vector<graph::RoadId>& targets) const {
    (void)targets;
    return Estimate(slot, observed_roads, observed_speeds);
  }

  /// Short display name ("GSP", "LASSO", ...).
  virtual std::string name() const = 0;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_ESTIMATOR_H_
