#ifndef CROWDRTSE_BASELINES_RIDGE_H_
#define CROWDRTSE_BASELINES_RIDGE_H_

#include <vector>

#include "baselines/estimator.h"
#include "math/dense_matrix.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::baselines {

/// Options of the ridge regression estimator.
struct RidgeEstimatorOptions {
  /// L2 penalty on the standardised coefficients.
  double l2_penalty = 1.0;
  /// Pool slots t-w..t+w across historical days as training rows.
  int slot_window = 2;
};

/// A closed-form ridge fit: coefficients on the original predictor scale
/// plus an intercept.
struct RidgeFitResult {
  std::vector<double> coefficients;
  double intercept = 0.0;
};

/// Solves min_b (1/2n)||y - b0 - X b||^2 + (lambda/2)||b||_2^2 on
/// standardised columns via one Cholesky of the regularised Gram matrix.
util::Result<RidgeFitResult> RidgeFit(const math::DenseMatrix& x,
                                      const std::vector<double>& y,
                                      double l2_penalty);

/// Dense-L2 sibling of the LASSO baseline (the regression family the
/// paper's related work surveys). One closed-form solve per target road;
/// no sparsity, so it over-fits harder when probes are few — a useful
/// contrast point in the sensitivity benches.
class RidgeEstimator : public RealtimeEstimator {
 public:
  RidgeEstimator(const graph::Graph& graph,
                 const traffic::HistoryStore& history,
                 const RidgeEstimatorOptions& options);

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override;

  util::Result<std::vector<double>> EstimateTargets(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds,
      const std::vector<graph::RoadId>& targets) const override;

  std::string name() const override { return "Ridge"; }

 private:
  const graph::Graph& graph_;
  const traffic::HistoryStore& history_;
  RidgeEstimatorOptions options_;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_RIDGE_H_
