#ifndef CROWDRTSE_BASELINES_GRMC_H_
#define CROWDRTSE_BASELINES_GRMC_H_

#include "baselines/estimator.h"
#include "graph/graph.h"
#include "traffic/history_store.h"
#include "util/status.h"

namespace crowdrtse::baselines {

/// Options for graph-regularised matrix completion.
struct GrmcOptions {
  /// Latent factor dimension (paper tunes 5..20; best 10).
  int latent_rank = 10;
  /// Ridge weight on both factor matrices.
  double ridge = 0.1;
  /// Graph-Laplacian smoothing weight on road factors: adjacent roads are
  /// pulled towards similar latent vectors (paper refs [17], [33]).
  double graph_reg = 1.0;
  /// Alternating-minimisation sweeps.
  int max_iterations = 30;
  /// Converged when the observed-entry RMSE improves less than this.
  double tolerance = 1e-3;
  /// How many historical days of this slot form the dense columns next to
  /// the sparse realtime column.
  int history_columns = 30;
  /// Factor initialisation seed.
  uint64_t seed = 7;
};

/// GRMC: the paper's matrix-completion baseline. The speed matrix has one
/// row per road and one column per day-at-this-slot; historical columns are
/// fully observed, the realtime column only at the probed roads. Completion
/// factorises M ~ U V^T with a graph-Laplacian penalty tr(U^T L U) tying
/// adjacent roads' factors together (spatial smoothness), fitted by
/// alternating ridge least squares with Gauss-Seidel on the coupled road
/// factors. Correlation-only: the periodic structure is only captured
/// implicitly through the historical columns.
class GrmcEstimator : public RealtimeEstimator {
 public:
  /// History must cover the graph's roads and outlive the estimator.
  GrmcEstimator(const graph::Graph& graph,
                const traffic::HistoryStore& history,
                const GrmcOptions& options);

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override;

  std::string name() const override { return "GRMC"; }

 private:
  const graph::Graph& graph_;
  const traffic::HistoryStore& history_;
  GrmcOptions options_;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_GRMC_H_
