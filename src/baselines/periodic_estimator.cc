#include "baselines/periodic_estimator.h"

#include <string>

namespace crowdrtse::baselines {

util::Result<std::vector<double>> PeriodicEstimator::Estimate(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds) const {
  if (slot < 0 || slot >= model_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (observed_roads.size() != observed_speeds.size()) {
    return util::Status::InvalidArgument(
        "observed roads/speeds length mismatch");
  }
  for (graph::RoadId r : observed_roads) {
    if (r < 0 || r >= model_.num_roads()) {
      return util::Status::InvalidArgument("observed road out of range");
    }
  }
  std::vector<double> speeds(static_cast<size_t>(model_.num_roads()));
  for (graph::RoadId r = 0; r < model_.num_roads(); ++r) {
    speeds[static_cast<size_t>(r)] = model_.Mu(slot, r);
  }
  return speeds;
}

}  // namespace crowdrtse::baselines
