#include "baselines/lasso.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "math/vector_ops.h"

namespace crowdrtse::baselines {

util::Result<LassoFitResult> LassoFit(const math::DenseMatrix& x,
                                      const std::vector<double>& y,
                                      const LassoFitOptions& options) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (y.size() != n) {
    return util::Status::InvalidArgument("row count mismatch between X and y");
  }
  if (n < 2) {
    return util::Status::InvalidArgument("need at least 2 samples");
  }
  if (options.l1_penalty < 0.0) {
    return util::Status::InvalidArgument("l1_penalty must be >= 0");
  }

  // Standardise columns; constant columns are frozen at coefficient 0.
  std::vector<double> mean(p, 0.0);
  std::vector<double> scale(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += x.At(i, j);
    mean[j] = sum / static_cast<double>(n);
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = x.At(i, j) - mean[j];
      ss += d * d;
    }
    scale[j] = std::sqrt(ss / static_cast<double>(n));
  }
  const double y_mean = math::Dot(y, std::vector<double>(n, 1.0 / n));

  // Work on centred data; beta is in standardised units during descent.
  std::vector<double> beta(p, 0.0);
  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - y_mean;

  LassoFitResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (size_t j = 0; j < p; ++j) {
      if (scale[j] <= 1e-12) continue;
      // rho_j = (1/n) sum_i z_ij * (residual_i + z_ij * beta_j), with
      // z_ij = (x_ij - mean_j) / scale_j the standardised predictor.
      double rho = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double z = (x.At(i, j) - mean[j]) / scale[j];
        rho += z * (residual[i] + z * beta[j]);
      }
      rho /= static_cast<double>(n);
      // Standardised columns have unit second moment, so the coordinate
      // minimiser is a plain soft-threshold.
      const double updated = math::SoftThreshold(rho, options.l1_penalty);
      const double delta = updated - beta[j];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) {
          const double z = (x.At(i, j) - mean[j]) / scale[j];
          residual[i] -= z * delta;
        }
        beta[j] = updated;
      }
      max_delta = std::max(max_delta, std::fabs(delta));
    }
    result.iterations = iter + 1;
    if (max_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Back-transform to the original predictor scale.
  result.coefficients.assign(p, 0.0);
  double intercept = y_mean;
  for (size_t j = 0; j < p; ++j) {
    if (scale[j] <= 1e-12) continue;
    result.coefficients[j] = beta[j] / scale[j];
    intercept -= result.coefficients[j] * mean[j];
  }
  result.intercept = intercept;
  return result;
}

LassoEstimator::LassoEstimator(const graph::Graph& graph,
                               const traffic::HistoryStore& history,
                               const LassoEstimatorOptions& options)
    : graph_(graph), history_(history), options_(options) {}

util::Result<std::vector<double>> LassoEstimator::Estimate(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds) const {
  std::vector<graph::RoadId> all_roads(
      static_cast<size_t>(graph_.num_roads()));
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    all_roads[static_cast<size_t>(r)] = r;
  }
  return EstimateTargets(slot, observed_roads, observed_speeds, all_roads);
}

util::Result<std::vector<double>> LassoEstimator::EstimateTargets(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds,
    const std::vector<graph::RoadId>& targets) const {
  if (slot < 0 || slot >= history_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (observed_roads.size() != observed_speeds.size()) {
    return util::Status::InvalidArgument(
        "observed roads/speeds length mismatch");
  }
  const int n = graph_.num_roads();
  std::vector<bool> is_observed(static_cast<size_t>(n), false);
  for (graph::RoadId r : observed_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("observed road out of range");
    }
    is_observed[static_cast<size_t>(r)] = true;
  }

  // Training rows: (day, pooled slot) pairs; columns: observed roads.
  const int num_days = history_.num_days();
  const int num_slots = history_.num_slots();
  const int window = std::max(0, options_.slot_window);
  std::vector<int> slots;
  for (int w = -window; w <= window; ++w) {
    slots.push_back((slot + w % num_slots + num_slots) % num_slots);
  }
  const size_t rows = static_cast<size_t>(num_days) * slots.size();
  const size_t cols = observed_roads.size();

  std::vector<double> estimates(static_cast<size_t>(n), 0.0);

  if (cols == 0 || rows < 2) {
    // Nothing to regress on: fall back to the historical slot mean.
    for (graph::RoadId r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int day = 0; day < num_days; ++day) {
        sum += history_.At(day, slot, r);
      }
      estimates[static_cast<size_t>(r)] =
          num_days > 0 ? sum / num_days : 0.0;
    }
  } else {
    math::DenseMatrix x(rows, cols);
    size_t row = 0;
    for (int day = 0; day < num_days; ++day) {
      for (int s : slots) {
        for (size_t j = 0; j < cols; ++j) {
          x.At(row, j) = history_.At(day, s, observed_roads[j]);
        }
        ++row;
      }
    }
    std::vector<double> y(rows);
    std::vector<bool> done(static_cast<size_t>(n), false);
    for (graph::RoadId target : targets) {
      if (target < 0 || target >= n) {
        return util::Status::InvalidArgument("target road out of range");
      }
      if (is_observed[static_cast<size_t>(target)] ||
          done[static_cast<size_t>(target)]) {
        continue;
      }
      done[static_cast<size_t>(target)] = true;
      row = 0;
      for (int day = 0; day < num_days; ++day) {
        for (int s : slots) {
          y[row++] = history_.At(day, s, target);
        }
      }
      util::Result<LassoFitResult> fit = LassoFit(x, y, options_.fit);
      if (!fit.ok()) return fit.status();
      double prediction = fit->intercept;
      for (size_t j = 0; j < cols; ++j) {
        prediction += fit->coefficients[j] * observed_speeds[j];
      }
      estimates[static_cast<size_t>(target)] = std::max(0.0, prediction);
    }
  }

  for (size_t i = 0; i < observed_roads.size(); ++i) {
    estimates[static_cast<size_t>(observed_roads[i])] = observed_speeds[i];
  }
  return estimates;
}

}  // namespace crowdrtse::baselines
