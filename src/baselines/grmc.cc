#include "baselines/grmc.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "math/dense_matrix.h"
#include "math/linear_solver.h"
#include "util/rng.h"

namespace crowdrtse::baselines {

namespace {

/// Sparse observation mask over the roads x columns matrix.
struct Observations {
  int num_roads = 0;
  int num_columns = 0;
  // Per (road, column): value and observed flag, flat road-major.
  std::vector<double> value;
  std::vector<bool> observed;

  size_t Index(int road, int col) const {
    return static_cast<size_t>(road) * static_cast<size_t>(num_columns) +
           static_cast<size_t>(col);
  }
};

double ObservedRmse(const Observations& obs, const math::DenseMatrix& u,
                    const math::DenseMatrix& v) {
  double sum = 0.0;
  size_t count = 0;
  const size_t k = u.cols();
  for (int r = 0; r < obs.num_roads; ++r) {
    for (int c = 0; c < obs.num_columns; ++c) {
      const size_t idx = obs.Index(r, c);
      if (!obs.observed[idx]) continue;
      double pred = 0.0;
      const double* ur = u.RowPtr(static_cast<size_t>(r));
      const double* vc = v.RowPtr(static_cast<size_t>(c));
      for (size_t d = 0; d < k; ++d) pred += ur[d] * vc[d];
      const double err = pred - obs.value[idx];
      sum += err * err;
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::sqrt(sum / static_cast<double>(count));
}

}  // namespace

GrmcEstimator::GrmcEstimator(const graph::Graph& graph,
                             const traffic::HistoryStore& history,
                             const GrmcOptions& options)
    : graph_(graph), history_(history), options_(options) {}

util::Result<std::vector<double>> GrmcEstimator::Estimate(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds) const {
  if (slot < 0 || slot >= history_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (observed_roads.size() != observed_speeds.size()) {
    return util::Status::InvalidArgument(
        "observed roads/speeds length mismatch");
  }
  if (options_.latent_rank < 1) {
    return util::Status::InvalidArgument("latent_rank must be >= 1");
  }
  const int n = graph_.num_roads();
  for (graph::RoadId r : observed_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("observed road out of range");
    }
  }

  // --- assemble the observation matrix --------------------------------
  const int history_cols =
      std::min(options_.history_columns, history_.num_days());
  const int num_columns = history_cols + 1;  // + the realtime column
  const int realtime_col = history_cols;
  Observations obs;
  obs.num_roads = n;
  obs.num_columns = num_columns;
  obs.value.assign(static_cast<size_t>(n) * num_columns, 0.0);
  obs.observed.assign(static_cast<size_t>(n) * num_columns, false);
  for (int c = 0; c < history_cols; ++c) {
    const int day = history_.num_days() - history_cols + c;
    for (graph::RoadId r = 0; r < n; ++r) {
      const size_t idx = obs.Index(r, c);
      obs.value[idx] = history_.At(day, slot, r);
      obs.observed[idx] = true;
    }
  }
  for (size_t i = 0; i < observed_roads.size(); ++i) {
    const size_t idx = obs.Index(observed_roads[i], realtime_col);
    obs.value[idx] = observed_speeds[i];
    obs.observed[idx] = true;
  }

  // --- alternating minimisation ----------------------------------------
  const size_t k = static_cast<size_t>(options_.latent_rank);
  util::Rng rng(options_.seed);
  math::DenseMatrix u(static_cast<size_t>(n), k);
  math::DenseMatrix v(static_cast<size_t>(num_columns), k);
  for (double& x : u.data()) x = rng.Normal(0.0, 0.5);
  for (double& x : v.data()) x = rng.Normal(0.0, 0.5);
  // Seed the first factor near the row means so the product starts at the
  // right scale.
  for (graph::RoadId r = 0; r < n; ++r) {
    double sum = 0.0;
    int count = 0;
    for (int c = 0; c < num_columns; ++c) {
      if (obs.observed[obs.Index(r, c)]) {
        sum += obs.value[obs.Index(r, c)];
        ++count;
      }
    }
    if (count > 0) u.At(static_cast<size_t>(r), 0) = sum / count;
  }
  for (int c = 0; c < num_columns; ++c) v.At(static_cast<size_t>(c), 0) = 1.0;

  double last_rmse = ObservedRmse(obs, u, v);
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // V step: per column, ridge regression on its observed rows.
    for (int c = 0; c < num_columns; ++c) {
      math::DenseMatrix a(k, k, 0.0);
      std::vector<double> b(k, 0.0);
      for (size_t d = 0; d < k; ++d) a.At(d, d) = options_.ridge;
      for (graph::RoadId r = 0; r < n; ++r) {
        const size_t idx = obs.Index(r, c);
        if (!obs.observed[idx]) continue;
        const double* ur = u.RowPtr(static_cast<size_t>(r));
        for (size_t d1 = 0; d1 < k; ++d1) {
          b[d1] += ur[d1] * obs.value[idx];
          for (size_t d2 = 0; d2 < k; ++d2) {
            a.At(d1, d2) += ur[d1] * ur[d2];
          }
        }
      }
      util::Result<std::vector<double>> solved = math::SolveSpd(a, b);
      if (!solved.ok()) return solved.status();
      for (size_t d = 0; d < k; ++d) v.At(static_cast<size_t>(c), d) = (*solved)[d];
    }
    // U step: per road, ridge + Laplacian coupling, Gauss-Seidel style
    // (neighbours' freshest factors are used as they update).
    for (graph::RoadId r = 0; r < n; ++r) {
      const auto neighbors = graph_.Neighbors(r);
      math::DenseMatrix a(k, k, 0.0);
      std::vector<double> b(k, 0.0);
      const double diag =
          options_.ridge +
          options_.graph_reg * static_cast<double>(neighbors.size());
      for (size_t d = 0; d < k; ++d) a.At(d, d) = diag;
      for (int c = 0; c < num_columns; ++c) {
        const size_t idx = obs.Index(r, c);
        if (!obs.observed[idx]) continue;
        const double* vc = v.RowPtr(static_cast<size_t>(c));
        for (size_t d1 = 0; d1 < k; ++d1) {
          b[d1] += vc[d1] * obs.value[idx];
          for (size_t d2 = 0; d2 < k; ++d2) {
            a.At(d1, d2) += vc[d1] * vc[d2];
          }
        }
      }
      for (const graph::Adjacency& adj : neighbors) {
        const double* un = u.RowPtr(static_cast<size_t>(adj.neighbor));
        for (size_t d = 0; d < k; ++d) b[d] += options_.graph_reg * un[d];
      }
      util::Result<std::vector<double>> solved = math::SolveSpd(a, b);
      if (!solved.ok()) return solved.status();
      for (size_t d = 0; d < k; ++d) u.At(static_cast<size_t>(r), d) = (*solved)[d];
    }

    const double rmse = ObservedRmse(obs, u, v);
    if (std::fabs(last_rmse - rmse) < options_.tolerance) break;
    last_rmse = rmse;
  }

  // --- read out the realtime column ------------------------------------
  std::vector<double> estimates(static_cast<size_t>(n), 0.0);
  const double* v_rt = v.RowPtr(static_cast<size_t>(realtime_col));
  for (graph::RoadId r = 0; r < n; ++r) {
    const double* ur = u.RowPtr(static_cast<size_t>(r));
    double pred = 0.0;
    for (size_t d = 0; d < k; ++d) pred += ur[d] * v_rt[d];
    estimates[static_cast<size_t>(r)] = std::max(0.0, pred);
  }
  for (size_t i = 0; i < observed_roads.size(); ++i) {
    estimates[static_cast<size_t>(observed_roads[i])] = observed_speeds[i];
  }
  return estimates;
}

}  // namespace crowdrtse::baselines
