#include "baselines/knn_days.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace crowdrtse::baselines {

KnnDaysEstimator::KnnDaysEstimator(const graph::Graph& graph,
                                   const traffic::HistoryStore& history,
                                   const KnnDaysOptions& options)
    : graph_(graph), history_(history), options_(options) {}

util::Result<std::vector<double>> KnnDaysEstimator::Estimate(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds) const {
  if (slot < 0 || slot >= history_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (observed_roads.size() != observed_speeds.size()) {
    return util::Status::InvalidArgument(
        "observed roads/speeds length mismatch");
  }
  if (options_.k < 1) {
    return util::Status::InvalidArgument("k must be >= 1");
  }
  const int n = graph_.num_roads();
  for (graph::RoadId r : observed_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("observed road out of range");
    }
  }
  const int num_days = history_.num_days();
  if (num_days == 0) {
    return util::Status::FailedPrecondition("empty history");
  }

  // Rank historical days by RMS discrepancy on the probed roads.
  std::vector<std::pair<double, int>> ranked;  // (distance, day)
  ranked.reserve(static_cast<size_t>(num_days));
  for (int day = 0; day < num_days; ++day) {
    double ss = 0.0;
    for (size_t i = 0; i < observed_roads.size(); ++i) {
      const double d =
          history_.At(day, slot, observed_roads[i]) - observed_speeds[i];
      ss += d * d;
    }
    const double rms =
        observed_roads.empty()
            ? 0.0
            : std::sqrt(ss / static_cast<double>(observed_roads.size()));
    ranked.emplace_back(rms, day);
  }
  const int k = std::min(options_.k, num_days);
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());

  // Kernel-weighted average of the neighbours' full slot snapshots.
  std::vector<double> estimates(static_cast<size_t>(n), 0.0);
  double weight_sum = 0.0;
  for (int i = 0; i < k; ++i) {
    const auto [distance, day] = ranked[static_cast<size_t>(i)];
    double weight = 1.0;
    if (options_.bandwidth_kmh > 0.0) {
      const double z = distance / options_.bandwidth_kmh;
      weight = std::exp(-0.5 * z * z);
    }
    weight = std::max(weight, 1e-12);
    weight_sum += weight;
    for (graph::RoadId r = 0; r < n; ++r) {
      estimates[static_cast<size_t>(r)] +=
          weight * history_.At(day, slot, r);
    }
  }
  for (double& v : estimates) v /= weight_sum;
  for (size_t i = 0; i < observed_roads.size(); ++i) {
    estimates[static_cast<size_t>(observed_roads[i])] = observed_speeds[i];
  }
  return estimates;
}

}  // namespace crowdrtse::baselines
