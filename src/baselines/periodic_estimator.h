#ifndef CROWDRTSE_BASELINES_PERIODIC_ESTIMATOR_H_
#define CROWDRTSE_BASELINES_PERIODIC_ESTIMATOR_H_

#include "baselines/estimator.h"
#include "rtf/rtf_model.h"

namespace crowdrtse::baselines {

/// "Per": the periodicity-only baseline — every road is estimated by its
/// historical slot mean mu_i^t. Faithful to the paper ("purely relies on
/// the periodicity"), it ignores the probed data entirely, so it is the
/// one estimator exempt from the probe-echo contract of the interface.
class PeriodicEstimator : public RealtimeEstimator {
 public:
  /// The model must outlive the estimator.
  explicit PeriodicEstimator(const rtf::RtfModel& model) : model_(model) {}

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override;

  std::string name() const override { return "Per"; }

 private:
  const rtf::RtfModel& model_;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_PERIODIC_ESTIMATOR_H_
