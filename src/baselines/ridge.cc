#include "baselines/ridge.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "math/linear_solver.h"

namespace crowdrtse::baselines {

util::Result<RidgeFitResult> RidgeFit(const math::DenseMatrix& x,
                                      const std::vector<double>& y,
                                      double l2_penalty) {
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (y.size() != n) {
    return util::Status::InvalidArgument("row count mismatch between X and y");
  }
  if (n < 2) {
    return util::Status::InvalidArgument("need at least 2 samples");
  }
  if (l2_penalty < 0.0) {
    return util::Status::InvalidArgument("l2_penalty must be >= 0");
  }

  // Standardise columns; constant columns get zero coefficients.
  std::vector<double> mean(p, 0.0);
  std::vector<double> scale(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += x.At(i, j);
    mean[j] = sum / static_cast<double>(n);
    double ss = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = x.At(i, j) - mean[j];
      ss += d * d;
    }
    scale[j] = std::sqrt(ss / static_cast<double>(n));
  }
  double y_mean = 0.0;
  for (double v : y) y_mean += v;
  y_mean /= static_cast<double>(n);

  // Active (non-constant) columns only.
  std::vector<size_t> active;
  for (size_t j = 0; j < p; ++j) {
    if (scale[j] > 1e-12) active.push_back(j);
  }
  RidgeFitResult result;
  result.coefficients.assign(p, 0.0);
  result.intercept = y_mean;
  if (active.empty()) return result;

  const size_t q = active.size();
  // Normal equations on the standardised design: (Z^T Z / n + lambda I) b
  // = Z^T (y - ybar) / n.
  math::DenseMatrix gram(q, q, 0.0);
  std::vector<double> rhs(q, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < q; ++a) {
      const size_t ja = active[a];
      const double za = (x.At(i, ja) - mean[ja]) / scale[ja];
      rhs[a] += za * (y[i] - y_mean);
      for (size_t b = a; b < q; ++b) {
        const size_t jb = active[b];
        const double zb = (x.At(i, jb) - mean[jb]) / scale[jb];
        gram.At(a, b) += za * zb;
      }
    }
  }
  for (size_t a = 0; a < q; ++a) {
    for (size_t b = 0; b < a; ++b) gram.At(a, b) = gram.At(b, a);
  }
  const double dn = static_cast<double>(n);
  for (size_t a = 0; a < q; ++a) {
    for (size_t b = 0; b < q; ++b) gram.At(a, b) /= dn;
    gram.At(a, a) += l2_penalty;
    rhs[a] /= dn;
  }
  util::Result<std::vector<double>> beta = math::SolveSpd(gram, rhs);
  if (!beta.ok()) return beta.status();

  for (size_t a = 0; a < q; ++a) {
    const size_t j = active[a];
    result.coefficients[j] = (*beta)[a] / scale[j];
    result.intercept -= result.coefficients[j] * mean[j];
  }
  return result;
}

RidgeEstimator::RidgeEstimator(const graph::Graph& graph,
                               const traffic::HistoryStore& history,
                               const RidgeEstimatorOptions& options)
    : graph_(graph), history_(history), options_(options) {}

util::Result<std::vector<double>> RidgeEstimator::Estimate(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds) const {
  std::vector<graph::RoadId> all(static_cast<size_t>(graph_.num_roads()));
  for (graph::RoadId r = 0; r < graph_.num_roads(); ++r) {
    all[static_cast<size_t>(r)] = r;
  }
  return EstimateTargets(slot, observed_roads, observed_speeds, all);
}

util::Result<std::vector<double>> RidgeEstimator::EstimateTargets(
    int slot, const std::vector<graph::RoadId>& observed_roads,
    const std::vector<double>& observed_speeds,
    const std::vector<graph::RoadId>& targets) const {
  if (slot < 0 || slot >= history_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (observed_roads.size() != observed_speeds.size()) {
    return util::Status::InvalidArgument(
        "observed roads/speeds length mismatch");
  }
  const int n = graph_.num_roads();
  std::vector<bool> is_observed(static_cast<size_t>(n), false);
  for (graph::RoadId r : observed_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("observed road out of range");
    }
    is_observed[static_cast<size_t>(r)] = true;
  }

  const int num_days = history_.num_days();
  const int num_slots = history_.num_slots();
  const int window = std::max(0, options_.slot_window);
  std::vector<int> slots;
  for (int w = -window; w <= window; ++w) {
    slots.push_back((slot + w % num_slots + num_slots) % num_slots);
  }
  const size_t rows = static_cast<size_t>(num_days) * slots.size();
  const size_t cols = observed_roads.size();

  std::vector<double> estimates(static_cast<size_t>(n), 0.0);
  if (cols == 0 || rows < 2) {
    for (graph::RoadId r = 0; r < n; ++r) {
      double sum = 0.0;
      for (int day = 0; day < num_days; ++day) {
        sum += history_.At(day, slot, r);
      }
      estimates[static_cast<size_t>(r)] = num_days > 0 ? sum / num_days : 0.0;
    }
  } else {
    math::DenseMatrix x(rows, cols);
    size_t row = 0;
    for (int day = 0; day < num_days; ++day) {
      for (int s : slots) {
        for (size_t j = 0; j < cols; ++j) {
          x.At(row, j) = history_.At(day, s, observed_roads[j]);
        }
        ++row;
      }
    }
    std::vector<double> y(rows);
    std::vector<bool> done(static_cast<size_t>(n), false);
    for (graph::RoadId target : targets) {
      if (target < 0 || target >= n) {
        return util::Status::InvalidArgument("target road out of range");
      }
      if (is_observed[static_cast<size_t>(target)] ||
          done[static_cast<size_t>(target)]) {
        continue;
      }
      done[static_cast<size_t>(target)] = true;
      row = 0;
      for (int day = 0; day < num_days; ++day) {
        for (int s : slots) y[row++] = history_.At(day, s, target);
      }
      util::Result<RidgeFitResult> fit =
          RidgeFit(x, y, options_.l2_penalty);
      if (!fit.ok()) return fit.status();
      double prediction = fit->intercept;
      for (size_t j = 0; j < cols; ++j) {
        prediction += fit->coefficients[j] * observed_speeds[j];
      }
      estimates[static_cast<size_t>(target)] = std::max(0.0, prediction);
    }
  }
  for (size_t i = 0; i < observed_roads.size(); ++i) {
    estimates[static_cast<size_t>(observed_roads[i])] = observed_speeds[i];
  }
  return estimates;
}

}  // namespace crowdrtse::baselines
