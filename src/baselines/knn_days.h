#ifndef CROWDRTSE_BASELINES_KNN_DAYS_H_
#define CROWDRTSE_BASELINES_KNN_DAYS_H_

#include "baselines/estimator.h"
#include "traffic/history_store.h"

namespace crowdrtse::baselines {

/// Options of the nearest-historical-days estimator.
struct KnnDaysOptions {
  /// How many most-similar historical days are averaged.
  int k = 5;
  /// Distance kernel bandwidth: weights are exp(-d^2 / (2 h^2)) where d is
  /// the RMS probe discrepancy in km/h. h <= 0 disables weighting (plain
  /// mean of the k neighbours).
  double bandwidth_kmh = 5.0;
};

/// Non-parametric baseline: find the k historical days whose speeds on the
/// *probed* roads (at the query slot) best match today's probes, then
/// estimate every other road by the (kernel-weighted) average of those
/// days' speeds. Analogy-based forecasting — it handles recurring regimes
/// (e.g. "wet-day" traffic) that a per-slot Gaussian blurs, but cannot
/// extrapolate to genuinely novel conditions.
class KnnDaysEstimator : public RealtimeEstimator {
 public:
  KnnDaysEstimator(const graph::Graph& graph,
                   const traffic::HistoryStore& history,
                   const KnnDaysOptions& options);

  util::Result<std::vector<double>> Estimate(
      int slot, const std::vector<graph::RoadId>& observed_roads,
      const std::vector<double>& observed_speeds) const override;

  std::string name() const override { return "kNN-days"; }

 private:
  const graph::Graph& graph_;
  const traffic::HistoryStore& history_;
  KnnDaysOptions options_;
};

}  // namespace crowdrtse::baselines

#endif  // CROWDRTSE_BASELINES_KNN_DAYS_H_
