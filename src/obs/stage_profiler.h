#ifndef CROWDRTSE_OBS_STAGE_PROFILER_H_
#define CROWDRTSE_OBS_STAGE_PROFILER_H_

#include <cstdint>

#include "util/metrics.h"

namespace crowdrtse::obs {

/// The serve-pipeline stages the profiler attributes time to.
enum class Stage : int {
  kOcsSelect = 0,     // OCS marginal-gain road selection
  kCrowdDispatch = 1, // crowd probe dispatch (incl. fault-tolerant retries)
  kGammaCompute = 2,  // Gamma_R correlation-table compute on a cache miss
  kGspSweep = 3,      // GSP coordinate-sweep propagation
  kMerge = 4,         // cross-shard response merge in the router
};
inline constexpr int kNumStages = 5;

/// Stable dotted stage name ("ocs.select"), used as the `stage` label on
/// the exported histograms.
const char* StageName(Stage stage);

/// Thread-CPU time (CLOCK_THREAD_CPUTIME_ID) in nanoseconds; 0 on
/// platforms without a per-thread CPU clock (CPU attribution then reads 0,
/// wall attribution still works).
int64_t ThreadCpuNanos();

/// Sampling per-stage wall/CPU profiler. One instance per engine, writing
/// labeled histograms into that engine's MetricsRegistry:
///
///   crowdrtse_stage_wall_ms{stage="ocs.select"}  (+ _cpu_ms)
///
/// Each recorded sample carries the query id as the bucket's exemplar, so
/// a p99 bucket in /metrics links straight to a trace id that landed there
/// (`/trace/<id>` shows the stitched span tree).
///
/// Sampling is deterministic per query id (same hash as trace sampling),
/// so profiled-vs-unprofiled runs stay bit-identical in results and a
/// given query profiles identically on every replica.
class StageProfiler {
 public:
  struct Options {
    /// Fraction of queries profiled (deterministic by query id). 0
    /// disables; 1 profiles everything.
    double sample_rate = 0.0;
  };

  StageProfiler(util::metrics::MetricsRegistry* registry, Options options);

  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  /// Deterministic sampling decision for `query_id`.
  bool ShouldProfile(int64_t query_id) const;

  /// Records one stage sample (called by StageTimer). `query_id` becomes
  /// the exemplar on the wall histogram's bucket.
  void RecordStage(Stage stage, int64_t query_id, double wall_ms,
                   double cpu_ms);

 private:
  Options options_;
  util::metrics::LatencyHistogram* wall_[kNumStages];
  util::metrics::LatencyHistogram* cpu_[kNumStages];
};

/// The profiler the calling thread's current query records into (set by
/// ScopedProfile); nullptr when the query is unprofiled.
StageProfiler* ActiveProfiler();
/// Query id of the active profile scope, 0 when none.
int64_t ActiveProfileQueryId();

/// Installs a per-query profiling scope on the calling thread — the stage
/// timers below find it through TLS, so deep pipeline layers (gamma cache,
/// GSP) need no profiler plumbing. No-op (and cheap) when `profiler` is
/// null or `query_id` doesn't sample. The sharded router installs its
/// scope around sub-serves so all stages of a cross-shard query aggregate
/// under the router's query id; QueryEngine only installs its own when no
/// ambient scope exists.
class ScopedProfile {
 public:
  ScopedProfile(StageProfiler* profiler, int64_t query_id);
  ~ScopedProfile();

  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;

 private:
  StageProfiler* previous_profiler_;
  int64_t previous_query_;
};

/// RAII wall+CPU stage timer. When no ScopedProfile is active on the
/// thread, construction is two thread-local reads and destruction one
/// branch — cheap enough for every serve. Stop() records early.
class StageTimer {
 public:
  explicit StageTimer(Stage stage);
  ~StageTimer() { Stop(); }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void Stop();

 private:
  StageProfiler* profiler_;
  int64_t query_id_ = 0;
  Stage stage_;
  int64_t wall_start_ns_ = 0;
  int64_t cpu_start_ns_ = 0;
};

}  // namespace crowdrtse::obs

#endif  // CROWDRTSE_OBS_STAGE_PROFILER_H_
