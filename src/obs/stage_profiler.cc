#include "obs/stage_profiler.h"

#include <chrono>
#include <string>

#include "util/trace.h"

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define CROWDRTSE_HAS_THREAD_CPUTIME 1
#endif

namespace crowdrtse::obs {
namespace {

thread_local StageProfiler* t_profiler = nullptr;
thread_local int64_t t_profile_query = 0;

int64_t WallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kOcsSelect:
      return "ocs.select";
    case Stage::kCrowdDispatch:
      return "crowd.dispatch";
    case Stage::kGammaCompute:
      return "gamma.compute";
    case Stage::kGspSweep:
      return "gsp.sweep";
    case Stage::kMerge:
      return "merge";
  }
  return "unknown";
}

int64_t ThreadCpuNanos() {
#ifdef CROWDRTSE_HAS_THREAD_CPUTIME
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
  return 0;
#endif
}

StageProfiler::StageProfiler(util::metrics::MetricsRegistry* registry,
                             Options options)
    : options_(options) {
  for (int i = 0; i < kNumStages; ++i) {
    const std::string label =
        std::string("{stage=\"") + StageName(static_cast<Stage>(i)) + "\"}";
    wall_[i] = &registry->GetHistogram(
        "crowdrtse_stage_wall_ms" + label,
        "Wall time per serve-pipeline stage (sampled; exemplar = query id)");
    cpu_[i] = &registry->GetHistogram(
        "crowdrtse_stage_cpu_ms" + label,
        "Thread-CPU time per serve-pipeline stage (sampled)");
  }
}

bool StageProfiler::ShouldProfile(int64_t query_id) const {
  return util::trace::ShouldSample(options_.sample_rate,
                                   static_cast<uint64_t>(query_id));
}

void StageProfiler::RecordStage(Stage stage, int64_t query_id, double wall_ms,
                                double cpu_ms) {
  const int i = static_cast<int>(stage);
  wall_[i]->RecordWithExemplar(wall_ms, query_id);
  cpu_[i]->Record(cpu_ms);
}

StageProfiler* ActiveProfiler() { return t_profiler; }

int64_t ActiveProfileQueryId() { return t_profile_query; }

ScopedProfile::ScopedProfile(StageProfiler* profiler, int64_t query_id)
    : previous_profiler_(t_profiler), previous_query_(t_profile_query) {
  if (profiler != nullptr && profiler->ShouldProfile(query_id)) {
    t_profiler = profiler;
    t_profile_query = query_id;
  } else {
    t_profiler = nullptr;
    t_profile_query = 0;
  }
}

ScopedProfile::~ScopedProfile() {
  t_profiler = previous_profiler_;
  t_profile_query = previous_query_;
}

StageTimer::StageTimer(Stage stage)
    : profiler_(t_profiler), stage_(stage) {
  if (profiler_ == nullptr) return;
  query_id_ = t_profile_query;
  wall_start_ns_ = WallNanos();
  cpu_start_ns_ = ThreadCpuNanos();
}

void StageTimer::Stop() {
  if (profiler_ == nullptr) return;
  const double wall_ms = (WallNanos() - wall_start_ns_) * 1e-6;
  const double cpu_ms = (ThreadCpuNanos() - cpu_start_ns_) * 1e-6;
  profiler_->RecordStage(stage_, query_id_, wall_ms, cpu_ms);
  profiler_ = nullptr;
}

}  // namespace crowdrtse::obs
