#include "obs/flight_recorder.h"

#include <algorithm>

namespace crowdrtse::obs {
namespace {

// The calling thread's ambient shard tag (see ScopedShard).
thread_local int t_shard = kNoShard;

// One-entry thread-local ring cache: the common case is a thread recording
// into a single recorder (the global one), so Record() resolves its ring
// with two loads and no lock. Tests that interleave private recorders on
// one thread fall back to the registration map. The instance id (not just
// the address) must match: a recorder constructed at a destroyed one's
// address — routine for stack-allocated test recorders — must not satisfy
// the stale entry, whose ring pointer dangles.
struct RingCache {
  const void* owner = nullptr;
  uint64_t instance_id = 0;
  void* ring = nullptr;
};
thread_local RingCache t_ring_cache;

std::atomic<uint64_t> g_next_instance_id{1};

uint64_t PackMeta(EventKind kind, int shard, uint32_t thread) {
  const uint64_t shard_bits =
      static_cast<uint64_t>(static_cast<uint16_t>(shard)) << 16;
  return static_cast<uint64_t>(kind) | shard_bits |
         (static_cast<uint64_t>(thread) << 32);
}

void UnpackMeta(uint64_t meta, EventRecord& out) {
  out.kind = static_cast<EventKind>(meta & 0xffff);
  out.shard = static_cast<int16_t>((meta >> 16) & 0xffff);
  out.thread = static_cast<uint32_t>(meta >> 32);
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmissionVerdict:
      return "admission.verdict";
    case EventKind::kShedTransition:
      return "shed.transition";
    case EventKind::kShardSplit:
      return "shard.split";
    case EventKind::kShardMerge:
      return "shard.merge";
    case EventKind::kDispatchAttempt:
      return "dispatch.attempt";
    case EventKind::kGammaHit:
      return "gamma.hit";
    case EventKind::kGammaMiss:
      return "gamma.miss";
    case EventKind::kGammaPatch:
      return "gamma.patch";
    case EventKind::kGspSweep:
      return "gsp.sweep";
    case EventKind::kBudgetReserve:
      return "budget.reserve";
    case EventKind::kBudgetSettle:
      return "budget.settle";
    case EventKind::kCoalesceFanout:
      return "coalesce.fanout";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(Options options)
    : options_(options),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      enabled_(options.enabled) {
  size_t slots = 8;
  while (slots * 2 * sizeof(Slot) <= options_.bytes_per_thread) slots *= 2;
  slots_per_thread_ = slots;
  if (options_.max_threads < 1) options_.max_threads = 1;
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ring_of_thread_.find(self);
  Ring* ring = nullptr;
  if (it != ring_of_thread_.end()) {
    ring = it->second;
  } else if (static_cast<int>(rings_.size()) < options_.max_threads) {
    auto owned = std::make_unique<Ring>();
    owned->thread = static_cast<uint32_t>(rings_.size());
    owned->slots = std::vector<Slot>(slots_per_thread_);
    ring = owned.get();
    rings_.push_back(std::move(owned));
    ring_of_thread_[self] = ring;
  }
  t_ring_cache.owner = this;
  t_ring_cache.instance_id = instance_id_;
  t_ring_cache.ring = ring;  // nullptr is cached too: over-cap threads drop
  return ring;
}

void FlightRecorder::Record(EventKind kind, int64_t a, int64_t b, int64_t c) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = t_ring_cache.owner == this &&
                       t_ring_cache.instance_id == instance_id_
                   ? static_cast<Ring*>(t_ring_cache.ring)
                   : RingForThisThread();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot =
      ring->slots[ring->next.fetch_add(1, std::memory_order_relaxed) &
                  (slots_per_thread_ - 1)];
  // Per-slot seqlock write: invalidate, fill, publish. The release fence
  // after the invalidation keeps the payload stores from being hoisted
  // above it on weakly ordered hardware; the final release store makes the
  // whole record visible to an acquire reader of `seq`.
  slot.seq.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.meta.store(PackMeta(kind, t_shard, ring->thread),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<EventRecord> FlightRecorder::Snapshot() const {
  std::vector<EventRecord> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    for (const Slot& slot : ring->slots) {
      // Seqlock read: a record is whole iff the same nonzero seq brackets
      // the payload loads. The acquire fence orders the payload loads
      // before the confirming re-read.
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0) continue;
      EventRecord record;
      UnpackMeta(slot.meta.load(std::memory_order_relaxed), record);
      record.a = slot.a.load(std::memory_order_relaxed);
      record.b = slot.b.load(std::memory_order_relaxed);
      record.c = slot.c.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t after = slot.seq.load(std::memory_order_relaxed);
      if (after != before) continue;  // overwritten mid-read: skip, not tear
      record.seq = before;
      merged.push_back(record);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const EventRecord& x, const EventRecord& y) {
              return x.seq < y.seq;
            });
  return merged;
}

std::string FlightRecorder::DumpJson() const {
  const std::vector<EventRecord> events = Snapshot();
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"recorded\":" + std::to_string(recorded());
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"threads\":" + std::to_string(threads_registered());
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const EventRecord& e = events[i];
    if (i > 0) out += ',';
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"kind\":\"";
    out += EventKindName(e.kind);
    out += "\",\"shard\":" + std::to_string(e.shard);
    out += ",\"thread\":" + std::to_string(e.thread);
    out += ",\"a\":" + std::to_string(e.a);
    out += ",\"b\":" + std::to_string(e.b);
    out += ",\"c\":" + std::to_string(e.c);
    out += '}';
  }
  out += "]}";
  return out;
}

int FlightRecorder::threads_registered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(rings_.size());
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& ring : rings_) {
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
      slot.meta.store(0, std::memory_order_relaxed);
      slot.a.store(0, std::memory_order_relaxed);
      slot.b.store(0, std::memory_order_relaxed);
      slot.c.store(0, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  next_seq_.store(1, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

ScopedShard::ScopedShard(int shard) : previous_(t_shard) { t_shard = shard; }

ScopedShard::~ScopedShard() { t_shard = previous_; }

int CurrentShard() { return t_shard; }

}  // namespace crowdrtse::obs
