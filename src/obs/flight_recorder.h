#ifndef CROWDRTSE_OBS_FLIGHT_RECORDER_H_
#define CROWDRTSE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace crowdrtse::obs {

/// What happened, compactly. The three payload words a/b/c are
/// event-specific (DESIGN.md §10 has the full schema):
///   kAdmissionVerdict  a=shed level      b=queue depth    c=0
///   kShedTransition    a=previous level  b=new level      c=queue depth
///   kShardSplit        a=query id        b=owner shards   c=spend budget
///   kShardMerge        a=query id        b=total paid     c=owner shards
///   kDispatchAttempt   a=road            b=attempt        c=outcome code
///   kGammaHit          a=slot            b=0              c=0
///   kGammaMiss         a=slot            b=0              c=0
///   kGammaPatch        a=slot            b=outcome code   c=0
///   kGspSweep          a=slot            b=sweeps         c=converged
///   kBudgetReserve     a=query id        b=granted        c=0
///   kBudgetSettle      a=query id        b=granted        c=paid
///   kCoalesceFanout    a=query id        b=followers      c=leader client
enum class EventKind : uint16_t {
  kAdmissionVerdict = 1,
  kShedTransition = 2,
  kShardSplit = 3,
  kShardMerge = 4,
  kDispatchAttempt = 5,
  kGammaHit = 6,
  kGammaMiss = 7,
  kGammaPatch = 8,
  kGspSweep = 9,
  kBudgetReserve = 10,
  kBudgetSettle = 11,
  kCoalesceFanout = 12,
};

/// Dotted name of an event kind ("budget.reserve"), stable across versions
/// — dump consumers key on it.
const char* EventKindName(EventKind kind);

/// Shard tag of events recorded outside any ScopedShard.
inline constexpr int kNoShard = -1;

/// One decoded flight-recorder event. `seq` is the process-wide recording
/// order (1-based, no gaps among surviving records of one thread, strictly
/// increasing across the merged dump) — ordering needs no clock.
struct EventRecord {
  uint64_t seq = 0;
  EventKind kind = EventKind::kAdmissionVerdict;
  int shard = kNoShard;   // kNoShard outside a shard scope
  uint32_t thread = 0;    // recorder-local thread index, not an OS tid
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
};

/// Always-on flight recorder: per-thread lock-free ring buffers of compact
/// fixed-size event records, merged on demand into one sequence-ordered
/// dump (DESIGN.md §10).
///
/// Writers are wait-free: Record() is one global fetch_add (the sequence
/// number that orders the merged dump without any clock) plus five relaxed
/// stores into the calling thread's own ring slot. Each slot is a tiny
/// seqlock keyed on the record's own globally unique sequence number: the
/// writer zeroes the slot's seq, writes the payload, then publishes the
/// new seq with release order — so a concurrent dumper that sees the same
/// nonzero seq before and after reading the payload knows the record is
/// whole, and anything else is skipped, never emitted torn. Eviction is
/// record-aligned by construction: wraparound overwrites whole slots.
///
/// Memory is bounded: each thread's ring holds a fixed power-of-two slot
/// count derived from Options::bytes_per_thread, and at most
/// Options::max_threads rings ever exist (events from later threads are
/// counted in dropped() instead of allocating), so the recorder can never
/// use more than max_threads * bytes_per_thread bytes of ring memory.
///
/// The process-wide Global() instance is what the serving stack records
/// into (admission verdicts, shed transitions, shard split/merge, dispatch
/// attempt outcomes, Gamma_R hit/miss/patch, GSP sweeps, budget
/// reserve/settle); tests build private instances with tiny rings.
class FlightRecorder {
 public:
  struct Options {
    /// Ring bytes per writer thread; the slot count is the largest power
    /// of two that fits (at least 8 slots).
    size_t bytes_per_thread = 64 * 1024;
    /// Hard cap on rings — the recorder's total byte budget is
    /// max_threads * bytes_per_thread. Threads beyond the cap drop.
    int max_threads = 64;
    /// Recording on/off at construction (SetEnabled flips it at runtime).
    bool enabled = true;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every serve-path event site uses.
  static FlightRecorder& Global();

  /// Records one event on the calling thread's ring. Wait-free after the
  /// thread's first call (which registers its ring under a mutex). When
  /// disabled this is a single relaxed atomic load.
  void Record(EventKind kind, int64_t a = 0, int64_t b = 0, int64_t c = 0);

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Every whole record currently resident across all rings, merged and
  /// sorted by seq (the recording order). Safe under concurrent writers:
  /// records mid-write are skipped, never returned torn.
  std::vector<EventRecord> Snapshot() const;

  /// The merged snapshot as one JSON object:
  ///   {"recorded":N,"dropped":D,"threads":T,"events":[
  ///     {"seq":1,"kind":"budget.reserve","shard":-1,"thread":0,
  ///      "a":..,"b":..,"c":..}, ...]}
  std::string DumpJson() const;

  /// Events ever recorded (== the last sequence number handed out).
  int64_t recorded() const {
    return static_cast<int64_t>(next_seq_.load(std::memory_order_relaxed)) -
           1;
  }
  /// Events lost because the thread cap was hit (ring wraparound is not
  /// counted — overwriting old records is the ring working as designed).
  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  int threads_registered() const;
  size_t slots_per_thread() const { return slots_per_thread_; }

  /// Empties every ring and restarts the sequence at 1. Not linearizable
  /// against concurrent writers (a racing Record may survive or vanish);
  /// callers quiesce first — the scenario runner clears between runs,
  /// tests between cases.
  void Clear();

 private:
  /// One ring slot. All fields are atomics so concurrent dump reads are
  /// race-free; `seq` doubles as the per-slot seqlock word (0 = empty or
  /// mid-write).
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> meta{0};  // kind | shard<<16 | thread<<32
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<int64_t> c{0};
  };
  struct Ring {
    uint32_t thread = 0;  // registration index
    std::atomic<uint64_t> next{0};
    std::vector<Slot> slots;
  };

  /// Slow path of Record: registers (or re-finds) the calling thread's
  /// ring under the mutex and refreshes the thread-local cache. Returns
  /// nullptr when the thread cap is hit.
  Ring* RingForThisThread();

  Options options_;
  /// Process-unique instance id (never reused, unlike addresses): the
  /// thread-local ring cache keys on it so a recorder allocated at a
  /// destroyed recorder's address cannot satisfy a stale cache entry.
  const uint64_t instance_id_;
  size_t slots_per_thread_;
  std::atomic<bool> enabled_;
  std::atomic<uint64_t> next_seq_{1};
  std::atomic<int64_t> dropped_{0};
  mutable std::mutex mutex_;  // ring registration, Snapshot iteration, Clear
  std::vector<std::unique_ptr<Ring>> rings_;
  std::unordered_map<std::thread::id, Ring*> ring_of_thread_;
};

/// Tags every event the calling thread records (into any recorder) with a
/// shard index for the duration of the scope — how the sharded router
/// attributes the sub-engine's budget/gamma/GSP/dispatch events to the
/// shard that produced them without plumbing a shard id through the
/// pipeline. Nests; restores the previous tag on destruction.
class ScopedShard {
 public:
  explicit ScopedShard(int shard);
  ~ScopedShard();

  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  int previous_;
};

/// The calling thread's current shard tag (kNoShard outside any scope).
int CurrentShard();

/// Shorthand for FlightRecorder::Global().Record(...) — what the event
/// sites in admission, ledger, dispatch, gamma cache and GSP call.
inline void RecordEvent(EventKind kind, int64_t a = 0, int64_t b = 0,
                        int64_t c = 0) {
  FlightRecorder::Global().Record(kind, a, b, c);
}

}  // namespace crowdrtse::obs

#endif  // CROWDRTSE_OBS_FLIGHT_RECORDER_H_
