#include "graph/connected_components.h"

#include <deque>

namespace crowdrtse::graph {

int Components::LargestComponent() const {
  int best = -1;
  size_t best_size = 0;
  for (int c = 0; c < Count(); ++c) {
    if (members[static_cast<size_t>(c)].size() > best_size) {
      best_size = members[static_cast<size_t>(c)].size();
      best = c;
    }
  }
  return best;
}

Components FindConnectedComponents(const Graph& graph) {
  Components out;
  out.component.assign(static_cast<size_t>(graph.num_roads()), -1);
  for (RoadId start = 0; start < graph.num_roads(); ++start) {
    if (out.component[static_cast<size_t>(start)] != -1) continue;
    const int label = out.Count();
    out.members.emplace_back();
    std::deque<RoadId> queue{start};
    out.component[static_cast<size_t>(start)] = label;
    while (!queue.empty()) {
      const RoadId r = queue.front();
      queue.pop_front();
      out.members[static_cast<size_t>(label)].push_back(r);
      for (const Adjacency& adj : graph.Neighbors(r)) {
        if (out.component[static_cast<size_t>(adj.neighbor)] == -1) {
          out.component[static_cast<size_t>(adj.neighbor)] = label;
          queue.push_back(adj.neighbor);
        }
      }
    }
  }
  return out;
}

std::vector<RoadId> GrowConnectedSubset(const Graph& graph, RoadId seed,
                                        int size) {
  std::vector<RoadId> subset;
  if (!graph.IsValidRoad(seed) || size <= 0) return subset;
  std::vector<bool> visited(static_cast<size_t>(graph.num_roads()), false);
  std::deque<RoadId> queue{seed};
  visited[static_cast<size_t>(seed)] = true;
  while (!queue.empty() && static_cast<int>(subset.size()) < size) {
    const RoadId r = queue.front();
    queue.pop_front();
    subset.push_back(r);
    for (const Adjacency& adj : graph.Neighbors(r)) {
      if (!visited[static_cast<size_t>(adj.neighbor)]) {
        visited[static_cast<size_t>(adj.neighbor)] = true;
        queue.push_back(adj.neighbor);
      }
    }
  }
  return subset;
}

}  // namespace crowdrtse::graph
