#ifndef CROWDRTSE_GRAPH_BFS_H_
#define CROWDRTSE_GRAPH_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Result of a (multi-source) breadth-first traversal: per-road hop count
/// and the roads grouped by hop level. GSP (paper Alg. 5) schedules its
/// iterative updates by ascending hop distance from the crowdsourced roads.
struct HopLevels {
  /// hops[r] = minimum hop count from any source; -1 if unreachable.
  std::vector<int> hops;
  /// levels[l] = roads exactly l hops away; levels[0] are the sources.
  std::vector<std::vector<RoadId>> levels;

  int MaxHop() const { return static_cast<int>(levels.size()) - 1; }
};

/// Multi-source BFS from `sources`. Duplicate sources are tolerated.
HopLevels MultiSourceBfs(const Graph& graph,
                         const std::vector<RoadId>& sources);

/// Flat (allocation-reusing) form of HopLevels: one contiguous visit
/// sequence plus level offsets, instead of one vector per level. The GSP
/// arena keeps an instance alive per thread so a query's BFS levelling
/// costs zero mallocs after warm-up. Road order within each level is
/// identical to HopLevels::levels — GSP's sequential sweep order (and so
/// its bit-exact result) does not depend on which form schedules it.
struct FlatHopLevels {
  /// hops[r] = minimum hop count from any source; -1 if unreachable.
  std::vector<int> hops;
  /// Roads in BFS discovery order, level-contiguous.
  std::vector<RoadId> order;
  /// Level l spans order[level_offsets[l], level_offsets[l+1]).
  std::vector<int32_t> level_offsets;

  int num_levels() const {
    return static_cast<int>(level_offsets.empty()
                                ? 0
                                : level_offsets.size() - 1);
  }
};

/// Multi-source BFS writing into `out`'s existing buffers (cleared, not
/// reallocated, when capacities suffice). Duplicate sources are tolerated.
void MultiSourceBfsInto(const Graph& graph,
                        const std::vector<RoadId>& sources,
                        FlatHopLevels& out);

/// Roads within `max_hops` of any of `sources` (the sources themselves are
/// 0 hops away and included). Used for the paper's Table III k-hop coverage
/// metric.
std::vector<RoadId> RoadsWithinHops(const Graph& graph,
                                    const std::vector<RoadId>& sources,
                                    int max_hops);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_BFS_H_
