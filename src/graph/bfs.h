#ifndef CROWDRTSE_GRAPH_BFS_H_
#define CROWDRTSE_GRAPH_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Result of a (multi-source) breadth-first traversal: per-road hop count
/// and the roads grouped by hop level. GSP (paper Alg. 5) schedules its
/// iterative updates by ascending hop distance from the crowdsourced roads.
struct HopLevels {
  /// hops[r] = minimum hop count from any source; -1 if unreachable.
  std::vector<int> hops;
  /// levels[l] = roads exactly l hops away; levels[0] are the sources.
  std::vector<std::vector<RoadId>> levels;

  int MaxHop() const { return static_cast<int>(levels.size()) - 1; }
};

/// Multi-source BFS from `sources`. Duplicate sources are tolerated.
HopLevels MultiSourceBfs(const Graph& graph,
                         const std::vector<RoadId>& sources);

/// Roads within `max_hops` of any of `sources` (the sources themselves are
/// 0 hops away and included). Used for the paper's Table III k-hop coverage
/// metric.
std::vector<RoadId> RoadsWithinHops(const Graph& graph,
                                    const std::vector<RoadId>& sources,
                                    int max_hops);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_BFS_H_
