#ifndef CROWDRTSE_GRAPH_GRAPH_IO_H_
#define CROWDRTSE_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::graph {

/// Serialises a graph as an edge-list text format:
///   line 1: "<num_roads> <num_edges>"
///   then one "a b" pair per edge, in edge-id order.
std::string ToEdgeList(const Graph& graph);

/// Streams the edge-list format to `out` without materialising the whole
/// text (a 600k-road metro network is tens of MB of text).
util::Status WriteEdgeList(std::ostream& out, const Graph& graph);

/// Parses the edge-list format produced by ToEdgeList.
util::Result<Graph> FromEdgeList(const std::string& text);

/// Streaming parser: reads the edge list directly from `in`. File loads go
/// through here, so a metro-scale graph is never duplicated as one giant
/// in-memory string on the way in.
util::Result<Graph> ReadEdgeList(std::istream& in);

/// File round-trip helpers (both stream; neither buffers the full text).
util::Status WriteEdgeListFile(const std::string& path, const Graph& graph);
util::Result<Graph> ReadEdgeListFile(const std::string& path);

/// FNV-1a digest over (num_roads, num_edges, every edge's endpoints in
/// edge-id order). Artifacts derived from a graph — partition tables in
/// particular — store this so loading them against a different (or
/// re-generated) network fails loudly instead of mis-indexing roads.
uint64_t EdgeListChecksum(const Graph& graph);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_GRAPH_IO_H_
