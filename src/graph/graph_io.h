#ifndef CROWDRTSE_GRAPH_GRAPH_IO_H_
#define CROWDRTSE_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace crowdrtse::graph {

/// Serialises a graph as an edge-list text format:
///   line 1: "<num_roads> <num_edges>"
///   then one "a b" pair per edge, in edge-id order.
std::string ToEdgeList(const Graph& graph);

/// Parses the edge-list format produced by ToEdgeList.
util::Result<Graph> FromEdgeList(const std::string& text);

/// File round-trip helpers.
util::Status WriteEdgeListFile(const std::string& path, const Graph& graph);
util::Result<Graph> ReadEdgeListFile(const std::string& path);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_GRAPH_IO_H_
