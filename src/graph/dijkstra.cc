#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace crowdrtse::graph {

ShortestPaths Dijkstra(const Graph& graph, RoadId source,
                       const std::function<double(EdgeId)>& edge_weight) {
  const size_t n = static_cast<size_t>(graph.num_roads());
  ShortestPaths out;
  out.distance.assign(n, kUnreachable);
  out.parent.assign(n, kInvalidRoad);
  if (!graph.IsValidRoad(source)) return out;

  using Entry = std::pair<double, RoadId>;  // (distance, road)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  out.distance[static_cast<size_t>(source)] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, road] = heap.top();
    heap.pop();
    if (dist > out.distance[static_cast<size_t>(road)]) continue;  // stale
    for (const Adjacency& adj : graph.Neighbors(road)) {
      const double w = edge_weight(adj.edge);
      if (w < 0.0 || w == kUnreachable) continue;  // treat as impassable
      const double candidate = dist + w;
      if (candidate < out.distance[static_cast<size_t>(adj.neighbor)]) {
        out.distance[static_cast<size_t>(adj.neighbor)] = candidate;
        out.parent[static_cast<size_t>(adj.neighbor)] = road;
        heap.emplace(candidate, adj.neighbor);
      }
    }
  }
  return out;
}

void DijkstraInto(const Graph& graph, RoadId source,
                  std::span<const double> edge_weight,
                  DijkstraWorkspace& ws) {
  const size_t n = static_cast<size_t>(graph.num_roads());
  ws.distance.assign(n, kUnreachable);
  ws.parent.assign(n, kInvalidRoad);
  ws.heap.clear();
  if (!graph.IsValidRoad(source)) return;

  // std::priority_queue is specified in terms of push_heap/pop_heap, so
  // driving those directly over the reused buffer pops entries in exactly
  // the same sequence as Dijkstra() above — distances, parents, and even
  // tie-breaks match bit for bit.
  using Entry = std::pair<double, RoadId>;
  const auto greater = std::greater<Entry>{};
  ws.distance[static_cast<size_t>(source)] = 0.0;
  ws.heap.emplace_back(0.0, source);
  while (!ws.heap.empty()) {
    const auto [dist, road] = ws.heap.front();
    std::pop_heap(ws.heap.begin(), ws.heap.end(), greater);
    ws.heap.pop_back();
    if (dist > ws.distance[static_cast<size_t>(road)]) continue;  // stale
    for (const Adjacency& adj : graph.Neighbors(road)) {
      const double w = edge_weight[static_cast<size_t>(adj.edge)];
      if (w < 0.0 || w == kUnreachable) continue;  // treat as impassable
      const double candidate = dist + w;
      if (candidate < ws.distance[static_cast<size_t>(adj.neighbor)]) {
        ws.distance[static_cast<size_t>(adj.neighbor)] = candidate;
        ws.parent[static_cast<size_t>(adj.neighbor)] = road;
        ws.heap.emplace_back(candidate, adj.neighbor);
        std::push_heap(ws.heap.begin(), ws.heap.end(), greater);
      }
    }
  }
}

std::vector<RoadId> ReconstructPath(const ShortestPaths& tree, RoadId source,
                                    RoadId target) {
  std::vector<RoadId> path;
  if (target < 0 ||
      static_cast<size_t>(target) >= tree.distance.size() ||
      tree.distance[static_cast<size_t>(target)] == kUnreachable) {
    return path;
  }
  for (RoadId r = target; r != kInvalidRoad;
       r = tree.parent[static_cast<size_t>(r)]) {
    path.push_back(r);
    if (r == source) break;
  }
  if (path.empty() || path.back() != source) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace crowdrtse::graph
