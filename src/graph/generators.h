#ifndef CROWDRTSE_GRAPH_GENERATORS_H_
#define CROWDRTSE_GRAPH_GENERATORS_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::graph {

/// Rows x cols 4-connected grid; the classic synthetic road mesh.
util::Result<Graph> GridNetwork(int rows, int cols);

/// Cycle of n roads (n >= 3).
util::Result<Graph> RingNetwork(int num_roads);

/// Path of n roads.
util::Result<Graph> PathNetwork(int num_roads);

/// Barabasi-Albert preferential-attachment graph: each new road attaches to
/// `edges_per_road` existing roads, degree-proportionally. Produces the
/// hub-and-spoke skeleton of arterial roads.
util::Result<Graph> ScaleFreeNetwork(int num_roads, int edges_per_road,
                                     util::Rng& rng);

/// Configuration for the "Hong-Kong-like" irregular road network used by the
/// semi-synthetic experiments (the paper's network has 607 monitored roads,
/// sparse connectivity, mostly planar).
struct RoadNetworkOptions {
  int num_roads = 607;
  /// Every road connects to its nearest neighbours in the synthetic plane.
  int neighbors_per_road = 2;
  /// Fraction of extra long-range "flyover" edges relative to num_roads.
  double extra_edge_fraction = 0.05;
};

/// Planar-ish irregular network: roads are random points in the unit
/// square, each joined to its nearest neighbours; components are then
/// stitched together so the result is connected. Average degree lands
/// around 2*(neighbors_per_road)*(1 - dedup loss) + extras, i.e. ~3-4 for
/// the defaults, matching urban road-graph sparsity.
///
/// When `positions` is non-null it receives each road's (x, y) in the unit
/// square — the synthetic map used for rendering and geometry.
util::Result<Graph> RoadNetwork(
    const RoadNetworkOptions& options, util::Rng& rng,
    std::vector<std::pair<double, double>>* positions = nullptr);

/// Configuration for the metropolitan-scale synthetic network. Unlike
/// RoadNetwork (O(n^2) nearest-neighbour scan, fine at 607 roads, hopeless
/// at 600k), MetroNetwork is O(n): a rows x cols street grid laid out on
/// the unit square, overlaid with limited-access arterials (chords that
/// skip `arterial_spacing` blocks along every arterial row/column) and
/// concentric ring roads (chords along the square rings at evenly spaced
/// radii). Average degree stays urban-sparse (~4-5).
struct MetroNetworkOptions {
  /// Target road count; the actual count is the nearest rows*cols grid
  /// (reported by the returned graph's num_roads()).
  int num_roads = 60000;
  /// Width/height ratio of the grid (1.0 = square city).
  double aspect_ratio = 1.0;
  /// Every `arterial_spacing`-th row/column is an arterial whose cells gain
  /// chords skipping `arterial_spacing` blocks. 0 disables arterials.
  int arterial_spacing = 16;
  /// Number of concentric ring roads (orbital chords). 0 disables rings.
  int num_ring_roads = 3;
};

/// Deterministic (no RNG) metro network; `positions` receives each road's
/// (x, y) in the unit square when non-null — the partitioner's geographic
/// bisection input.
util::Result<Graph> MetroNetwork(
    const MetroNetworkOptions& options,
    std::vector<std::pair<double, double>>* positions = nullptr);

/// Induced subgraph over `roads` (paper Fig. 5 trains RTF on sub-networks
/// of 150..600 roads). Returns the graph plus the mapping new-id -> old-id.
struct Subgraph {
  Graph graph;
  std::vector<RoadId> original_ids;
};
util::Result<Subgraph> InducedSubgraph(const Graph& graph,
                                       const std::vector<RoadId>& roads);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_GENERATORS_H_
