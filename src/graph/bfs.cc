#include "graph/bfs.h"

#include <deque>

namespace crowdrtse::graph {

HopLevels MultiSourceBfs(const Graph& graph,
                         const std::vector<RoadId>& sources) {
  HopLevels out;
  out.hops.assign(static_cast<size_t>(graph.num_roads()), -1);
  std::deque<RoadId> queue;
  for (RoadId s : sources) {
    if (!graph.IsValidRoad(s)) continue;
    if (out.hops[static_cast<size_t>(s)] == 0) continue;  // duplicate source
    out.hops[static_cast<size_t>(s)] = 0;
    queue.push_back(s);
  }
  if (!queue.empty()) out.levels.emplace_back(queue.begin(), queue.end());
  while (!queue.empty()) {
    const RoadId r = queue.front();
    queue.pop_front();
    const int next_hop = out.hops[static_cast<size_t>(r)] + 1;
    for (const Adjacency& adj : graph.Neighbors(r)) {
      if (out.hops[static_cast<size_t>(adj.neighbor)] != -1) continue;
      out.hops[static_cast<size_t>(adj.neighbor)] = next_hop;
      if (static_cast<size_t>(next_hop) >= out.levels.size()) {
        out.levels.emplace_back();
      }
      out.levels[static_cast<size_t>(next_hop)].push_back(adj.neighbor);
      queue.push_back(adj.neighbor);
    }
  }
  return out;
}

std::vector<RoadId> RoadsWithinHops(const Graph& graph,
                                    const std::vector<RoadId>& sources,
                                    int max_hops) {
  const HopLevels levels = MultiSourceBfs(graph, sources);
  std::vector<RoadId> out;
  for (int l = 0; l <= max_hops && l < static_cast<int>(levels.levels.size());
       ++l) {
    const auto& level = levels.levels[static_cast<size_t>(l)];
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace crowdrtse::graph
