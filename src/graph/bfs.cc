#include "graph/bfs.h"

#include <utility>

namespace crowdrtse::graph {

void MultiSourceBfsInto(const Graph& graph,
                        const std::vector<RoadId>& sources,
                        FlatHopLevels& out) {
  out.hops.assign(static_cast<size_t>(graph.num_roads()), -1);
  out.order.clear();
  out.level_offsets.clear();
  for (RoadId s : sources) {
    if (!graph.IsValidRoad(s)) continue;
    if (out.hops[static_cast<size_t>(s)] == 0) continue;  // duplicate source
    out.hops[static_cast<size_t>(s)] = 0;
    out.order.push_back(s);
  }
  if (out.order.empty()) return;
  out.level_offsets.push_back(0);
  out.level_offsets.push_back(static_cast<int32_t>(out.order.size()));
  // FIFO processing discovers each level contiguously: every hop-(h+1) road
  // is appended while hop-h roads drain, in the same relative order the
  // per-level vectors of HopLevels receive them.
  size_t head = 0;
  int deepest = 0;
  while (head < out.order.size()) {
    const RoadId r = out.order[head++];
    const int next_hop = out.hops[static_cast<size_t>(r)] + 1;
    for (const Adjacency& adj : graph.Neighbors(r)) {
      if (out.hops[static_cast<size_t>(adj.neighbor)] != -1) continue;
      out.hops[static_cast<size_t>(adj.neighbor)] = next_hop;
      if (next_hop > deepest) {
        deepest = next_hop;
        out.level_offsets.push_back(out.level_offsets.back());
      }
      out.order.push_back(adj.neighbor);
      out.level_offsets.back() = static_cast<int32_t>(out.order.size());
    }
  }
}

HopLevels MultiSourceBfs(const Graph& graph,
                         const std::vector<RoadId>& sources) {
  FlatHopLevels flat;
  MultiSourceBfsInto(graph, sources, flat);
  HopLevels out;
  out.hops = std::move(flat.hops);
  out.levels.reserve(static_cast<size_t>(flat.num_levels()));
  for (int l = 0; l < flat.num_levels(); ++l) {
    const auto begin =
        flat.order.begin() + flat.level_offsets[static_cast<size_t>(l)];
    const auto end =
        flat.order.begin() + flat.level_offsets[static_cast<size_t>(l) + 1];
    out.levels.emplace_back(begin, end);
  }
  return out;
}

std::vector<RoadId> RoadsWithinHops(const Graph& graph,
                                    const std::vector<RoadId>& sources,
                                    int max_hops) {
  const HopLevels levels = MultiSourceBfs(graph, sources);
  std::vector<RoadId> out;
  for (int l = 0; l <= max_hops && l < static_cast<int>(levels.levels.size());
       ++l) {
    const auto& level = levels.levels[static_cast<size_t>(l)];
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace crowdrtse::graph
