#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "graph/connected_components.h"

namespace crowdrtse::graph {

util::Result<Graph> GridNetwork(int rows, int cols) {
  if (rows <= 0 || cols <= 0) {
    return util::Status::InvalidArgument("grid dimensions must be positive");
  }
  GraphBuilder builder(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const RoadId id = r * cols + c;
      if (c + 1 < cols) builder.AddEdge(id, id + 1);
      if (r + 1 < rows) builder.AddEdge(id, id + cols);
    }
  }
  return builder.Build();
}

util::Result<Graph> RingNetwork(int num_roads) {
  if (num_roads < 3) {
    return util::Status::InvalidArgument("ring needs at least 3 roads");
  }
  GraphBuilder builder(num_roads);
  for (int i = 0; i < num_roads; ++i) {
    builder.AddEdge(i, (i + 1) % num_roads);
  }
  return builder.Build();
}

util::Result<Graph> PathNetwork(int num_roads) {
  if (num_roads < 1) {
    return util::Status::InvalidArgument("path needs at least 1 road");
  }
  GraphBuilder builder(num_roads);
  for (int i = 0; i + 1 < num_roads; ++i) builder.AddEdge(i, i + 1);
  return builder.Build();
}

util::Result<Graph> ScaleFreeNetwork(int num_roads, int edges_per_road,
                                     util::Rng& rng) {
  if (num_roads < 2 || edges_per_road < 1 ||
      edges_per_road >= num_roads) {
    return util::Status::InvalidArgument(
        "scale-free network needs num_roads >= 2 and 1 <= m < num_roads");
  }
  GraphBuilder builder(num_roads);
  // Repeated-endpoint list: sampling uniformly from it is degree-
  // proportional preferential attachment.
  std::vector<RoadId> endpoint_pool;
  const int seed_size = edges_per_road + 1;
  for (int i = 0; i < seed_size; ++i) {
    for (int j = i + 1; j < seed_size; ++j) {
      builder.AddEdge(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }
  for (int v = seed_size; v < num_roads; ++v) {
    std::set<RoadId> targets;
    while (static_cast<int>(targets.size()) < edges_per_road) {
      const RoadId candidate = endpoint_pool[static_cast<size_t>(
          rng.UniformUint64(endpoint_pool.size()))];
      targets.insert(candidate);
    }
    for (RoadId t : targets) {
      builder.AddEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.Build();
}

util::Result<Graph> RoadNetwork(
    const RoadNetworkOptions& options, util::Rng& rng,
    std::vector<std::pair<double, double>>* positions) {
  const int n = options.num_roads;
  if (n < 2) {
    return util::Status::InvalidArgument("road network needs >= 2 roads");
  }
  if (options.neighbors_per_road < 1) {
    return util::Status::InvalidArgument("neighbors_per_road must be >= 1");
  }
  std::vector<std::pair<double, double>> points(static_cast<size_t>(n));
  for (auto& [x, y] : points) {
    x = rng.UniformDouble();
    y = rng.UniformDouble();
  }
  if (positions != nullptr) *positions = points;
  const auto squared_distance = [&](RoadId a, RoadId b) {
    const double dx = points[static_cast<size_t>(a)].first -
                      points[static_cast<size_t>(b)].first;
    const double dy = points[static_cast<size_t>(a)].second -
                      points[static_cast<size_t>(b)].second;
    return dx * dx + dy * dy;
  };

  std::set<std::pair<RoadId, RoadId>> edges;
  const auto add_edge = [&](RoadId a, RoadId b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    edges.emplace(a, b);
  };

  // Join each road to its nearest neighbours in the plane.
  const int k = std::min(options.neighbors_per_road, n - 1);
  std::vector<std::pair<double, RoadId>> by_distance(
      static_cast<size_t>(n));
  for (RoadId a = 0; a < n; ++a) {
    by_distance.clear();
    for (RoadId b = 0; b < n; ++b) {
      if (b != a) by_distance.emplace_back(squared_distance(a, b), b);
    }
    std::partial_sort(by_distance.begin(),
                      by_distance.begin() + k, by_distance.end());
    for (int i = 0; i < k; ++i) add_edge(a, by_distance[static_cast<size_t>(i)].second);
  }

  // A few long-range chords: flyovers / tunnels.
  const int extras =
      static_cast<int>(options.extra_edge_fraction * static_cast<double>(n));
  for (int i = 0; i < extras; ++i) {
    const RoadId a = static_cast<RoadId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    const RoadId b = static_cast<RoadId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    add_edge(a, b);
  }

  // Stitch disconnected components together through their closest pair.
  for (;;) {
    GraphBuilder probe(n);
    for (const auto& [a, b] : edges) probe.AddEdge(a, b);
    util::Result<Graph> built = probe.Build();
    if (!built.ok()) return built.status();
    const Components components = FindConnectedComponents(*built);
    if (components.Count() <= 1) return built;
    // Connect component 0 to the closest road of another component.
    const auto& base = components.members[0];
    double best = std::numeric_limits<double>::infinity();
    RoadId best_a = kInvalidRoad;
    RoadId best_b = kInvalidRoad;
    for (RoadId a : base) {
      for (RoadId b = 0; b < n; ++b) {
        if (components.component[static_cast<size_t>(b)] == 0) continue;
        const double d = squared_distance(a, b);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    add_edge(best_a, best_b);
  }
}

util::Result<Graph> MetroNetwork(
    const MetroNetworkOptions& options,
    std::vector<std::pair<double, double>>* positions) {
  if (options.num_roads < 4) {
    return util::Status::InvalidArgument(
        "metro network needs at least 4 roads");
  }
  if (!(options.aspect_ratio > 0.0)) {
    return util::Status::InvalidArgument("aspect ratio must be positive");
  }
  if (options.arterial_spacing < 0 || options.num_ring_roads < 0) {
    return util::Status::InvalidArgument(
        "arterial spacing and ring count must be >= 0");
  }

  // rows*cols lands at (or just above) the target with cols/rows near the
  // aspect ratio. Everything below is a pure function of the options —
  // deterministic by construction, no RNG.
  const double target = static_cast<double>(options.num_roads);
  int rows = std::max(
      2, static_cast<int>(std::llround(
             std::sqrt(target / options.aspect_ratio))));
  const int cols = std::max(2, (options.num_roads + rows - 1) / rows);
  const auto id = [&](int r, int c) {
    return static_cast<RoadId>(r * cols + c);
  };

  GraphBuilder builder(rows * cols);
  // Street grid: 4-connected lattice.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }

  // Overlay chords (arterials + ring roads) deduplicate through one set;
  // every chord spans >= 2 cells in some direction, so none can collide
  // with a grid edge. The set stays tiny (O(n / spacing)).
  std::set<std::pair<RoadId, RoadId>> chords;
  const auto add_chord = [&](RoadId a, RoadId b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    if (chords.emplace(a, b).second) builder.AddEdge(a, b);
  };

  const int spacing = options.arterial_spacing;
  if (spacing >= 2) {
    for (int r = 0; r < rows; r += spacing) {
      for (int c = 0; c + spacing < cols; c += spacing) {
        add_chord(id(r, c), id(r, c + spacing));
      }
    }
    for (int c = 0; c < cols; c += spacing) {
      for (int r = 0; r + spacing < rows; r += spacing) {
        add_chord(id(r, c), id(r + spacing, c));
      }
    }
  }

  // Concentric ring roads: chords with stride 2 along the border of evenly
  // inset rectangles (orbitals around the centre).
  for (int k = 1; k <= options.num_ring_roads; ++k) {
    const int inset_r = k * rows / (2 * (options.num_ring_roads + 1));
    const int inset_c = k * cols / (2 * (options.num_ring_roads + 1));
    const int r0 = inset_r;
    const int r1 = rows - 1 - inset_r;
    const int c0 = inset_c;
    const int c1 = cols - 1 - inset_c;
    if (r1 - r0 < 2 || c1 - c0 < 2) continue;
    for (int c = c0; c + 2 <= c1; c += 2) {
      add_chord(id(r0, c), id(r0, c + 2));
      add_chord(id(r1, c), id(r1, c + 2));
    }
    for (int r = r0; r + 2 <= r1; r += 2) {
      add_chord(id(r, c0), id(r + 2, c0));
      add_chord(id(r, c1), id(r + 2, c1));
    }
  }

  if (positions != nullptr) {
    positions->clear();
    positions->reserve(static_cast<size_t>(rows) *
                       static_cast<size_t>(cols));
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        positions->emplace_back(
            static_cast<double>(c) / static_cast<double>(cols - 1),
            static_cast<double>(r) / static_cast<double>(rows - 1));
      }
    }
  }
  return builder.Build();
}

util::Result<Subgraph> InducedSubgraph(const Graph& graph,
                                       const std::vector<RoadId>& roads) {
  std::vector<RoadId> old_to_new(static_cast<size_t>(graph.num_roads()),
                                 kInvalidRoad);
  Subgraph out;
  out.original_ids.reserve(roads.size());
  for (RoadId r : roads) {
    if (!graph.IsValidRoad(r)) {
      return util::Status::InvalidArgument("road id out of range: " +
                                           std::to_string(r));
    }
    if (old_to_new[static_cast<size_t>(r)] != kInvalidRoad) {
      return util::Status::InvalidArgument("duplicate road id: " +
                                           std::to_string(r));
    }
    old_to_new[static_cast<size_t>(r)] =
        static_cast<RoadId>(out.original_ids.size());
    out.original_ids.push_back(r);
  }
  GraphBuilder builder(static_cast<int>(roads.size()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    const RoadId na = old_to_new[static_cast<size_t>(a)];
    const RoadId nb = old_to_new[static_cast<size_t>(b)];
    if (na != kInvalidRoad && nb != kInvalidRoad) builder.AddEdge(na, nb);
  }
  util::Result<Graph> built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(*built);
  return out;
}

}  // namespace crowdrtse::graph
