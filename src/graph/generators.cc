#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <utility>

#include "graph/connected_components.h"

namespace crowdrtse::graph {

util::Result<Graph> GridNetwork(int rows, int cols) {
  if (rows <= 0 || cols <= 0) {
    return util::Status::InvalidArgument("grid dimensions must be positive");
  }
  GraphBuilder builder(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const RoadId id = r * cols + c;
      if (c + 1 < cols) builder.AddEdge(id, id + 1);
      if (r + 1 < rows) builder.AddEdge(id, id + cols);
    }
  }
  return builder.Build();
}

util::Result<Graph> RingNetwork(int num_roads) {
  if (num_roads < 3) {
    return util::Status::InvalidArgument("ring needs at least 3 roads");
  }
  GraphBuilder builder(num_roads);
  for (int i = 0; i < num_roads; ++i) {
    builder.AddEdge(i, (i + 1) % num_roads);
  }
  return builder.Build();
}

util::Result<Graph> PathNetwork(int num_roads) {
  if (num_roads < 1) {
    return util::Status::InvalidArgument("path needs at least 1 road");
  }
  GraphBuilder builder(num_roads);
  for (int i = 0; i + 1 < num_roads; ++i) builder.AddEdge(i, i + 1);
  return builder.Build();
}

util::Result<Graph> ScaleFreeNetwork(int num_roads, int edges_per_road,
                                     util::Rng& rng) {
  if (num_roads < 2 || edges_per_road < 1 ||
      edges_per_road >= num_roads) {
    return util::Status::InvalidArgument(
        "scale-free network needs num_roads >= 2 and 1 <= m < num_roads");
  }
  GraphBuilder builder(num_roads);
  // Repeated-endpoint list: sampling uniformly from it is degree-
  // proportional preferential attachment.
  std::vector<RoadId> endpoint_pool;
  const int seed_size = edges_per_road + 1;
  for (int i = 0; i < seed_size; ++i) {
    for (int j = i + 1; j < seed_size; ++j) {
      builder.AddEdge(i, j);
      endpoint_pool.push_back(i);
      endpoint_pool.push_back(j);
    }
  }
  for (int v = seed_size; v < num_roads; ++v) {
    std::set<RoadId> targets;
    while (static_cast<int>(targets.size()) < edges_per_road) {
      const RoadId candidate = endpoint_pool[static_cast<size_t>(
          rng.UniformUint64(endpoint_pool.size()))];
      targets.insert(candidate);
    }
    for (RoadId t : targets) {
      builder.AddEdge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return builder.Build();
}

util::Result<Graph> RoadNetwork(
    const RoadNetworkOptions& options, util::Rng& rng,
    std::vector<std::pair<double, double>>* positions) {
  const int n = options.num_roads;
  if (n < 2) {
    return util::Status::InvalidArgument("road network needs >= 2 roads");
  }
  if (options.neighbors_per_road < 1) {
    return util::Status::InvalidArgument("neighbors_per_road must be >= 1");
  }
  std::vector<std::pair<double, double>> points(static_cast<size_t>(n));
  for (auto& [x, y] : points) {
    x = rng.UniformDouble();
    y = rng.UniformDouble();
  }
  if (positions != nullptr) *positions = points;
  const auto squared_distance = [&](RoadId a, RoadId b) {
    const double dx = points[static_cast<size_t>(a)].first -
                      points[static_cast<size_t>(b)].first;
    const double dy = points[static_cast<size_t>(a)].second -
                      points[static_cast<size_t>(b)].second;
    return dx * dx + dy * dy;
  };

  std::set<std::pair<RoadId, RoadId>> edges;
  const auto add_edge = [&](RoadId a, RoadId b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    edges.emplace(a, b);
  };

  // Join each road to its nearest neighbours in the plane.
  const int k = std::min(options.neighbors_per_road, n - 1);
  std::vector<std::pair<double, RoadId>> by_distance(
      static_cast<size_t>(n));
  for (RoadId a = 0; a < n; ++a) {
    by_distance.clear();
    for (RoadId b = 0; b < n; ++b) {
      if (b != a) by_distance.emplace_back(squared_distance(a, b), b);
    }
    std::partial_sort(by_distance.begin(),
                      by_distance.begin() + k, by_distance.end());
    for (int i = 0; i < k; ++i) add_edge(a, by_distance[static_cast<size_t>(i)].second);
  }

  // A few long-range chords: flyovers / tunnels.
  const int extras =
      static_cast<int>(options.extra_edge_fraction * static_cast<double>(n));
  for (int i = 0; i < extras; ++i) {
    const RoadId a = static_cast<RoadId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    const RoadId b = static_cast<RoadId>(rng.UniformUint64(
        static_cast<uint64_t>(n)));
    add_edge(a, b);
  }

  // Stitch disconnected components together through their closest pair.
  for (;;) {
    GraphBuilder probe(n);
    for (const auto& [a, b] : edges) probe.AddEdge(a, b);
    util::Result<Graph> built = probe.Build();
    if (!built.ok()) return built.status();
    const Components components = FindConnectedComponents(*built);
    if (components.Count() <= 1) return built;
    // Connect component 0 to the closest road of another component.
    const auto& base = components.members[0];
    double best = std::numeric_limits<double>::infinity();
    RoadId best_a = kInvalidRoad;
    RoadId best_b = kInvalidRoad;
    for (RoadId a : base) {
      for (RoadId b = 0; b < n; ++b) {
        if (components.component[static_cast<size_t>(b)] == 0) continue;
        const double d = squared_distance(a, b);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    add_edge(best_a, best_b);
  }
}

util::Result<Subgraph> InducedSubgraph(const Graph& graph,
                                       const std::vector<RoadId>& roads) {
  std::vector<RoadId> old_to_new(static_cast<size_t>(graph.num_roads()),
                                 kInvalidRoad);
  Subgraph out;
  out.original_ids.reserve(roads.size());
  for (RoadId r : roads) {
    if (!graph.IsValidRoad(r)) {
      return util::Status::InvalidArgument("road id out of range: " +
                                           std::to_string(r));
    }
    if (old_to_new[static_cast<size_t>(r)] != kInvalidRoad) {
      return util::Status::InvalidArgument("duplicate road id: " +
                                           std::to_string(r));
    }
    old_to_new[static_cast<size_t>(r)] =
        static_cast<RoadId>(out.original_ids.size());
    out.original_ids.push_back(r);
  }
  GraphBuilder builder(static_cast<int>(roads.size()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    const RoadId na = old_to_new[static_cast<size_t>(a)];
    const RoadId nb = old_to_new[static_cast<size_t>(b)];
    if (na != kInvalidRoad && nb != kInvalidRoad) builder.AddEdge(na, nb);
  }
  util::Result<Graph> built = builder.Build();
  if (!built.ok()) return built.status();
  out.graph = std::move(*built);
  return out;
}

}  // namespace crowdrtse::graph
