#ifndef CROWDRTSE_GRAPH_ROAD_GEOMETRY_H_
#define CROWDRTSE_GRAPH_ROAD_GEOMETRY_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdrtse::graph {

/// Physical road lengths, the attribute the paper's experiments lacked
/// ("road-length or travel cost would be more meaningful choices ... such
/// kinds of auxiliary information are not included"). The trajectory
/// simulator derives traversal times — and therefore worker speed reports —
/// from these.
class RoadGeometry {
 public:
  RoadGeometry() = default;

  /// Uniform-random lengths in [min_km, max_km] per road.
  static util::Result<RoadGeometry> UniformRandom(int num_roads,
                                                  double min_km,
                                                  double max_km,
                                                  util::Rng& rng);

  /// Every road `km` long.
  static RoadGeometry Constant(int num_roads, double km);

  /// Wraps an explicit per-road length vector (e.g. lengths compiled from
  /// a scenario sketch's tags). Every length must be positive.
  static util::Result<RoadGeometry> FromLengths(std::vector<double> km);

  int num_roads() const { return static_cast<int>(length_km_.size()); }
  double LengthKm(RoadId road) const {
    return length_km_[static_cast<size_t>(road)];
  }
  const std::vector<double>& lengths_km() const { return length_km_; }

  /// Minutes to traverse `road` at `speed_kmh` (infinite for speed <= 0).
  double TravelMinutes(RoadId road, double speed_kmh) const;

  /// Total length of a road sequence.
  double PathLengthKm(const std::vector<RoadId>& roads) const;

 private:
  std::vector<double> length_km_;
};

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_ROAD_GEOMETRY_H_
