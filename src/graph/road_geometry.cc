#include "graph/road_geometry.h"

#include <limits>

namespace crowdrtse::graph {

util::Result<RoadGeometry> RoadGeometry::UniformRandom(int num_roads,
                                                       double min_km,
                                                       double max_km,
                                                       util::Rng& rng) {
  if (num_roads < 0) {
    return util::Status::InvalidArgument("negative road count");
  }
  if (min_km <= 0.0 || max_km < min_km) {
    return util::Status::InvalidArgument(
        "lengths must satisfy 0 < min <= max");
  }
  RoadGeometry geometry;
  geometry.length_km_.resize(static_cast<size_t>(num_roads));
  for (double& km : geometry.length_km_) {
    km = rng.UniformDouble(min_km, max_km);
  }
  return geometry;
}

RoadGeometry RoadGeometry::Constant(int num_roads, double km) {
  RoadGeometry geometry;
  geometry.length_km_.assign(static_cast<size_t>(num_roads), km);
  return geometry;
}

util::Result<RoadGeometry> RoadGeometry::FromLengths(std::vector<double> km) {
  for (double length : km) {
    if (length <= 0.0) {
      return util::Status::InvalidArgument("road lengths must be positive");
    }
  }
  RoadGeometry geometry;
  geometry.length_km_ = std::move(km);
  return geometry;
}

double RoadGeometry::TravelMinutes(RoadId road, double speed_kmh) const {
  if (speed_kmh <= 0.0) return std::numeric_limits<double>::infinity();
  return LengthKm(road) / speed_kmh * 60.0;
}

double RoadGeometry::PathLengthKm(const std::vector<RoadId>& roads) const {
  double total = 0.0;
  for (RoadId r : roads) total += LengthKm(r);
  return total;
}

}  // namespace crowdrtse::graph
