#include "graph/coloring.h"

#include <algorithm>
#include <numeric>

namespace crowdrtse::graph {

std::vector<std::vector<RoadId>> Coloring::Classes() const {
  std::vector<std::vector<RoadId>> classes(
      static_cast<size_t>(num_colors));
  for (RoadId r = 0; r < static_cast<RoadId>(color.size()); ++r) {
    classes[static_cast<size_t>(color[static_cast<size_t>(r)])].push_back(r);
  }
  return classes;
}

Coloring GreedyColoring(const Graph& graph) {
  const int n = graph.num_roads();
  Coloring out;
  out.color.assign(static_cast<size_t>(n), -1);

  std::vector<RoadId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](RoadId a, RoadId b) {
    const int da = graph.Degree(a);
    const int db = graph.Degree(b);
    return da != db ? da > db : a < b;
  });

  std::vector<bool> used;
  for (RoadId r : order) {
    used.assign(static_cast<size_t>(graph.Degree(r)) + 1, false);
    for (const Adjacency& adj : graph.Neighbors(r)) {
      const int c = out.color[static_cast<size_t>(adj.neighbor)];
      if (c >= 0 && c < static_cast<int>(used.size())) {
        used[static_cast<size_t>(c)] = true;
      }
    }
    int c = 0;
    while (used[static_cast<size_t>(c)]) ++c;
    out.color[static_cast<size_t>(r)] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

bool IsProperColoring(const Graph& graph, const Coloring& coloring) {
  if (coloring.color.size() != static_cast<size_t>(graph.num_roads())) {
    return false;
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    if (coloring.color[static_cast<size_t>(a)] ==
        coloring.color[static_cast<size_t>(b)]) {
      return false;
    }
  }
  return true;
}

}  // namespace crowdrtse::graph
