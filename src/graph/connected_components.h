#ifndef CROWDRTSE_GRAPH_CONNECTED_COMPONENTS_H_
#define CROWDRTSE_GRAPH_CONNECTED_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Partition of the road set into connected components.
struct Components {
  /// component[r] = component index of road r.
  std::vector<int> component;
  /// members[c] = roads of component c, ordered by road id.
  std::vector<std::vector<RoadId>> members;

  int Count() const { return static_cast<int>(members.size()); }
  /// Index of the component with the most roads; -1 for an empty graph.
  int LargestComponent() const;
};

/// Labels connected components via BFS.
Components FindConnectedComponents(const Graph& graph);

/// Grows a connected subset of exactly `size` roads around `seed` via BFS
/// (or fewer when the component is smaller). The gMission scenario uses this
/// to pick a "mutually connected subcomponent" as the queried roads.
std::vector<RoadId> GrowConnectedSubset(const Graph& graph, RoadId seed,
                                        int size);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_CONNECTED_COMPONENTS_H_
