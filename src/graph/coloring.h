#ifndef CROWDRTSE_GRAPH_COLORING_H_
#define CROWDRTSE_GRAPH_COLORING_H_

#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// A proper vertex colouring: adjacent roads never share a colour.
struct Coloring {
  std::vector<int> color;  // color[r] in [0, num_colors)
  int num_colors = 0;

  /// Roads of each colour class, grouped. Updates within one class touch no
  /// shared neighbours, so parallel GSP runs a class concurrently (the
  /// paper's parallelisation condition: same BFS level AND non-adjacent).
  std::vector<std::vector<RoadId>> Classes() const;
};

/// Greedy (first-fit) colouring in degree-descending order; uses at most
/// max-degree + 1 colours.
Coloring GreedyColoring(const Graph& graph);

/// Verifies that `coloring` is proper for `graph`.
bool IsProperColoring(const Graph& graph, const Coloring& coloring);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_COLORING_H_
