#include "graph/reorder.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

namespace crowdrtse::graph {

namespace {

/// BFS from `start` appending visits to `out`; neighbours enqueue sorted
/// by (degree, id) when `by_degree` is set, by id otherwise (the CSR
/// adjacency is already id-sorted).
void BfsComponent(const Graph& graph, RoadId start, bool by_degree,
                  std::vector<char>& visited, std::vector<RoadId>& out,
                  std::vector<RoadId>& scratch) {
  size_t head = out.size();
  visited[static_cast<size_t>(start)] = 1;
  out.push_back(start);
  while (head < out.size()) {
    const RoadId r = out[head++];
    scratch.clear();
    for (const Adjacency& adj : graph.Neighbors(r)) {
      if (visited[static_cast<size_t>(adj.neighbor)]) continue;
      visited[static_cast<size_t>(adj.neighbor)] = 1;
      scratch.push_back(adj.neighbor);
    }
    if (by_degree) {
      std::sort(scratch.begin(), scratch.end(), [&](RoadId a, RoadId b) {
        const int da = graph.Degree(a);
        const int db = graph.Degree(b);
        return da != db ? da < db : a < b;
      });
    }
    out.insert(out.end(), scratch.begin(), scratch.end());
  }
}

std::vector<RoadId> OrderedVisit(const Graph& graph, bool rcm) {
  const int n = graph.num_roads();
  std::vector<RoadId> order;
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<RoadId> scratch;

  if (rcm) {
    // Component seeds: minimum degree first (the classic CM peripheral
    // heuristic), ties by id, found by one sorted sweep over all roads.
    std::vector<RoadId> seeds(static_cast<size_t>(n));
    std::iota(seeds.begin(), seeds.end(), 0);
    std::sort(seeds.begin(), seeds.end(), [&](RoadId a, RoadId b) {
      const int da = graph.Degree(a);
      const int db = graph.Degree(b);
      return da != db ? da < db : a < b;
    });
    for (RoadId seed : seeds) {
      if (!visited[static_cast<size_t>(seed)]) {
        BfsComponent(graph, seed, /*by_degree=*/true, visited, order,
                     scratch);
      }
    }
    std::reverse(order.begin(), order.end());
  } else {
    for (RoadId seed = 0; seed < n; ++seed) {
      if (!visited[static_cast<size_t>(seed)]) {
        BfsComponent(graph, seed, /*by_degree=*/false, visited, order,
                     scratch);
      }
    }
  }
  return order;
}

}  // namespace

std::vector<RoadId> ReverseCuthillMcKee(const Graph& graph) {
  return OrderedVisit(graph, /*rcm=*/true);
}

std::vector<RoadId> BfsOrdering(const Graph& graph) {
  return OrderedVisit(graph, /*rcm=*/false);
}

bool IsPermutation(const Graph& graph, const std::vector<RoadId>& order) {
  const int n = graph.num_roads();
  if (order.size() != static_cast<size_t>(n)) return false;
  std::vector<char> seen(static_cast<size_t>(n), 0);
  for (RoadId r : order) {
    if (r < 0 || r >= n || seen[static_cast<size_t>(r)]) return false;
    seen[static_cast<size_t>(r)] = 1;
  }
  return true;
}

int64_t OrderingBandwidth(const Graph& graph,
                          const std::vector<RoadId>& order) {
  std::vector<int32_t> rank(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    rank[static_cast<size_t>(order[k])] = static_cast<int32_t>(k);
  }
  int64_t sum = 0;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    sum += std::abs(static_cast<int64_t>(rank[static_cast<size_t>(a)]) -
                    static_cast<int64_t>(rank[static_cast<size_t>(b)]));
  }
  return sum;
}

}  // namespace crowdrtse::graph
