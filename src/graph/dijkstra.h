#ifndef CROWDRTSE_GRAPH_DIJKSTRA_H_
#define CROWDRTSE_GRAPH_DIJKSTRA_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Distance value signalling "unreachable".
constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest path tree: distances and predecessor roads.
struct ShortestPaths {
  std::vector<double> distance;  // kUnreachable when disconnected
  std::vector<RoadId> parent;    // kInvalidRoad at the source / unreachable
};

/// Dijkstra from `source` with per-edge non-negative weights supplied by
/// `edge_weight(EdgeId)`. The RTF correlation table runs this on reciprocal
/// log-correlation weights (paper Eq. 9 turns max-product path correlation
/// into min-sum shortest path).
ShortestPaths Dijkstra(const Graph& graph, RoadId source,
                       const std::function<double(EdgeId)>& edge_weight);

/// Reconstructs the road sequence source..target from a shortest-path tree;
/// empty when the target is unreachable.
std::vector<RoadId> ReconstructPath(const ShortestPaths& tree, RoadId source,
                                    RoadId target);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_DIJKSTRA_H_
