#ifndef CROWDRTSE_GRAPH_DIJKSTRA_H_
#define CROWDRTSE_GRAPH_DIJKSTRA_H_

#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Distance value signalling "unreachable".
constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Single-source shortest path tree: distances and predecessor roads.
struct ShortestPaths {
  std::vector<double> distance;  // kUnreachable when disconnected
  std::vector<RoadId> parent;    // kInvalidRoad at the source / unreachable
};

/// Dijkstra from `source` with per-edge non-negative weights supplied by
/// `edge_weight(EdgeId)`. The RTF correlation table runs this on reciprocal
/// log-correlation weights (paper Eq. 9 turns max-product path correlation
/// into min-sum shortest path).
ShortestPaths Dijkstra(const Graph& graph, RoadId source,
                       const std::function<double(EdgeId)>& edge_weight);

/// Reconstructs the road sequence source..target from a shortest-path tree;
/// empty when the target is unreachable.
std::vector<RoadId> ReconstructPath(const ShortestPaths& tree, RoadId source,
                                    RoadId target);

/// Reusable buffers for DijkstraInto: the Γ_R closure runs one Dijkstra
/// per source road, and per-source malloc of the distance/parent/heap
/// arrays used to dominate small-graph runs. Keep one workspace per worker
/// thread and the fan-out allocates nothing after warm-up.
struct DijkstraWorkspace {
  std::vector<double> distance;
  std::vector<RoadId> parent;
  std::vector<std::pair<double, RoadId>> heap;
};

/// Dijkstra with per-edge weights in a flat array (indexed by EdgeId)
/// instead of a std::function: no per-relaxation indirect call, weights
/// precomputed once for all sources. Weights that are negative or
/// kUnreachable mark the edge impassable, exactly like the callback form.
/// Produces bit-identical distances and parents to Dijkstra() given equal
/// weights (same comparator, same heap algorithm, same visit sequence).
/// Results land in ws.distance / ws.parent.
void DijkstraInto(const Graph& graph, RoadId source,
                  std::span<const double> edge_weight,
                  DijkstraWorkspace& ws);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_DIJKSTRA_H_
