#ifndef CROWDRTSE_GRAPH_REORDER_H_
#define CROWDRTSE_GRAPH_REORDER_H_

#include <vector>

#include "graph/graph.h"

namespace crowdrtse::graph {

/// Reverse Cuthill-McKee ordering of the roads: a bandwidth-reducing
/// permutation that places graph-adjacent roads at nearby positions. The
/// hot kernels (GSP colour-group sweeps, Dijkstra fan-out scans) iterate
/// roads in this order so that consecutive updates touch overlapping cache
/// lines of the speed/parameter arrays instead of striding across them.
///
/// Returned as the visit sequence: order[k] = the road visited k-th.
/// Deterministic: each connected component starts from its minimum-degree
/// road (ties by id) and neighbours enqueue in (degree, id) order; the
/// whole sequence is then reversed (the "reverse" in RCM).
std::vector<RoadId> ReverseCuthillMcKee(const Graph& graph);

/// Plain multi-component BFS ordering from road 0 (components in id
/// order): cheaper than RCM and nearly as local on grid-like road
/// networks. order[k] = the road visited k-th.
std::vector<RoadId> BfsOrdering(const Graph& graph);

/// True when `order` is a permutation of [0, graph.num_roads()).
bool IsPermutation(const Graph& graph, const std::vector<RoadId>& order);

/// Adjacency bandwidth sum under a visit order: sum over edges of
/// |rank[a] - rank[b]| where rank inverts `order`. The locality score the
/// RCM tests gate on (lower = adjacent roads closer together in memory).
int64_t OrderingBandwidth(const Graph& graph,
                          const std::vector<RoadId>& order);

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_REORDER_H_
