#include "graph/graph_io.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

namespace crowdrtse::graph {

std::string ToEdgeList(const Graph& graph) {
  std::ostringstream out;
  WriteEdgeList(out, graph);
  return out.str();
}

util::Status WriteEdgeList(std::ostream& out, const Graph& graph) {
  out << graph.num_roads() << ' ' << graph.num_edges() << '\n';
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    out << a << ' ' << b << '\n';
    if (!out) return util::Status::IoError("edge-list write failed");
  }
  return util::Status::Ok();
}

util::Result<Graph> ReadEdgeList(std::istream& in) {
  int num_roads = 0;
  int num_edges = 0;
  if (!(in >> num_roads >> num_edges)) {
    return util::Status::InvalidArgument("missing edge-list header");
  }
  if (num_roads < 0 || num_edges < 0) {
    return util::Status::InvalidArgument("negative counts in header");
  }
  GraphBuilder builder(num_roads);
  for (int e = 0; e < num_edges; ++e) {
    RoadId a = kInvalidRoad;
    RoadId b = kInvalidRoad;
    if (!(in >> a >> b)) {
      return util::Status::InvalidArgument(
          "edge list truncated at edge " + std::to_string(e));
    }
    builder.AddEdge(a, b);
  }
  return builder.Build();
}

util::Result<Graph> FromEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ReadEdgeList(in);
}

util::Status WriteEdgeListFile(const std::string& path, const Graph& graph) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open " + path);
  const util::Status written = WriteEdgeList(file, graph);
  if (!written.ok()) return written;
  file.flush();
  if (!file) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return util::Status::IoError("cannot open " + path);
  // Streams straight out of the ifstream: no rdbuf slurp, so peak memory
  // is the builder's edge vector, not edge vector + full file text.
  return ReadEdgeList(file);
}

uint64_t EdgeListChecksum(const Graph& graph) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xffull;
      hash *= 1099511628211ull;  // FNV-1a prime
    }
  };
  mix(static_cast<uint64_t>(graph.num_roads()));
  mix(static_cast<uint64_t>(graph.num_edges()));
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    mix(static_cast<uint64_t>(static_cast<uint32_t>(a)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(b)));
  }
  return hash;
}

}  // namespace crowdrtse::graph
