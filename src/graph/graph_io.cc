#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

namespace crowdrtse::graph {

std::string ToEdgeList(const Graph& graph) {
  std::ostringstream out;
  out << graph.num_roads() << ' ' << graph.num_edges() << '\n';
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto [a, b] = graph.EdgeEndpoints(e);
    out << a << ' ' << b << '\n';
  }
  return out.str();
}

util::Result<Graph> FromEdgeList(const std::string& text) {
  std::istringstream in(text);
  int num_roads = 0;
  int num_edges = 0;
  if (!(in >> num_roads >> num_edges)) {
    return util::Status::InvalidArgument("missing edge-list header");
  }
  if (num_roads < 0 || num_edges < 0) {
    return util::Status::InvalidArgument("negative counts in header");
  }
  GraphBuilder builder(num_roads);
  for (int e = 0; e < num_edges; ++e) {
    RoadId a = kInvalidRoad;
    RoadId b = kInvalidRoad;
    if (!(in >> a >> b)) {
      return util::Status::InvalidArgument(
          "edge list truncated at edge " + std::to_string(e));
    }
    builder.AddEdge(a, b);
  }
  return builder.Build();
}

util::Status WriteEdgeListFile(const std::string& path, const Graph& graph) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return util::Status::IoError("cannot open " + path);
  file << ToEdgeList(graph);
  if (!file) return util::Status::IoError("write failed for " + path);
  return util::Status::Ok();
}

util::Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return util::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromEdgeList(buffer.str());
}

}  // namespace crowdrtse::graph
