#ifndef CROWDRTSE_GRAPH_GRAPH_H_
#define CROWDRTSE_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/status.h"

namespace crowdrtse::graph {

/// Road identifier: index into the traffic network's vertex set. In the
/// paper each road is an atomic path interval and a vertex of the graph
/// model G = (R, E).
using RoadId = int32_t;

/// Edge identifier: index into the network's edge set (adjacency between
/// two roads). RTF stores one correlation weight rho per edge per slot,
/// indexed by EdgeId.
using EdgeId = int32_t;

constexpr RoadId kInvalidRoad = -1;
constexpr EdgeId kInvalidEdge = -1;

/// One adjacency entry of the CSR structure: the neighbouring road and the
/// id of the connecting edge.
struct Adjacency {
  RoadId neighbor;
  EdgeId edge;
};

/// Immutable undirected traffic network N(R, E) in compressed sparse row
/// form. Construction goes through GraphBuilder; afterwards the structure is
/// read-only, so the hot loops (BFS, Dijkstra, GSP propagation) scan
/// contiguous adjacency spans without locking or reallocation hazards.
class Graph {
 public:
  Graph() = default;

  int num_roads() const { return num_roads_; }
  int num_edges() const { return static_cast<int>(edge_endpoints_.size()); }

  /// Adjacency list of road `r` (neighbours + edge ids), degree-length span.
  std::span<const Adjacency> Neighbors(RoadId r) const {
    return {adjacency_.data() + offsets_[static_cast<size_t>(r)],
            adjacency_.data() + offsets_[static_cast<size_t>(r) + 1]};
  }

  /// Raw CSR pieces, for kernels that index adjacency positions directly
  /// (GSP keeps per-half-edge parameter arrays aligned with these: the
  /// entry at adjacency position k of row r carries the parameters of the
  /// half-edge r -> Adjacencies()[k].neighbor).
  std::span<const size_t> RowOffsets() const { return offsets_; }
  std::span<const Adjacency> Adjacencies() const { return adjacency_; }

  /// Neighbour ids alone, parallel to Adjacencies(): a contiguous int32
  /// stream the vectorised GSP kernel gathers speeds through (half the
  /// stride of scanning Adjacency structs when only the neighbour is
  /// needed).
  std::span<const RoadId> NeighborIds() const { return neighbor_ids_; }

  /// Position of road `r` in the reverse Cuthill-McKee visit order
  /// (computed once at Build). Adjacent roads have nearby ranks, so the
  /// hot loops sort work units by this rank to keep consecutive updates
  /// inside overlapping cache lines. Empty graphs have no ranks.
  int32_t RcmRank(RoadId r) const {
    return rcm_rank_[static_cast<size_t>(r)];
  }
  std::span<const int32_t> RcmRanks() const { return rcm_rank_; }

  int Degree(RoadId r) const {
    return static_cast<int>(offsets_[static_cast<size_t>(r) + 1] -
                            offsets_[static_cast<size_t>(r)]);
  }

  /// Endpoints of edge `e`, with first < second.
  std::pair<RoadId, RoadId> EdgeEndpoints(EdgeId e) const {
    return edge_endpoints_[static_cast<size_t>(e)];
  }

  /// Id of the edge joining `a` and `b`, or kInvalidEdge when non-adjacent.
  /// O(min degree) scan — degrees in road networks are tiny.
  EdgeId FindEdge(RoadId a, RoadId b) const;

  bool AreAdjacent(RoadId a, RoadId b) const {
    return FindEdge(a, b) != kInvalidEdge;
  }

  bool IsValidRoad(RoadId r) const { return r >= 0 && r < num_roads_; }

 private:
  friend class GraphBuilder;

  int num_roads_ = 0;
  std::vector<size_t> offsets_;       // num_roads_ + 1
  std::vector<Adjacency> adjacency_;  // 2 * num_edges
  std::vector<RoadId> neighbor_ids_;  // adjacency_[k].neighbor, flat
  std::vector<int32_t> rcm_rank_;     // num_roads_ (RCM position of each)
  std::vector<std::pair<RoadId, RoadId>> edge_endpoints_;
};

/// Incremental builder for Graph. Duplicate edges and self-loops are
/// rejected at Build() time.
class GraphBuilder {
 public:
  /// Starts a network with `num_roads` isolated roads.
  explicit GraphBuilder(int num_roads);

  /// Registers the adjacency (a, b). Order is irrelevant. Returns the id the
  /// edge will carry in the built graph.
  EdgeId AddEdge(RoadId a, RoadId b);

  int num_roads() const { return num_roads_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Validates and assembles the CSR structure. Fails on out-of-range
  /// endpoints, self-loops, or duplicate edges.
  util::Result<Graph> Build() const;

 private:
  int num_roads_;
  std::vector<std::pair<RoadId, RoadId>> edges_;
};

}  // namespace crowdrtse::graph

#endif  // CROWDRTSE_GRAPH_GRAPH_H_
