#include "graph/graph.h"

#include <algorithm>
#include <set>
#include <string>

#include "graph/reorder.h"

namespace crowdrtse::graph {

EdgeId Graph::FindEdge(RoadId a, RoadId b) const {
  if (!IsValidRoad(a) || !IsValidRoad(b)) return kInvalidEdge;
  const RoadId probe = Degree(a) <= Degree(b) ? a : b;
  const RoadId target = probe == a ? b : a;
  for (const Adjacency& adj : Neighbors(probe)) {
    if (adj.neighbor == target) return adj.edge;
  }
  return kInvalidEdge;
}

GraphBuilder::GraphBuilder(int num_roads) : num_roads_(num_roads) {}

EdgeId GraphBuilder::AddEdge(RoadId a, RoadId b) {
  if (a > b) std::swap(a, b);
  edges_.emplace_back(a, b);
  return static_cast<EdgeId>(edges_.size() - 1);
}

util::Result<Graph> GraphBuilder::Build() const {
  if (num_roads_ < 0) {
    return util::Status::InvalidArgument("negative road count");
  }
  std::set<std::pair<RoadId, RoadId>> seen;
  for (const auto& [a, b] : edges_) {
    if (a < 0 || b < 0 || a >= num_roads_ || b >= num_roads_) {
      return util::Status::InvalidArgument(
          "edge endpoint out of range: (" + std::to_string(a) + ", " +
          std::to_string(b) + ")");
    }
    if (a == b) {
      return util::Status::InvalidArgument("self-loop on road " +
                                           std::to_string(a));
    }
    if (!seen.emplace(a, b).second) {
      return util::Status::InvalidArgument(
          "duplicate edge (" + std::to_string(a) + ", " + std::to_string(b) +
          ")");
    }
  }

  Graph g;
  g.num_roads_ = num_roads_;
  g.edge_endpoints_ = edges_;

  std::vector<size_t> degree(static_cast<size_t>(num_roads_) + 1, 0);
  for (const auto& [a, b] : edges_) {
    ++degree[static_cast<size_t>(a)];
    ++degree[static_cast<size_t>(b)];
  }
  g.offsets_.assign(static_cast<size_t>(num_roads_) + 1, 0);
  for (int r = 0; r < num_roads_; ++r) {
    g.offsets_[static_cast<size_t>(r) + 1] =
        g.offsets_[static_cast<size_t>(r)] + degree[static_cast<size_t>(r)];
  }
  g.adjacency_.resize(2 * edges_.size());
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (size_t e = 0; e < edges_.size(); ++e) {
    const auto [a, b] = edges_[e];
    g.adjacency_[cursor[static_cast<size_t>(a)]++] = {
        b, static_cast<EdgeId>(e)};
    g.adjacency_[cursor[static_cast<size_t>(b)]++] = {
        a, static_cast<EdgeId>(e)};
  }
  // Sort each adjacency list by neighbour id for deterministic iteration.
  for (int r = 0; r < num_roads_; ++r) {
    auto begin = g.adjacency_.begin() +
                 static_cast<ptrdiff_t>(g.offsets_[static_cast<size_t>(r)]);
    auto end = g.adjacency_.begin() +
               static_cast<ptrdiff_t>(g.offsets_[static_cast<size_t>(r) + 1]);
    std::sort(begin, end, [](const Adjacency& x, const Adjacency& y) {
      return x.neighbor < y.neighbor;
    });
  }
  g.neighbor_ids_.resize(g.adjacency_.size());
  for (size_t k = 0; k < g.adjacency_.size(); ++k) {
    g.neighbor_ids_[k] = g.adjacency_[k].neighbor;
  }
  const std::vector<RoadId> rcm = ReverseCuthillMcKee(g);
  g.rcm_rank_.assign(static_cast<size_t>(num_roads_), 0);
  for (size_t k = 0; k < rcm.size(); ++k) {
    g.rcm_rank_[static_cast<size_t>(rcm[k])] = static_cast<int32_t>(k);
  }
  return g;
}

}  // namespace crowdrtse::graph
