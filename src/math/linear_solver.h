#ifndef CROWDRTSE_MATH_LINEAR_SOLVER_H_
#define CROWDRTSE_MATH_LINEAR_SOLVER_H_

#include <functional>
#include <vector>

#include "math/dense_matrix.h"
#include "util/status.h"

namespace crowdrtse::math {

/// Cholesky factorisation of a symmetric positive-definite matrix, A = L L^T.
/// The GRMC baseline solves its ridge-regularised normal equations with this
/// (factor sizes are the latent rank, 5..20, so dense Cholesky is ideal).
class CholeskyFactor {
 public:
  /// Factorises `a` (must be square SPD). Fails with NumericalError if a
  /// non-positive pivot is hit.
  static util::Result<CholeskyFactor> Factorize(const DenseMatrix& a);

  /// Solves A x = b via forward/backward substitution.
  std::vector<double> Solve(const std::vector<double>& b) const;

  size_t order() const { return l_.rows(); }

 private:
  explicit CholeskyFactor(DenseMatrix l) : l_(std::move(l)) {}

  DenseMatrix l_;  // lower-triangular factor
};

/// Convenience: solve the SPD system A x = b; Cholesky under the hood.
util::Result<std::vector<double>> SolveSpd(const DenseMatrix& a,
                                           const std::vector<double>& b);

/// Options for the conjugate-gradient solver.
struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  // on the relative residual ||r|| / ||b||
};

/// Result of a CG solve: the solution plus convergence diagnostics.
struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Conjugate gradients for SPD systems given only a mat-vec callback; used
/// where assembling the dense operator would be wasteful (graph Laplacian
/// smoothing systems).
CgResult ConjugateGradient(
    const std::vector<double>& b,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        apply_a,
    const CgOptions& options = CgOptions());

/// Jacobi-preconditioned CG: `diagonal` holds the (positive) diagonal of A.
/// For the diagonally dominant GMRF systems this typically cuts the
/// iteration count substantially when sigma scales vary across roads.
CgResult PreconditionedConjugateGradient(
    const std::vector<double>& b,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        apply_a,
    const std::vector<double>& diagonal,
    const CgOptions& options = CgOptions());

}  // namespace crowdrtse::math

#endif  // CROWDRTSE_MATH_LINEAR_SOLVER_H_
