#include "math/vector_ops.h"

#include <cmath>

#include "util/logging.h"

namespace crowdrtse::math {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  CROWDRTSE_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double Norm1(const std::vector<double>& a) {
  double sum = 0.0;
  for (double v : a) sum += std::fabs(v);
  return sum;
}

double NormInf(const std::vector<double>& a) {
  double max = 0.0;
  for (double v : a) max = std::max(max, std::fabs(v));
  return max;
}

void Axpy(double alpha, const std::vector<double>& x,
          std::vector<double>& y) {
  CROWDRTSE_CHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>& x) {
  for (double& v : x) v *= alpha;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  CROWDRTSE_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CROWDRTSE_CHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

double SoftThreshold(double x, double threshold) {
  if (x > threshold) return x - threshold;
  if (x < -threshold) return x + threshold;
  return 0.0;
}

}  // namespace crowdrtse::math
