#ifndef CROWDRTSE_MATH_VECTOR_OPS_H_
#define CROWDRTSE_MATH_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace crowdrtse::math {

/// Dense vector kernels shared by the LASSO / GRMC baselines and the RTF
/// trainer. All operate on std::vector<double> of equal length; mismatched
/// lengths are programming errors checked via CROWDRTSE_CHECK in the .cc.

/// Dot product <a, b>.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm ||a||_2.
double Norm2(const std::vector<double>& a);

/// L1 norm ||a||_1.
double Norm1(const std::vector<double>& a);

/// Largest absolute entry ||a||_inf; 0 for the empty vector.
double NormInf(const std::vector<double>& a);

/// y += alpha * x.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x *= alpha.
void Scale(double alpha, std::vector<double>& x);

/// Element-wise a - b.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Element-wise a + b.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Soft-thresholding operator S(x, t) = sign(x) * max(|x| - t, 0); the
/// proximal map of the L1 norm used by coordinate-descent LASSO.
double SoftThreshold(double x, double threshold);

}  // namespace crowdrtse::math

#endif  // CROWDRTSE_MATH_VECTOR_OPS_H_
