#include "math/linear_solver.h"

#include <cmath>

#include "math/vector_ops.h"
#include "util/logging.h"

namespace crowdrtse::math {

util::Result<CholeskyFactor> CholeskyFactor::Factorize(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument("Cholesky needs a square matrix");
  }
  const size_t n = a.rows();
  DenseMatrix l(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return util::Status::NumericalError(
          "matrix is not positive definite (pivot " + std::to_string(diag) +
          " at column " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l.At(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = sum / ljj;
    }
  }
  return CholeskyFactor(std::move(l));
}

std::vector<double> CholeskyFactor::Solve(const std::vector<double>& b) const {
  const size_t n = l_.rows();
  CROWDRTSE_CHECK(b.size() == n);
  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l_.RowPtr(i);
    for (size_t k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  // Backward substitution: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (size_t k = ii + 1; k < n; ++k) sum -= l_.At(k, ii) * x[k];
    x[ii] = sum / l_.At(ii, ii);
  }
  return x;
}

util::Result<std::vector<double>> SolveSpd(const DenseMatrix& a,
                                           const std::vector<double>& b) {
  util::Result<CholeskyFactor> factor = CholeskyFactor::Factorize(a);
  if (!factor.ok()) return factor.status();
  return factor->Solve(b);
}

CgResult ConjugateGradient(
    const std::vector<double>& b,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        apply_a,
    const CgOptions& options) {
  CgResult result;
  const size_t n = b.size();
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> p = r;
  double rs_old = Dot(r, r);
  const double b_norm = std::max(Norm2(b), 1e-300);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.residual_norm = std::sqrt(rs_old);
    if (result.residual_norm / b_norm <= options.tolerance) {
      result.converged = true;
      return result;
    }
    std::vector<double> ap = apply_a(p);
    const double denom = Dot(p, ap);
    if (denom <= 0.0 || !std::isfinite(denom)) break;  // lost SPD-ness
    const double alpha = rs_old / denom;
    Axpy(alpha, p, result.x);
    Axpy(-alpha, ap, r);
    const double rs_new = Dot(r, r);
    const double beta = rs_new / rs_old;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
    result.iterations = iter + 1;
  }
  result.residual_norm = std::sqrt(rs_old);
  result.converged = result.residual_norm / b_norm <= options.tolerance;
  return result;
}

CgResult PreconditionedConjugateGradient(
    const std::vector<double>& b,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        apply_a,
    const std::vector<double>& diagonal, const CgOptions& options) {
  CgResult result;
  const size_t n = b.size();
  CROWDRTSE_CHECK(diagonal.size() == n);
  result.x.assign(n, 0.0);
  std::vector<double> r = b;
  // z = M^-1 r with M = diag(A).
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    CROWDRTSE_CHECK(diagonal[i] > 0.0);
    z[i] = r[i] / diagonal[i];
  }
  std::vector<double> p = z;
  double rz_old = Dot(r, z);
  const double b_norm = std::max(Norm2(b), 1e-300);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.residual_norm = Norm2(r);
    if (result.residual_norm / b_norm <= options.tolerance) {
      result.converged = true;
      return result;
    }
    std::vector<double> ap = apply_a(p);
    const double denom = Dot(p, ap);
    if (denom <= 0.0 || !std::isfinite(denom)) break;
    const double alpha = rz_old / denom;
    Axpy(alpha, p, result.x);
    Axpy(-alpha, ap, r);
    for (size_t i = 0; i < n; ++i) z[i] = r[i] / diagonal[i];
    const double rz_new = Dot(r, z);
    const double beta = rz_new / rz_old;
    for (size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz_old = rz_new;
    result.iterations = iter + 1;
  }
  result.residual_norm = Norm2(r);
  result.converged = result.residual_norm / b_norm <= options.tolerance;
  return result;
}

}  // namespace crowdrtse::math
