#include "math/dense_matrix.h"

#include <cmath>

#include "util/logging.h"

namespace crowdrtse::math {

DenseMatrix::DenseMatrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> DenseMatrix::Multiply(const std::vector<double>& x) const {
  CROWDRTSE_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> DenseMatrix::MultiplyTransposed(
    const std::vector<double>& x) const {
  CROWDRTSE_CHECK(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  CROWDRTSE_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_, 0.0);
  // i-k-j loop order keeps the inner loop contiguous in both B and C.
  for (size_t i = 0; i < rows_; ++i) {
    double* out_row = out.RowPtr(i);
    const double* a_row = RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) out_row[j] += a * b_row[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) out.At(c, r) = row[c];
  }
  return out;
}

DenseMatrix DenseMatrix::Gram() const {
  DenseMatrix out(cols_, cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (size_t i = 0; i < cols_; ++i) {
      const double v = row[i];
      if (v == 0.0) continue;
      double* out_row = out.RowPtr(i);
      for (size_t j = i; j < cols_; ++j) out_row[j] += v * row[j];
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) out.At(i, j) = out.At(j, i);
  }
  return out;
}

DenseMatrix DenseMatrix::Identity(size_t n) {
  DenseMatrix out(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace crowdrtse::math
