#ifndef CROWDRTSE_MATH_DENSE_MATRIX_H_
#define CROWDRTSE_MATH_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

namespace crowdrtse::math {

/// Row-major dense matrix of doubles. Sized for the baselines' problems
/// (design matrices of a few hundred columns, GRMC factor matrices); not a
/// general BLAS replacement, but the hot loops are written to stride
/// contiguously.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r` (contiguous `cols()` doubles).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Matrix-vector product y = A x. `x.size()` must equal cols().
  std::vector<double> Multiply(const std::vector<double>& x) const;

  /// Transposed matrix-vector product y = A^T x. `x.size()` must equal
  /// rows().
  std::vector<double> MultiplyTransposed(const std::vector<double>& x) const;

  /// Dense product A * B; inner dimensions must agree.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// Returns A^T.
  DenseMatrix Transposed() const;

  /// Gram matrix A^T A (symmetric cols x cols), computed exploiting
  /// symmetry.
  DenseMatrix Gram() const;

  /// Identity matrix of order n.
  static DenseMatrix Identity(size_t n);

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace crowdrtse::math

#endif  // CROWDRTSE_MATH_DENSE_MATRIX_H_
