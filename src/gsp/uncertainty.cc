#include "gsp/uncertainty.h"

#include <map>
#include <string>

#include "math/dense_matrix.h"
#include "math/linear_solver.h"

namespace crowdrtse::gsp {

namespace {

util::Status ValidateInputs(const rtf::RtfModel& model, int slot,
                            const std::vector<graph::RoadId>& sampled) {
  if (slot < 0 || slot >= model.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  for (graph::RoadId r : sampled) {
    if (r < 0 || r >= model.num_roads()) {
      return util::Status::InvalidArgument("sampled road out of range: " +
                                           std::to_string(r));
    }
  }
  return util::Status::Ok();
}

/// Diagonal of the quadratic-form matrix A for road i.
double DiagonalA(const rtf::RtfModel& model, int slot, graph::RoadId i) {
  const double sigma = model.Sigma(slot, i);
  double diag = 1.0 / (sigma * sigma);
  for (const graph::Adjacency& adj : model.graph().Neighbors(i)) {
    diag += 1.0 / model.PairVariance(slot, adj.edge);
  }
  return diag;
}

}  // namespace

util::Result<std::vector<double>> ExactPosteriorVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads) {
  CROWDRTSE_RETURN_IF_ERROR(ValidateInputs(model, slot, sampled_roads));
  const graph::Graph& g = model.graph();
  const int n = g.num_roads();
  std::vector<bool> pinned(static_cast<size_t>(n), false);
  for (graph::RoadId r : sampled_roads) pinned[static_cast<size_t>(r)] = true;

  std::map<graph::RoadId, size_t> index;
  std::vector<graph::RoadId> free_roads;
  for (graph::RoadId r = 0; r < n; ++r) {
    if (!pinned[static_cast<size_t>(r)]) {
      index[r] = free_roads.size();
      free_roads.push_back(r);
    }
  }
  const size_t m = free_roads.size();
  std::vector<double> variance(static_cast<size_t>(n), 0.0);
  if (m == 0) return variance;

  // Precision P = 2A restricted to the free variables (pinning drops the
  // pinned rows/columns; their cross terms stay in the free diagonals).
  math::DenseMatrix p(m, m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    const graph::RoadId i = free_roads[k];
    p.At(k, k) = 2.0 * DiagonalA(model, slot, i);
    for (const graph::Adjacency& adj : g.Neighbors(i)) {
      if (!pinned[static_cast<size_t>(adj.neighbor)]) {
        p.At(k, index.at(adj.neighbor)) -=
            2.0 / model.PairVariance(slot, adj.edge);
      }
    }
  }
  util::Result<math::CholeskyFactor> factor =
      math::CholeskyFactor::Factorize(p);
  if (!factor.ok()) return factor.status();
  // Var_i = (P^-1)_ii = e_i^T P^-1 e_i.
  std::vector<double> unit(m, 0.0);
  for (size_t k = 0; k < m; ++k) {
    unit[k] = 1.0;
    const std::vector<double> column = factor->Solve(unit);
    variance[static_cast<size_t>(free_roads[k])] = column[k];
    unit[k] = 0.0;
  }
  return variance;
}

util::Result<std::vector<double>> LocalConditionalVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads) {
  CROWDRTSE_RETURN_IF_ERROR(ValidateInputs(model, slot, sampled_roads));
  const int n = model.num_roads();
  std::vector<double> variance(static_cast<size_t>(n), 0.0);
  std::vector<bool> pinned(static_cast<size_t>(n), false);
  for (graph::RoadId r : sampled_roads) pinned[static_cast<size_t>(r)] = true;
  for (graph::RoadId r = 0; r < n; ++r) {
    if (pinned[static_cast<size_t>(r)]) continue;
    variance[static_cast<size_t>(r)] = 1.0 / (2.0 * DiagonalA(model, slot, r));
  }
  return variance;
}

util::Result<std::vector<double>> DegradedAwareVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<graph::RoadId>& degraded_roads, double inflation) {
  if (inflation < 1.0) {
    return util::Status::InvalidArgument(
        "degraded variance inflation must be >= 1");
  }
  CROWDRTSE_RETURN_IF_ERROR(ValidateInputs(model, slot, degraded_roads));
  util::Result<std::vector<double>> variance =
      LocalConditionalVariances(model, slot, sampled_roads);
  if (!variance.ok()) return variance.status();
  for (graph::RoadId r : degraded_roads) {
    const double sigma = model.Sigma(slot, r);
    (*variance)[static_cast<size_t>(r)] = inflation * sigma * sigma;
  }
  return variance;
}

}  // namespace crowdrtse::gsp
