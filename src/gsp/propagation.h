#ifndef CROWDRTSE_GSP_PROPAGATION_H_
#define CROWDRTSE_GSP_PROPAGATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/coloring.h"
#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace crowdrtse::gsp {

/// Which Eq. (18) sweep kernel relaxes the roads. All kernels compute the
/// same fixpoint; they differ in arithmetic association only:
///  - kReference walks the RtfModel accessors per neighbour, re-deriving
///    and re-inverting every pair variance (the original formulation, kept
///    as the golden baseline and for A/B benchmarks).
///  - kScalar reads the precomputed SoA slot parameters in CSR order:
///    numerator accumulation identical to kReference, denominator read
///    from the SoA's bit-exact precomputed fold — bit-identical results.
///  - kUnrolled reads the speed-independent numerator part pre-folded
///    (SlotSoa::num_base) and accumulates only sum_j v_j/sigma_ij^2, in
///    four independent lanes combined pairwise; the reassociation drifts
///    at most ~1e-12 relative from kScalar. Rows of degree < 4 take the
///    scalar path unchanged and stay bit-identical.
///  - kAvx2 is the same association with AVX2 gathers; requires AVX2 at
///    runtime.
///  - kAuto resolves to kAvx2 when the CPU supports it, else kUnrolled.
enum class GspKernel { kAuto, kReference, kScalar, kUnrolled, kAvx2 };

/// Options for Graph-based Speed Propagation (paper Alg. 5).
struct GspOptions {
  /// Convergence threshold epsilon: stop when no variable moved more than
  /// this in a full sweep.
  double epsilon = 1e-4;
  /// Hard cap on sweeps (the paper argues a constant number suffices).
  int max_sweeps = 200;
  /// 1 = the sequential Alg. 5. >1 = level-parallel execution: roads of the
  /// same BFS level and colour class update concurrently (the paper's
  /// parallelisation condition - same partition group, not adjacent).
  int num_threads = 1;
  /// 0 = relax every reachable road (the paper's full Alg. 5). H > 0 keeps
  /// the relaxation local: only roads within H BFS hops of the sampled set
  /// update; everything deeper stays frozen at its initial value (mu or the
  /// warm start). This bounds the per-query work on metropolitan graphs and
  /// is the locality contract the sharded serve path relies on: with a hop
  /// limit H every value read during propagation lives within H+1 hops of a
  /// probe, so a partition halo that deep reproduces the unsharded fixpoint
  /// bit for bit.
  int hop_limit = 0;
  /// Sweep kernel; see GspKernel. An explicitly requested kAvx2 on a host
  /// without AVX2 degrades to kUnrolled (same association, same results).
  GspKernel kernel = GspKernel::kAuto;
};

/// Outcome of one propagation run.
struct GspResult {
  /// Estimated realtime speed of every road (sampled roads keep their
  /// probed values).
  std::vector<double> speeds;
  int sweeps = 0;
  bool converged = false;
  /// Hop distance of each road from the sampled set (-1 = unreachable;
  /// unreachable roads keep their periodic mean).
  std::vector<int> hops;
};

/// Infers the realtime speed of every road from sparse probed speeds on top
/// of a trained RTF, by iterating the closed-form conditional maximiser of
/// paper Eq. (18) in BFS-hop order from the sampled roads.
///
/// Thread-safety: with num_threads > 1 the propagator owns a worker pool
/// and a lazily built colouring, so concurrent Propagate calls on the same
/// instance are not allowed; the sequential configuration is freely
/// shareable (its per-query scratch lives in thread-local arenas).
class SpeedPropagator {
 public:
  /// The model (and its graph) must outlive the propagator.
  SpeedPropagator(const rtf::RtfModel& model, GspOptions options);
  ~SpeedPropagator();

  const GspOptions& options() const { return options_; }

  /// True when the running CPU executes AVX2.
  static bool Avx2Supported();

  /// The kernel a request actually runs: kAuto picks the widest supported
  /// path; kAvx2 without hardware support degrades to kUnrolled.
  static GspKernel ResolveKernel(GspKernel requested);

  /// How many times this propagator computed a graph colouring. The
  /// colouring depends only on the graph, so it is built on the first
  /// parallel Propagate and reused afterwards; this stays at 1 however
  /// many queries run (regression hook for the per-query recolouring bug).
  uint64_t coloring_builds() const {
    return coloring_builds_.load(std::memory_order_relaxed);
  }

  /// Runs GSP for `slot`. `sampled_roads[i]` is fixed to
  /// `sampled_speeds[i]`; everything else starts at mu and relaxes.
  util::Result<GspResult> Propagate(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds) const;

  /// Warm-started variant: non-sampled roads start from `initial_speeds`
  /// (size |R|) instead of mu. With consecutive 5-minute queries the
  /// previous answer is an excellent initialiser — the fixed point is the
  /// same (the objective is strictly convex), only the sweep count drops.
  util::Result<GspResult> PropagateFrom(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds,
      const std::vector<double>& initial_speeds) const;

  /// The Eq. (18) kernel: the likelihood-maximising value of v_i given the
  /// current speeds of its neighbours. Exposed for fixed-point tests.
  /// Inverse variances are clamped to rtf::kMaxInvVariance, so degenerate
  /// parameters dent one weight instead of poisoning the whole field.
  double UpdateValue(int slot, graph::RoadId road,
                     const std::vector<double>& speeds) const;

 private:
  /// Builds (once) the colouring and the per-road (colour, RCM rank) sort
  /// key used to split levels into cache-friendly parallel groups.
  void EnsureColoring() const;

  const rtf::RtfModel& model_;
  GspOptions options_;
  // Lazily created on the first parallel propagation; reused across calls
  // so per-sweep work dispatch is two condition-variable hops, not thread
  // spawns.
  mutable std::unique_ptr<util::ThreadPool> pool_;
  // Colouring + group sort keys, built once per propagator (the graph is
  // immutable). group_key_[r] = color[r] * num_roads + RcmRank(r): sorting
  // a level by this key yields colour groups whose members sit in RCM
  // order, i.e. near each other in memory.
  mutable std::unique_ptr<graph::Coloring> coloring_;
  mutable std::vector<int64_t> group_key_;
  mutable std::atomic<uint64_t> coloring_builds_{0};
};

}  // namespace crowdrtse::gsp

#endif  // CROWDRTSE_GSP_PROPAGATION_H_
