#ifndef CROWDRTSE_GSP_PROPAGATION_H_
#define CROWDRTSE_GSP_PROPAGATION_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace crowdrtse::gsp {

/// Options for Graph-based Speed Propagation (paper Alg. 5).
struct GspOptions {
  /// Convergence threshold epsilon: stop when no variable moved more than
  /// this in a full sweep.
  double epsilon = 1e-4;
  /// Hard cap on sweeps (the paper argues a constant number suffices).
  int max_sweeps = 200;
  /// 1 = the sequential Alg. 5. >1 = level-parallel execution: roads of the
  /// same BFS level and colour class update concurrently (the paper's
  /// parallelisation condition - same partition group, not adjacent).
  int num_threads = 1;
  /// 0 = relax every reachable road (the paper's full Alg. 5). H > 0 keeps
  /// the relaxation local: only roads within H BFS hops of the sampled set
  /// update; everything deeper stays frozen at its initial value (mu or the
  /// warm start). This bounds the per-query work on metropolitan graphs and
  /// is the locality contract the sharded serve path relies on: with a hop
  /// limit H every value read during propagation lives within H+1 hops of a
  /// probe, so a partition halo that deep reproduces the unsharded fixpoint
  /// bit for bit.
  int hop_limit = 0;
};

/// Outcome of one propagation run.
struct GspResult {
  /// Estimated realtime speed of every road (sampled roads keep their
  /// probed values).
  std::vector<double> speeds;
  int sweeps = 0;
  bool converged = false;
  /// Hop distance of each road from the sampled set (-1 = unreachable;
  /// unreachable roads keep their periodic mean).
  std::vector<int> hops;
};

/// Infers the realtime speed of every road from sparse probed speeds on top
/// of a trained RTF, by iterating the closed-form conditional maximiser of
/// paper Eq. (18) in BFS-hop order from the sampled roads.
///
/// Thread-safety: with num_threads > 1 the propagator owns a worker pool,
/// so concurrent Propagate calls on the same instance are not allowed;
/// the sequential configuration is freely shareable.
class SpeedPropagator {
 public:
  /// The model (and its graph) must outlive the propagator.
  SpeedPropagator(const rtf::RtfModel& model, GspOptions options);

  const GspOptions& options() const { return options_; }

  /// Runs GSP for `slot`. `sampled_roads[i]` is fixed to
  /// `sampled_speeds[i]`; everything else starts at mu and relaxes.
  util::Result<GspResult> Propagate(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds) const;

  /// Warm-started variant: non-sampled roads start from `initial_speeds`
  /// (size |R|) instead of mu. With consecutive 5-minute queries the
  /// previous answer is an excellent initialiser — the fixed point is the
  /// same (the objective is strictly convex), only the sweep count drops.
  util::Result<GspResult> PropagateFrom(
      int slot, const std::vector<graph::RoadId>& sampled_roads,
      const std::vector<double>& sampled_speeds,
      const std::vector<double>& initial_speeds) const;

  /// The Eq. (18) kernel: the likelihood-maximising value of v_i given the
  /// current speeds of its neighbours. Exposed for fixed-point tests.
  double UpdateValue(int slot, graph::RoadId road,
                     const std::vector<double>& speeds) const;

 private:
  int RunSweepsSequential(int slot,
                          const std::vector<std::vector<graph::RoadId>>& order,
                          std::vector<double>& speeds, bool& converged) const;
  int RunSweepsParallel(int slot,
                        const std::vector<std::vector<graph::RoadId>>& order,
                        std::vector<double>& speeds, bool& converged) const;

  const rtf::RtfModel& model_;
  GspOptions options_;
  // Lazily created on the first parallel propagation; reused across calls
  // so per-sweep work dispatch is two condition-variable hops, not thread
  // spawns.
  mutable std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace crowdrtse::gsp

#endif  // CROWDRTSE_GSP_PROPAGATION_H_
