#include "gsp/propagator_pool.h"

#include <algorithm>

namespace crowdrtse::gsp {

PropagatorPool::PropagatorPool(const rtf::RtfModel& model, GspOptions options,
                               int size) {
  const int n = std::max(1, size);
  instances_.reserve(static_cast<size_t>(n));
  free_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    instances_.push_back(std::make_unique<SpeedPropagator>(model, options));
    free_.push_back(instances_.back().get());
  }
}

PropagatorPool::Lease PropagatorPool::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  freed_.wait(lock, [this] { return !free_.empty(); });
  const SpeedPropagator* propagator = free_.back();
  free_.pop_back();
  return Lease(this, propagator);
}

int PropagatorPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(free_.size());
}

void PropagatorPool::Return(const SpeedPropagator* propagator) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(propagator);
  }
  freed_.notify_one();
}

PropagatorPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->Return(propagator_);
}

}  // namespace crowdrtse::gsp
