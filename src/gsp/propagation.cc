#include "gsp/propagation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "graph/bfs.h"
#include "graph/coloring.h"

namespace crowdrtse::gsp {

SpeedPropagator::SpeedPropagator(const rtf::RtfModel& model,
                                 GspOptions options)
    : model_(model), options_(options) {}

double SpeedPropagator::UpdateValue(int slot, graph::RoadId road,
                                    const std::vector<double>& speeds) const {
  // Eq. (18):
  //   v_i* = ( mu_i/sigma_i^2 + sum_j (v_j + mu_ij)/sigma_ij^2 )
  //        / ( 1/sigma_i^2    + sum_j 1/sigma_ij^2 )
  const double sigma_i = model_.Sigma(slot, road);
  const double inv_var_i = 1.0 / (sigma_i * sigma_i);
  double numerator = model_.Mu(slot, road) * inv_var_i;
  double denominator = inv_var_i;
  for (const graph::Adjacency& adj : model_.graph().Neighbors(road)) {
    const double inv_pair = 1.0 / model_.PairVariance(slot, adj.edge);
    const double mu_ij = model_.PairMean(slot, road, adj.neighbor);
    numerator += (speeds[static_cast<size_t>(adj.neighbor)] + mu_ij) *
                 inv_pair;
    denominator += inv_pair;
  }
  return numerator / denominator;
}

int SpeedPropagator::RunSweepsSequential(
    int slot, const std::vector<std::vector<graph::RoadId>>& order,
    std::vector<double>& speeds, bool& converged) const {
  converged = false;
  int sweeps = 0;
  while (sweeps < options_.max_sweeps) {
    ++sweeps;
    double max_delta = 0.0;
    for (const auto& level : order) {
      for (graph::RoadId road : level) {
        const double updated = UpdateValue(slot, road, speeds);
        max_delta = std::max(
            max_delta,
            std::fabs(updated - speeds[static_cast<size_t>(road)]));
        speeds[static_cast<size_t>(road)] = updated;
      }
    }
    if (max_delta < options_.epsilon) {
      converged = true;
      break;
    }
  }
  return sweeps;
}

int SpeedPropagator::RunSweepsParallel(
    int slot, const std::vector<std::vector<graph::RoadId>>& order,
    std::vector<double>& speeds, bool& converged) const {
  // Colour once: within a level, same-colour roads are pairwise
  // non-adjacent, so they may update concurrently without racing on a
  // neighbour's value (the paper's parallelisation condition).
  const graph::Coloring coloring = graph::GreedyColoring(model_.graph());
  // Pre-split every level into colour groups.
  std::vector<std::vector<std::vector<graph::RoadId>>> groups(order.size());
  for (size_t l = 0; l < order.size(); ++l) {
    groups[l].assign(static_cast<size_t>(coloring.num_colors), {});
    for (graph::RoadId road : order[l]) {
      groups[l][static_cast<size_t>(
                    coloring.color[static_cast<size_t>(road)])]
          .push_back(road);
    }
  }

  const int num_threads = std::max(1, options_.num_threads);
  if (!pool_ || pool_->num_threads() != num_threads) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
  }
  const auto merge_max = [](std::atomic<double>& target, double value) {
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value)) {
    }
  };

  converged = false;
  int sweeps = 0;
  while (sweeps < options_.max_sweeps) {
    ++sweeps;
    std::atomic<double> max_delta{0.0};
    for (const auto& level_groups : groups) {
      for (const auto& group : level_groups) {
        if (group.empty()) continue;
        // Tiny groups are cheaper inline than dispatched.
        if (group.size() < 32) {
          double local = 0.0;
          for (graph::RoadId road : group) {
            const double updated = UpdateValue(slot, road, speeds);
            local = std::max(
                local,
                std::fabs(updated - speeds[static_cast<size_t>(road)]));
            speeds[static_cast<size_t>(road)] = updated;
          }
          merge_max(max_delta, local);
          continue;
        }
        pool_->ParallelFor(group.size(), [&](size_t begin, size_t end) {
          double local = 0.0;
          for (size_t k = begin; k < end; ++k) {
            const graph::RoadId road = group[k];
            const double updated = UpdateValue(slot, road, speeds);
            local = std::max(
                local,
                std::fabs(updated - speeds[static_cast<size_t>(road)]));
            speeds[static_cast<size_t>(road)] = updated;
          }
          merge_max(max_delta, local);
        });
      }
    }
    if (max_delta.load() < options_.epsilon) {
      converged = true;
      break;
    }
  }
  return sweeps;
}

util::Result<GspResult> SpeedPropagator::Propagate(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds) const {
  return PropagateFrom(slot, sampled_roads, sampled_speeds, {});
}

util::Result<GspResult> SpeedPropagator::PropagateFrom(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds,
    const std::vector<double>& initial_speeds) const {
  if (slot < 0 || slot >= model_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (sampled_roads.size() != sampled_speeds.size()) {
    return util::Status::InvalidArgument(
        "sampled roads/speeds length mismatch");
  }
  const int n = model_.num_roads();
  for (graph::RoadId r : sampled_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("sampled road out of range: " +
                                           std::to_string(r));
    }
  }
  if (options_.epsilon <= 0.0) {
    return util::Status::InvalidArgument("epsilon must be positive");
  }
  if (options_.hop_limit < 0) {
    return util::Status::InvalidArgument("hop_limit must be >= 0");
  }

  if (!initial_speeds.empty() &&
      initial_speeds.size() != static_cast<size_t>(n)) {
    return util::Status::InvalidArgument(
        "initial speeds must cover all roads");
  }

  GspResult result;
  // Initialise: sampled roads take the probed data, everything else its
  // periodic mean (paper "Initialization") or the caller's warm start.
  if (initial_speeds.empty()) {
    result.speeds.assign(static_cast<size_t>(n), 0.0);
    for (graph::RoadId r = 0; r < n; ++r) {
      result.speeds[static_cast<size_t>(r)] = model_.Mu(slot, r);
    }
  } else {
    result.speeds = initial_speeds;
  }
  std::vector<bool> is_sampled(static_cast<size_t>(n), false);
  for (size_t i = 0; i < sampled_roads.size(); ++i) {
    result.speeds[static_cast<size_t>(sampled_roads[i])] =
        sampled_speeds[i];
    is_sampled[static_cast<size_t>(sampled_roads[i])] = true;
  }

  // Schedule: BFS hop levels from the sampled roads; level 0 (the samples
  // themselves) stays fixed, deeper levels update in ascending hop order.
  const graph::HopLevels bfs =
      graph::MultiSourceBfs(model_.graph(), sampled_roads);
  result.hops = bfs.hops;
  std::vector<std::vector<graph::RoadId>> order;
  const size_t max_level =
      options_.hop_limit > 0
          ? std::min(bfs.levels.size(),
                     static_cast<size_t>(options_.hop_limit) + 1)
          : bfs.levels.size();
  for (size_t l = 1; l < max_level; ++l) {
    std::vector<graph::RoadId> level;
    for (graph::RoadId r : bfs.levels[l]) {
      if (!is_sampled[static_cast<size_t>(r)]) level.push_back(r);
    }
    if (!level.empty()) order.push_back(std::move(level));
  }

  if (order.empty()) {
    // Nothing to relax: either no samples (pure periodic estimate) or the
    // samples cover everything.
    result.converged = true;
    result.sweeps = 0;
    return result;
  }

  if (options_.num_threads > 1) {
    result.sweeps = RunSweepsParallel(slot, order, result.speeds,
                                      result.converged);
  } else {
    result.sweeps = RunSweepsSequential(slot, order, result.speeds,
                                        result.converged);
  }
  return result;
}

}  // namespace crowdrtse::gsp
