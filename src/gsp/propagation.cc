#include "gsp/propagation.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CROWDRTSE_GSP_X86 1
#endif

#include "graph/bfs.h"
#include "obs/flight_recorder.h"

namespace crowdrtse::gsp {

namespace {

/// Everything a sweep kernel touches, as raw pointers.
///
/// The SoA kernels read the *packed* arrays: per-query copies of the slot
/// parameters laid out contiguously in relax order (see PackRows), so a
/// sweep streams every input sequentially except the unavoidable
/// speeds[neighbour] gather. The CSR pointers (row_offsets/neighbor_ids
/// plus the SlotSoa arrays) are the pack source. `model` and `slot` exist
/// only for the kReference kernel, which re-derives the weights through
/// the accessor API each visit.
struct SweepContext {
  // Pack sources (SoA slot parameters + CSR topology).
  const double* mu_inv_var = nullptr;
  const double* pair_inv_var = nullptr;
  const double* pair_mean = nullptr;
  const double* inv_var_sum = nullptr;  // precomputed Eq. (18) denominator
  const double* num_base = nullptr;     // speed-independent numerator part
  const size_t* row_offsets = nullptr;
  const graph::RoadId* neighbor_ids = nullptr;
  // Packed relax-order views (valid for positions [0, order_size]).
  const graph::RoadId* order_base = nullptr;  // == workspace order.data()
  size_t order_size = 0;
  const size_t* packed_offsets = nullptr;  // position -> packed row start
  const graph::RoadId* packed_ids = nullptr;
  const double* packed_w = nullptr;     // pair_inv_var in relax order
  const double* packed_m = nullptr;     // pair_mean in relax order
  const double* packed_mu = nullptr;    // mu_inv_var per position
  const double* packed_base = nullptr;  // num_base per position
  const double* packed_den = nullptr;   // inv_var_sum per position
  double* speeds = nullptr;
  const rtf::RtfModel* model = nullptr;
  int slot = 0;
};

/// Relaxes roads[0..count) sequentially in place; returns max |delta|.
/// `roads` always points into the workspace order the packed arrays were
/// built from, so kernels recover their packed position as
/// roads - order_base.
using SweepSpanFn = double (*)(const SweepContext&, const graph::RoadId*,
                               size_t);

/// Original Eq. (18) formulation through the accessor API, with the
/// inverse-variance clamp (the unguarded 1/sigma^2 was the NaN-poisoning
/// bug). Accumulates in adjacency order, multiplying by the reciprocal —
/// exactly the arithmetic the SoA scalar kernel performs, so the two are
/// bit-identical.
inline double UpdateRoadReference(const rtf::RtfModel& model, int slot,
                                  graph::RoadId road, const double* speeds,
                                  uint64_t* clamps) {
  const double sigma_i = model.Sigma(slot, road);
  const double inv_var_i =
      rtf::ClampedInvVariance(sigma_i * sigma_i, clamps);
  double numerator = model.Mu(slot, road) * inv_var_i;
  double denominator = inv_var_i;
  for (const graph::Adjacency& adj : model.graph().Neighbors(road)) {
    const double inv_pair =
        rtf::ClampedInvVariance(model.PairVariance(slot, adj.edge), clamps);
    const double mu_ij = model.PairMean(slot, road, adj.neighbor);
    numerator +=
        (speeds[static_cast<size_t>(adj.neighbor)] + mu_ij) * inv_pair;
    denominator += inv_pair;
  }
  return numerator / denominator;
}

double SweepSpanReference(const SweepContext& c, const graph::RoadId* roads,
                          size_t count) {
  double local = 0.0;
  uint64_t clamps = 0;
  for (size_t i = 0; i < count; ++i) {
    const graph::RoadId road = roads[i];
    const size_t ri = static_cast<size_t>(road);
    const double updated =
        UpdateRoadReference(*c.model, c.slot, road, c.speeds, &clamps);
    local = std::max(local, std::fabs(updated - c.speeds[ri]));
    c.speeds[ri] = updated;
  }
  rtf::AddInvVarianceClamps(clamps);
  return local;
}

/// Software prefetch for the SoA kernels. After packing, every stream but
/// speeds[neighbour] is sequential (hardware-prefetched); the kernels are
/// latency-bound on those scattered speed reads at metro scale, so pull
/// the speeds of a row a couple of positions ahead — its packed ids are
/// already resident. Prefetching performs no arithmetic, so kernel
/// results are unchanged.
inline void PrefetchSpeeds(const SweepContext& c, size_t pos) {
  const size_t ahead = pos + 2;
  if (ahead >= c.order_size) return;
  const size_t begin = c.packed_offsets[ahead];
  const size_t end = c.packed_offsets[ahead + 1];
  for (size_t k = begin; k < end; ++k) {
    __builtin_prefetch(
        c.speeds + static_cast<size_t>(c.packed_ids[k]), 0, 1);
  }
}

/// SoA scalar kernel: the same numerator operations in the same order as
/// the reference, reading precomputed (clamped, packed) inverses instead
/// of re-deriving them. The denominator is read from the precomputed
/// inv_var_sum fold, which holds the bit-exact value the reference's
/// accumulation produces (same fold order over the same operands), so the
/// final divide — and the kernel — stays bit-identical to
/// UpdateRoadReference.
double SweepSpanScalar(const SweepContext& c, const graph::RoadId* roads,
                       size_t count) {
  const size_t pos0 = static_cast<size_t>(roads - c.order_base);
  double local = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = pos0 + i;
    PrefetchSpeeds(c, pos);
    const size_t begin = c.packed_offsets[pos];
    const size_t end = c.packed_offsets[pos + 1];
    double num = c.packed_mu[pos];
    for (size_t k = begin; k < end; ++k) {
      num += (c.speeds[static_cast<size_t>(c.packed_ids[k])] +
              c.packed_m[k]) *
             c.packed_w[k];
    }
    const double updated = num / c.packed_den[pos];
    const size_t ri = static_cast<size_t>(roads[i]);
    local = std::max(local, std::fabs(updated - c.speeds[ri]));
    c.speeds[ri] = updated;
  }
  return local;
}

/// Vectorisable sweep: the speed-independent part of the numerator
/// (mu_i/sigma_i^2 + sum_j mu_ij/sigma_ij^2) is read pre-folded from
/// packed_base, and only sum_j v_j/sigma_ij^2 accumulates per sweep — in
/// four independent lanes combined pairwise ((l0+l1)+(l2+l3)), the
/// association the AVX2 kernel's horizontal sum shares. Relative to the
/// scalar kernel this reassociates the numerator by <= ~1e-12 (documented
/// tolerance); rows of degree < 4 take the scalar path unchanged and stay
/// bit-identical.
double SweepSpanUnrolled(const SweepContext& c, const graph::RoadId* roads,
                         size_t count) {
  const size_t pos0 = static_cast<size_t>(roads - c.order_base);
  double local = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = pos0 + i;
    PrefetchSpeeds(c, pos);
    const size_t begin = c.packed_offsets[pos];
    const size_t end = c.packed_offsets[pos + 1];
    double num;
    if (end - begin < 4) {
      // Scalar path, bit-identical to SweepSpanScalar.
      num = c.packed_mu[pos];
      for (size_t k = begin; k < end; ++k) {
        num += (c.speeds[static_cast<size_t>(c.packed_ids[k])] +
                c.packed_m[k]) *
               c.packed_w[k];
      }
    } else {
      double n0 = 0.0, n1 = 0.0, n2 = 0.0, n3 = 0.0;
      size_t k = begin;
      for (; k + 4 <= end; k += 4) {
        n0 += c.speeds[static_cast<size_t>(c.packed_ids[k])] *
              c.packed_w[k];
        n1 += c.speeds[static_cast<size_t>(c.packed_ids[k + 1])] *
              c.packed_w[k + 1];
        n2 += c.speeds[static_cast<size_t>(c.packed_ids[k + 2])] *
              c.packed_w[k + 2];
        n3 += c.speeds[static_cast<size_t>(c.packed_ids[k + 3])] *
              c.packed_w[k + 3];
      }
      num = c.packed_base[pos] + ((n0 + n1) + (n2 + n3));
      for (; k < end; ++k) {
        num += c.speeds[static_cast<size_t>(c.packed_ids[k])] *
               c.packed_w[k];
      }
    }
    const double updated = num / c.packed_den[pos];
    const size_t ri = static_cast<size_t>(roads[i]);
    local = std::max(local, std::fabs(updated - c.speeds[ri]));
    c.speeds[ri] = updated;
  }
  return local;
}

#ifdef CROWDRTSE_GSP_X86

__attribute__((target("avx2"))) inline double HorizontalSumPairwise(
    __m256d v) {
  // (lane0 + lane1) + (lane2 + lane3): matches the unrolled kernel's lane
  // combination, so the two vector kernels share one association.
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d lo_sum = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
  const __m128d hi_sum = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
  return _mm_cvtsd_f64(_mm_add_sd(lo_sum, hi_sum));
}

__attribute__((target("avx2"))) double SweepSpanAvx2(
    const SweepContext& c, const graph::RoadId* roads, size_t count) {
  const size_t pos0 = static_cast<size_t>(roads - c.order_base);
  double local = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const size_t pos = pos0 + i;
    PrefetchSpeeds(c, pos);
    const size_t begin = c.packed_offsets[pos];
    const size_t end = c.packed_offsets[pos + 1];
    double num;
    if (end - begin < 4) {
      // Scalar path, bit-identical to SweepSpanScalar.
      num = c.packed_mu[pos];
      for (size_t k = begin; k < end; ++k) {
        num += (c.speeds[static_cast<size_t>(c.packed_ids[k])] +
                c.packed_m[k]) *
               c.packed_w[k];
      }
    } else {
      __m256d vnum = _mm256_setzero_pd();
      size_t k = begin;
      for (; k + 4 <= end; k += 4) {
        // Four scalar loads assembled into one vector: faster than the
        // microcoded _mm256_i32gather_pd on the common cores, and the
        // lane values are identical either way.
        const __m256d vj = _mm256_set_pd(
            c.speeds[static_cast<size_t>(c.packed_ids[k + 3])],
            c.speeds[static_cast<size_t>(c.packed_ids[k + 2])],
            c.speeds[static_cast<size_t>(c.packed_ids[k + 1])],
            c.speeds[static_cast<size_t>(c.packed_ids[k])]);
        const __m256d w = _mm256_loadu_pd(c.packed_w + k);
        // Explicit mul + add (no FMA contraction): keeps each lane's
        // arithmetic identical to the unrolled scalar lanes.
        vnum = _mm256_add_pd(vnum, _mm256_mul_pd(vj, w));
      }
      num = c.packed_base[pos] + HorizontalSumPairwise(vnum);
      for (; k < end; ++k) {
        num += c.speeds[static_cast<size_t>(c.packed_ids[k])] *
               c.packed_w[k];
      }
    }
    const double updated = num / c.packed_den[pos];
    const size_t ri = static_cast<size_t>(roads[i]);
    local = std::max(local, std::fabs(updated - c.speeds[ri]));
    c.speeds[ri] = updated;
  }
  return local;
}

#endif  // CROWDRTSE_GSP_X86

SweepSpanFn SelectSweepFn(GspKernel kernel) {
  switch (kernel) {
    case GspKernel::kReference:
      return &SweepSpanReference;
    case GspKernel::kScalar:
      return &SweepSpanScalar;
    case GspKernel::kUnrolled:
      return &SweepSpanUnrolled;
#ifdef CROWDRTSE_GSP_X86
    case GspKernel::kAvx2:
      return &SweepSpanAvx2;
#endif
    default:
      return &SweepSpanScalar;
  }
}

/// Per-thread arena for the per-query scratch: BFS levelling, the sampled
/// mask, the relax order, the parallel group boundaries and the packed
/// relax-order parameter copies. Reused across queries, so steady-state
/// propagation allocates nothing but the result.
struct Workspace {
  graph::FlatHopLevels bfs;
  std::vector<char> is_sampled;
  std::vector<graph::RoadId> order;    // relax order, level-contiguous
  std::vector<int32_t> level_offsets;  // segments of `order` per BFS level
  std::vector<int32_t> group_offsets;  // segments per (level, colour) group
  // Packed relax-order copies of the slot parameters (see PackRows).
  std::vector<size_t> packed_offsets;
  std::vector<graph::RoadId> packed_ids;
  std::vector<double> packed_w;
  std::vector<double> packed_m;
  std::vector<double> packed_mu;
  std::vector<double> packed_base;
  std::vector<double> packed_den;
};

Workspace& ThreadWorkspace() {
  thread_local Workspace workspace;
  return workspace;
}

/// Copies the rows the query relaxes into arrays contiguous in relax
/// order, one pass over the CSR source. Sweeps run several times over the
/// same order (up to max_sweeps), so paying one sequential copy turns
/// every per-sweep parameter read from a road-indexed scatter into a
/// stream — only the speeds gather stays irregular. Values are copied
/// bit-for-bit; the kernels' arithmetic is unchanged.
void PackRows(SweepContext& c, Workspace& ws) {
  const size_t m = ws.order.size();
  ws.packed_offsets.resize(m + 1);
  ws.packed_mu.resize(m);
  ws.packed_base.resize(m);
  ws.packed_den.resize(m);
  size_t total = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t r = static_cast<size_t>(ws.order[i]);
    total += c.row_offsets[r + 1] - c.row_offsets[r];
  }
  ws.packed_ids.resize(total);
  ws.packed_w.resize(total);
  ws.packed_m.resize(total);
  size_t cursor = 0;
  for (size_t i = 0; i < m; ++i) {
    const size_t r = static_cast<size_t>(ws.order[i]);
    ws.packed_offsets[i] = cursor;
    ws.packed_mu[i] = c.mu_inv_var[r];
    ws.packed_base[i] = c.num_base[r];
    ws.packed_den[i] = c.inv_var_sum[r];
    const size_t begin = c.row_offsets[r];
    const size_t row = c.row_offsets[r + 1] - begin;
    std::copy_n(c.neighbor_ids + begin, row, ws.packed_ids.data() + cursor);
    std::copy_n(c.pair_inv_var + begin, row, ws.packed_w.data() + cursor);
    std::copy_n(c.pair_mean + begin, row, ws.packed_m.data() + cursor);
    cursor += row;
  }
  ws.packed_offsets[m] = cursor;
  c.order_base = ws.order.data();
  c.order_size = m;
  c.packed_offsets = ws.packed_offsets.data();
  c.packed_ids = ws.packed_ids.data();
  c.packed_w = ws.packed_w.data();
  c.packed_m = ws.packed_m.data();
  c.packed_mu = ws.packed_mu.data();
  c.packed_base = ws.packed_base.data();
  c.packed_den = ws.packed_den.data();
}

int RunSweepsSequential(const SweepContext& ctx, SweepSpanFn fn,
                        const std::vector<graph::RoadId>& order,
                        double epsilon, int max_sweeps, bool& converged) {
  // Sequentially the level structure only fixes the visit order, and
  // `order` is already level-contiguous: one span call per sweep.
  converged = false;
  int sweeps = 0;
  while (sweeps < max_sweeps) {
    ++sweeps;
    const double max_delta = fn(ctx, order.data(), order.size());
    if (max_delta < epsilon) {
      converged = true;
      break;
    }
  }
  return sweeps;
}

int RunSweepsParallel(SweepContext& ctx, SweepSpanFn fn, Workspace& ws,
                      const std::vector<int64_t>& group_key, int64_t n,
                      util::ThreadPool& pool, double epsilon, int max_sweeps,
                      bool& converged) {
  // Split every level segment into colour groups by sorting on
  // (colour, RCM rank). Roads inside a group are mutually non-adjacent, so
  // their update order is free — RCM rank order keeps concurrent updates
  // inside overlapping cache lines.
  ws.group_offsets.clear();
  ws.group_offsets.push_back(0);
  for (size_t l = 0; l + 1 < ws.level_offsets.size(); ++l) {
    const int32_t begin = ws.level_offsets[l];
    const int32_t end = ws.level_offsets[l + 1];
    std::sort(ws.order.begin() + begin, ws.order.begin() + end,
              [&](graph::RoadId a, graph::RoadId b) {
                return group_key[static_cast<size_t>(a)] <
                       group_key[static_cast<size_t>(b)];
              });
    for (int32_t k = begin + 1; k < end; ++k) {
      const int64_t prev_color =
          group_key[static_cast<size_t>(
              ws.order[static_cast<size_t>(k - 1)])] /
          n;
      const int64_t color =
          group_key[static_cast<size_t>(ws.order[static_cast<size_t>(k)])] /
          n;
      if (color != prev_color) ws.group_offsets.push_back(k);
    }
    ws.group_offsets.push_back(end);
  }
  // Pack only after the group sort above: it permutes ws.order, and the
  // packed arrays must mirror the final relax order. The reference kernel
  // (no SoA sources) reads roads through the accessors and needs no pack.
  if (ctx.row_offsets != nullptr) PackRows(ctx, ws);

  const auto merge_max = [](std::atomic<double>& target, double value) {
    // Fully relaxed monotone-max join. Workers only publish candidates
    // here; nobody reads max_delta until after the ParallelFor join, whose
    // release/acquire pair on the pool's completion counter orders every
    // relaxed store before the main thread's load. The CAS failure path
    // reloads `current`, so the loop ends with target >= value; seq_cst
    // would add fences without changing any permitted outcome.
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  };

  converged = false;
  int sweeps = 0;
  while (sweeps < max_sweeps) {
    ++sweeps;
    std::atomic<double> max_delta{0.0};
    for (size_t g = 0; g + 1 < ws.group_offsets.size(); ++g) {
      const int32_t begin = ws.group_offsets[g];
      const int32_t end = ws.group_offsets[g + 1];
      const size_t len = static_cast<size_t>(end - begin);
      if (len == 0) continue;
      const graph::RoadId* roads =
          ws.order.data() + static_cast<size_t>(begin);
      // Tiny groups are cheaper inline than dispatched.
      if (len < 32) {
        merge_max(max_delta, fn(ctx, roads, len));
        continue;
      }
      pool.ParallelFor(len, [&](size_t chunk_begin, size_t chunk_end) {
        merge_max(max_delta,
                  fn(ctx, roads + chunk_begin, chunk_end - chunk_begin));
      });
    }
    if (max_delta.load(std::memory_order_relaxed) < epsilon) {
      converged = true;
      break;
    }
  }
  return sweeps;
}

}  // namespace

SpeedPropagator::SpeedPropagator(const rtf::RtfModel& model,
                                 GspOptions options)
    : model_(model), options_(options) {}

SpeedPropagator::~SpeedPropagator() = default;

bool SpeedPropagator::Avx2Supported() {
#ifdef CROWDRTSE_GSP_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

GspKernel SpeedPropagator::ResolveKernel(GspKernel requested) {
  switch (requested) {
    case GspKernel::kAuto:
    case GspKernel::kAvx2:
      return Avx2Supported() ? GspKernel::kAvx2 : GspKernel::kUnrolled;
    default:
      return requested;
  }
}

void SpeedPropagator::EnsureColoring() const {
  if (coloring_ != nullptr) return;
  coloring_ = std::make_unique<graph::Coloring>(
      graph::GreedyColoring(model_.graph()));
  coloring_builds_.fetch_add(1, std::memory_order_relaxed);
  const int n = model_.num_roads();
  group_key_.resize(static_cast<size_t>(n));
  for (graph::RoadId r = 0; r < n; ++r) {
    group_key_[static_cast<size_t>(r)] =
        static_cast<int64_t>(coloring_->color[static_cast<size_t>(r)]) *
            static_cast<int64_t>(n) +
        static_cast<int64_t>(model_.graph().RcmRank(r));
  }
}

double SpeedPropagator::UpdateValue(int slot, graph::RoadId road,
                                    const std::vector<double>& speeds) const {
  uint64_t clamps = 0;
  const double updated =
      UpdateRoadReference(model_, slot, road, speeds.data(), &clamps);
  rtf::AddInvVarianceClamps(clamps);
  return updated;
}

util::Result<GspResult> SpeedPropagator::Propagate(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds) const {
  return PropagateFrom(slot, sampled_roads, sampled_speeds, {});
}

util::Result<GspResult> SpeedPropagator::PropagateFrom(
    int slot, const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<double>& sampled_speeds,
    const std::vector<double>& initial_speeds) const {
  if (slot < 0 || slot >= model_.num_slots()) {
    return util::Status::OutOfRange("slot out of range: " +
                                    std::to_string(slot));
  }
  if (sampled_roads.size() != sampled_speeds.size()) {
    return util::Status::InvalidArgument(
        "sampled roads/speeds length mismatch");
  }
  const int n = model_.num_roads();
  for (graph::RoadId r : sampled_roads) {
    if (r < 0 || r >= n) {
      return util::Status::InvalidArgument("sampled road out of range: " +
                                           std::to_string(r));
    }
  }
  if (options_.epsilon <= 0.0) {
    return util::Status::InvalidArgument("epsilon must be positive");
  }
  if (options_.hop_limit < 0) {
    return util::Status::InvalidArgument("hop_limit must be >= 0");
  }

  if (!initial_speeds.empty() &&
      initial_speeds.size() != static_cast<size_t>(n)) {
    return util::Status::InvalidArgument(
        "initial speeds must cover all roads");
  }

  GspResult result;
  // Initialise: sampled roads take the probed data, everything else its
  // periodic mean (paper "Initialization") or the caller's warm start.
  if (initial_speeds.empty()) {
    result.speeds.assign(static_cast<size_t>(n), 0.0);
    for (graph::RoadId r = 0; r < n; ++r) {
      result.speeds[static_cast<size_t>(r)] = model_.Mu(slot, r);
    }
  } else {
    result.speeds = initial_speeds;
  }
  Workspace& ws = ThreadWorkspace();
  ws.is_sampled.assign(static_cast<size_t>(n), 0);
  for (size_t i = 0; i < sampled_roads.size(); ++i) {
    result.speeds[static_cast<size_t>(sampled_roads[i])] =
        sampled_speeds[i];
    ws.is_sampled[static_cast<size_t>(sampled_roads[i])] = 1;
  }

  // Schedule: BFS hop levels from the sampled roads; level 0 (the samples
  // themselves) stays fixed, deeper levels update in ascending hop order.
  graph::MultiSourceBfsInto(model_.graph(), sampled_roads, ws.bfs);
  result.hops = ws.bfs.hops;
  const int max_level =
      options_.hop_limit > 0
          ? std::min(ws.bfs.num_levels(), options_.hop_limit + 1)
          : ws.bfs.num_levels();
  ws.order.clear();
  ws.level_offsets.clear();
  ws.level_offsets.push_back(0);
  for (int l = 1; l < max_level; ++l) {
    const int32_t level_begin =
        ws.bfs.level_offsets[static_cast<size_t>(l)];
    const int32_t level_end =
        ws.bfs.level_offsets[static_cast<size_t>(l) + 1];
    for (int32_t k = level_begin; k < level_end; ++k) {
      const graph::RoadId r = ws.bfs.order[static_cast<size_t>(k)];
      if (!ws.is_sampled[static_cast<size_t>(r)]) ws.order.push_back(r);
    }
    if (static_cast<int32_t>(ws.order.size()) != ws.level_offsets.back()) {
      ws.level_offsets.push_back(static_cast<int32_t>(ws.order.size()));
    }
  }

  if (ws.order.empty()) {
    // Nothing to relax: either no samples (pure periodic estimate) or the
    // samples cover everything.
    result.converged = true;
    result.sweeps = 0;
    obs::RecordEvent(obs::EventKind::kGspSweep, slot, 0, 1);
    return result;
  }

  const GspKernel kernel = ResolveKernel(options_.kernel);
  SweepContext ctx;
  ctx.speeds = result.speeds.data();
  if (kernel == GspKernel::kReference) {
    ctx.model = &model_;
    ctx.slot = slot;
  } else {
    const rtf::RtfModel::SlotSoa& soa = model_.Soa(slot);
    ctx.mu_inv_var = soa.mu_inv_var.data();
    ctx.pair_inv_var = soa.pair_inv_var.data();
    ctx.pair_mean = soa.pair_mean.data();
    ctx.inv_var_sum = soa.inv_var_sum.data();
    ctx.num_base = soa.num_base.data();
    ctx.row_offsets = model_.graph().RowOffsets().data();
    ctx.neighbor_ids = model_.graph().NeighborIds().data();
  }
  const SweepSpanFn fn = SelectSweepFn(kernel);

  if (options_.num_threads > 1) {
    // Colour once per propagator: within a level, same-colour roads are
    // pairwise non-adjacent, so they may update concurrently without
    // racing on a neighbour's value (the paper's parallelisation
    // condition).
    EnsureColoring();
    const int num_threads = std::max(1, options_.num_threads);
    if (!pool_ || pool_->num_threads() != num_threads) {
      pool_ = std::make_unique<util::ThreadPool>(num_threads);
    }
    result.sweeps = RunSweepsParallel(
        ctx, fn, ws, group_key_, static_cast<int64_t>(n), *pool_,
        options_.epsilon, options_.max_sweeps, result.converged);
  } else {
    if (ctx.row_offsets != nullptr) PackRows(ctx, ws);
    result.sweeps =
        RunSweepsSequential(ctx, fn, ws.order, options_.epsilon,
                            options_.max_sweeps, result.converged);
  }
  // ONE flight record per propagation (sweep count in the payload), never
  // per sweep: Propagate runs per query per shard while a sweep runs tens
  // of times inside it — per-iteration records would monopolize the ring.
  obs::RecordEvent(obs::EventKind::kGspSweep, slot, result.sweeps,
                   result.converged ? 1 : 0);
  return result;
}

}  // namespace crowdrtse::gsp
