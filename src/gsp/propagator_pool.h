#ifndef CROWDRTSE_GSP_PROPAGATOR_POOL_H_
#define CROWDRTSE_GSP_PROPAGATOR_POOL_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "gsp/propagation.h"
#include "rtf/rtf_model.h"

namespace crowdrtse::gsp {

/// A fixed set of SpeedPropagator instances handed out one-at-a-time.
///
/// A parallel-GSP propagator owns a lazily created ThreadPool and is
/// documented non-reentrant (propagation.h), so a serving layer that wants
/// to run GSP for several queries at once needs one instance per in-flight
/// propagation. Constructing a propagator per query would also spawn (and
/// tear down) a thread pool per query; leasing from a fixed pool keeps the
/// worker threads warm across queries, which is where the parallel
/// configuration's latency win comes from.
///
/// Acquire() blocks until an instance is free, so the pool size doubles as
/// a concurrency limiter on the GSP phase. All methods are thread-safe.
class PropagatorPool {
 public:
  /// Move-only RAII handle to a leased propagator; returns the instance to
  /// the pool on destruction.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), propagator_(other.propagator_) {
      other.pool_ = nullptr;
      other.propagator_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const SpeedPropagator& operator*() const { return *propagator_; }
    const SpeedPropagator* operator->() const { return propagator_; }

   private:
    friend class PropagatorPool;
    Lease(PropagatorPool* pool, const SpeedPropagator* propagator)
        : pool_(pool), propagator_(propagator) {}

    PropagatorPool* pool_;
    const SpeedPropagator* propagator_;
  };

  /// Builds `size` propagators over `model` with identical `options`. The
  /// model must outlive the pool. `size` is clamped to >= 1.
  PropagatorPool(const rtf::RtfModel& model, GspOptions options, int size);

  PropagatorPool(const PropagatorPool&) = delete;
  PropagatorPool& operator=(const PropagatorPool&) = delete;

  /// Blocks until a propagator is free and leases it.
  Lease Acquire();

  int size() const { return static_cast<int>(instances_.size()); }

  /// Instances currently free (for tests and introspection; the value is
  /// stale the moment it returns under concurrency).
  int available() const;

 private:
  void Return(const SpeedPropagator* propagator);

  std::vector<std::unique_ptr<SpeedPropagator>> instances_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;
  std::vector<const SpeedPropagator*> free_;
};

}  // namespace crowdrtse::gsp

#endif  // CROWDRTSE_GSP_PROPAGATOR_POOL_H_
