#ifndef CROWDRTSE_GSP_UNCERTAINTY_H_
#define CROWDRTSE_GSP_UNCERTAINTY_H_

#include <vector>

#include "graph/graph.h"
#include "rtf/rtf_model.h"
#include "util/status.h"

namespace crowdrtse::gsp {

/// Confidence-aware RTSE (an extension beyond the paper): posterior speed
/// variances under the RTF GMRF, conditioned on the probed roads.
///
/// Convention: the paper's Eq. (5) likelihood corresponds to the density
///   p(v) ~ exp( -sum_i (v_i-mu_i)^2/sigma_i^2
///               -sum_(i,j) ((v_i-v_j)-mu_ij)^2/sigma_ij^2 ),
/// i.e. precision matrix P = 2A where A is the quadratic-form matrix whose
/// stationarity GSP iterates (Eq. 18). Posterior variances are entries of
/// P^-1 with the sampled variables pinned (their variance is 0).

/// Exact posterior variance per road via dense Cholesky on the pinned
/// precision matrix. O(m^3) in the number of unsampled roads — intended
/// for networks up to a few thousand roads (one Cholesky, then one
/// back-solve per requested road). Roads disconnected from the samples get
/// their prior marginal under the same convention.
util::Result<std::vector<double>> ExactPosteriorVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads);

/// Cheap local surrogate: the conditional variance of each road given its
/// neighbours, 1 / P_ii. Always a lower bound on the exact posterior
/// variance (conditioning on more information cannot increase variance);
/// useful for ranking roads by confidence at O(|R| + |E|) cost.
util::Result<std::vector<double>> LocalConditionalVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads);

/// Degradation-ladder variances: LocalConditionalVariances, with every
/// `degraded_road` (a road whose crowd probes all failed — see
/// crowd::DispatchController) overridden by its *widened prior marginal*
/// inflation * sigma_i^2. The local conditional bound assumes neighbours
/// carry probe-derived information; a degraded road's own probe attempt
/// failing is evidence against that, so its reported uncertainty must not
/// shrink below the prior. `inflation` must be >= 1.
util::Result<std::vector<double>> DegradedAwareVariances(
    const rtf::RtfModel& model, int slot,
    const std::vector<graph::RoadId>& sampled_roads,
    const std::vector<graph::RoadId>& degraded_roads, double inflation);

}  // namespace crowdrtse::gsp

#endif  // CROWDRTSE_GSP_UNCERTAINTY_H_
