# Empty compiler generated dependencies file for crowdrtse_ocs.
# This may be replaced when dependencies are built.
