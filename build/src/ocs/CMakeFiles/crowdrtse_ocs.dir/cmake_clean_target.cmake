file(REMOVE_RECURSE
  "libcrowdrtse_ocs.a"
)
