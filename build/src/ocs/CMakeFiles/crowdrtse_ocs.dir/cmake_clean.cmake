file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_ocs.dir/exact_solver.cc.o"
  "CMakeFiles/crowdrtse_ocs.dir/exact_solver.cc.o.d"
  "CMakeFiles/crowdrtse_ocs.dir/greedy_selectors.cc.o"
  "CMakeFiles/crowdrtse_ocs.dir/greedy_selectors.cc.o.d"
  "CMakeFiles/crowdrtse_ocs.dir/ocs_problem.cc.o"
  "CMakeFiles/crowdrtse_ocs.dir/ocs_problem.cc.o.d"
  "libcrowdrtse_ocs.a"
  "libcrowdrtse_ocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_ocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
