
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/grmc.cc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/grmc.cc.o" "gcc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/grmc.cc.o.d"
  "/root/repo/src/baselines/knn_days.cc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/knn_days.cc.o" "gcc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/knn_days.cc.o.d"
  "/root/repo/src/baselines/lasso.cc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/lasso.cc.o" "gcc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/lasso.cc.o.d"
  "/root/repo/src/baselines/periodic_estimator.cc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/periodic_estimator.cc.o" "gcc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/periodic_estimator.cc.o.d"
  "/root/repo/src/baselines/ridge.cc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/ridge.cc.o" "gcc" "src/baselines/CMakeFiles/crowdrtse_baselines.dir/ridge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtf/CMakeFiles/crowdrtse_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/crowdrtse_math.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/crowdrtse_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
