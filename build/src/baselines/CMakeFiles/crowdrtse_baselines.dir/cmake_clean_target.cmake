file(REMOVE_RECURSE
  "libcrowdrtse_baselines.a"
)
