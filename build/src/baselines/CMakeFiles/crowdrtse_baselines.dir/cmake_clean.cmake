file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_baselines.dir/grmc.cc.o"
  "CMakeFiles/crowdrtse_baselines.dir/grmc.cc.o.d"
  "CMakeFiles/crowdrtse_baselines.dir/knn_days.cc.o"
  "CMakeFiles/crowdrtse_baselines.dir/knn_days.cc.o.d"
  "CMakeFiles/crowdrtse_baselines.dir/lasso.cc.o"
  "CMakeFiles/crowdrtse_baselines.dir/lasso.cc.o.d"
  "CMakeFiles/crowdrtse_baselines.dir/periodic_estimator.cc.o"
  "CMakeFiles/crowdrtse_baselines.dir/periodic_estimator.cc.o.d"
  "CMakeFiles/crowdrtse_baselines.dir/ridge.cc.o"
  "CMakeFiles/crowdrtse_baselines.dir/ridge.cc.o.d"
  "libcrowdrtse_baselines.a"
  "libcrowdrtse_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
