# Empty compiler generated dependencies file for crowdrtse_baselines.
# This may be replaced when dependencies are built.
