file(REMOVE_RECURSE
  "libcrowdrtse_gsp.a"
)
