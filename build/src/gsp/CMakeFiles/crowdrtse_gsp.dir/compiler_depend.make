# Empty compiler generated dependencies file for crowdrtse_gsp.
# This may be replaced when dependencies are built.
