file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_gsp.dir/propagation.cc.o"
  "CMakeFiles/crowdrtse_gsp.dir/propagation.cc.o.d"
  "CMakeFiles/crowdrtse_gsp.dir/uncertainty.cc.o"
  "CMakeFiles/crowdrtse_gsp.dir/uncertainty.cc.o.d"
  "libcrowdrtse_gsp.a"
  "libcrowdrtse_gsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_gsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
