
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsp/propagation.cc" "src/gsp/CMakeFiles/crowdrtse_gsp.dir/propagation.cc.o" "gcc" "src/gsp/CMakeFiles/crowdrtse_gsp.dir/propagation.cc.o.d"
  "/root/repo/src/gsp/uncertainty.cc" "src/gsp/CMakeFiles/crowdrtse_gsp.dir/uncertainty.cc.o" "gcc" "src/gsp/CMakeFiles/crowdrtse_gsp.dir/uncertainty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtf/CMakeFiles/crowdrtse_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/crowdrtse_math.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/crowdrtse_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
