
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/aggregation.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/aggregation.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/aggregation.cc.o.d"
  "/root/repo/src/crowd/calibration.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/calibration.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/calibration.cc.o.d"
  "/root/repo/src/crowd/cost_model.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/cost_model.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/cost_model.cc.o.d"
  "/root/repo/src/crowd/crowd_simulator.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/crowd_simulator.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/crowd_simulator.cc.o.d"
  "/root/repo/src/crowd/gmission_scenario.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/gmission_scenario.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/gmission_scenario.cc.o.d"
  "/root/repo/src/crowd/task_assignment.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/task_assignment.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/task_assignment.cc.o.d"
  "/root/repo/src/crowd/trajectory.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/trajectory.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/trajectory.cc.o.d"
  "/root/repo/src/crowd/worker_pool.cc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/worker_pool.cc.o" "gcc" "src/crowd/CMakeFiles/crowdrtse_crowd.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/crowdrtse_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
