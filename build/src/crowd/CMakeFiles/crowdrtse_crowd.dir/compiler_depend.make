# Empty compiler generated dependencies file for crowdrtse_crowd.
# This may be replaced when dependencies are built.
