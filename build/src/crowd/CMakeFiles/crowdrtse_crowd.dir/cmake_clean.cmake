file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_crowd.dir/aggregation.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/aggregation.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/calibration.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/calibration.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/cost_model.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/cost_model.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/crowd_simulator.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/crowd_simulator.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/gmission_scenario.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/gmission_scenario.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/task_assignment.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/task_assignment.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/trajectory.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/trajectory.cc.o.d"
  "CMakeFiles/crowdrtse_crowd.dir/worker_pool.cc.o"
  "CMakeFiles/crowdrtse_crowd.dir/worker_pool.cc.o.d"
  "libcrowdrtse_crowd.a"
  "libcrowdrtse_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
