file(REMOVE_RECURSE
  "libcrowdrtse_crowd.a"
)
