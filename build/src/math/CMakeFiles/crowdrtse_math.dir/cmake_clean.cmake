file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_math.dir/dense_matrix.cc.o"
  "CMakeFiles/crowdrtse_math.dir/dense_matrix.cc.o.d"
  "CMakeFiles/crowdrtse_math.dir/linear_solver.cc.o"
  "CMakeFiles/crowdrtse_math.dir/linear_solver.cc.o.d"
  "CMakeFiles/crowdrtse_math.dir/vector_ops.cc.o"
  "CMakeFiles/crowdrtse_math.dir/vector_ops.cc.o.d"
  "libcrowdrtse_math.a"
  "libcrowdrtse_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
