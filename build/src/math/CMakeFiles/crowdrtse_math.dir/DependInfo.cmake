
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/dense_matrix.cc" "src/math/CMakeFiles/crowdrtse_math.dir/dense_matrix.cc.o" "gcc" "src/math/CMakeFiles/crowdrtse_math.dir/dense_matrix.cc.o.d"
  "/root/repo/src/math/linear_solver.cc" "src/math/CMakeFiles/crowdrtse_math.dir/linear_solver.cc.o" "gcc" "src/math/CMakeFiles/crowdrtse_math.dir/linear_solver.cc.o.d"
  "/root/repo/src/math/vector_ops.cc" "src/math/CMakeFiles/crowdrtse_math.dir/vector_ops.cc.o" "gcc" "src/math/CMakeFiles/crowdrtse_math.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
