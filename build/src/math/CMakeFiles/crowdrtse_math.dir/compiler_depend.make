# Empty compiler generated dependencies file for crowdrtse_math.
# This may be replaced when dependencies are built.
