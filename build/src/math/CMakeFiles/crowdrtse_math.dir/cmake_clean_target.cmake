file(REMOVE_RECURSE
  "libcrowdrtse_math.a"
)
