# Empty dependencies file for crowdrtse_eval.
# This may be replaced when dependencies are built.
