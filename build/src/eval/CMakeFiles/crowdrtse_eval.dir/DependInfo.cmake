
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/crowdrtse_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/crowdrtse_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/svg_map.cc" "src/eval/CMakeFiles/crowdrtse_eval.dir/svg_map.cc.o" "gcc" "src/eval/CMakeFiles/crowdrtse_eval.dir/svg_map.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/eval/CMakeFiles/crowdrtse_eval.dir/table_printer.cc.o" "gcc" "src/eval/CMakeFiles/crowdrtse_eval.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
