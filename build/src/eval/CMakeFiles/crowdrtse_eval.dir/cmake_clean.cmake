file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_eval.dir/metrics.cc.o"
  "CMakeFiles/crowdrtse_eval.dir/metrics.cc.o.d"
  "CMakeFiles/crowdrtse_eval.dir/svg_map.cc.o"
  "CMakeFiles/crowdrtse_eval.dir/svg_map.cc.o.d"
  "CMakeFiles/crowdrtse_eval.dir/table_printer.cc.o"
  "CMakeFiles/crowdrtse_eval.dir/table_printer.cc.o.d"
  "libcrowdrtse_eval.a"
  "libcrowdrtse_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
