# Empty compiler generated dependencies file for crowdrtse_eval.
# This may be replaced when dependencies are built.
