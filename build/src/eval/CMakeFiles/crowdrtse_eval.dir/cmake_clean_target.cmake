file(REMOVE_RECURSE
  "libcrowdrtse_eval.a"
)
