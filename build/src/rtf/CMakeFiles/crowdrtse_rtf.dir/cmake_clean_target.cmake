file(REMOVE_RECURSE
  "libcrowdrtse_rtf.a"
)
