# Empty dependencies file for crowdrtse_rtf.
# This may be replaced when dependencies are built.
