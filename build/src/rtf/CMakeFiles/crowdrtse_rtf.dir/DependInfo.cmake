
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtf/ccd_trainer.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/ccd_trainer.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/ccd_trainer.cc.o.d"
  "/root/repo/src/rtf/correlation_table.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/correlation_table.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/correlation_table.cc.o.d"
  "/root/repo/src/rtf/moment_accumulator.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/moment_accumulator.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/moment_accumulator.cc.o.d"
  "/root/repo/src/rtf/moment_estimator.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/moment_estimator.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/moment_estimator.cc.o.d"
  "/root/repo/src/rtf/rtf_model.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/rtf_model.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/rtf_model.cc.o.d"
  "/root/repo/src/rtf/rtf_serialization.cc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/rtf_serialization.cc.o" "gcc" "src/rtf/CMakeFiles/crowdrtse_rtf.dir/rtf_serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/crowdrtse_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
