file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_rtf.dir/ccd_trainer.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/ccd_trainer.cc.o.d"
  "CMakeFiles/crowdrtse_rtf.dir/correlation_table.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/correlation_table.cc.o.d"
  "CMakeFiles/crowdrtse_rtf.dir/moment_accumulator.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/moment_accumulator.cc.o.d"
  "CMakeFiles/crowdrtse_rtf.dir/moment_estimator.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/moment_estimator.cc.o.d"
  "CMakeFiles/crowdrtse_rtf.dir/rtf_model.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/rtf_model.cc.o.d"
  "CMakeFiles/crowdrtse_rtf.dir/rtf_serialization.cc.o"
  "CMakeFiles/crowdrtse_rtf.dir/rtf_serialization.cc.o.d"
  "libcrowdrtse_rtf.a"
  "libcrowdrtse_rtf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_rtf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
