file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_server.dir/budget_ledger.cc.o"
  "CMakeFiles/crowdrtse_server.dir/budget_ledger.cc.o.d"
  "CMakeFiles/crowdrtse_server.dir/query_engine.cc.o"
  "CMakeFiles/crowdrtse_server.dir/query_engine.cc.o.d"
  "CMakeFiles/crowdrtse_server.dir/worker_registry.cc.o"
  "CMakeFiles/crowdrtse_server.dir/worker_registry.cc.o.d"
  "libcrowdrtse_server.a"
  "libcrowdrtse_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
