# Empty compiler generated dependencies file for crowdrtse_server.
# This may be replaced when dependencies are built.
