file(REMOVE_RECURSE
  "libcrowdrtse_server.a"
)
