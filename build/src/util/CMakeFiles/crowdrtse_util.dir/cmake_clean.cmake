file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_util.dir/csv.cc.o"
  "CMakeFiles/crowdrtse_util.dir/csv.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/logging.cc.o"
  "CMakeFiles/crowdrtse_util.dir/logging.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/rng.cc.o"
  "CMakeFiles/crowdrtse_util.dir/rng.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/serialize.cc.o"
  "CMakeFiles/crowdrtse_util.dir/serialize.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/stats.cc.o"
  "CMakeFiles/crowdrtse_util.dir/stats.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/status.cc.o"
  "CMakeFiles/crowdrtse_util.dir/status.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/string_util.cc.o"
  "CMakeFiles/crowdrtse_util.dir/string_util.cc.o.d"
  "CMakeFiles/crowdrtse_util.dir/thread_pool.cc.o"
  "CMakeFiles/crowdrtse_util.dir/thread_pool.cc.o.d"
  "libcrowdrtse_util.a"
  "libcrowdrtse_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
