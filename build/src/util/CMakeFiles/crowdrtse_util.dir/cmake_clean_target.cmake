file(REMOVE_RECURSE
  "libcrowdrtse_util.a"
)
