# Empty dependencies file for crowdrtse_util.
# This may be replaced when dependencies are built.
