
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bfs.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/bfs.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/bfs.cc.o.d"
  "/root/repo/src/graph/coloring.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/coloring.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/coloring.cc.o.d"
  "/root/repo/src/graph/connected_components.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/connected_components.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/connected_components.cc.o.d"
  "/root/repo/src/graph/dijkstra.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/dijkstra.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/dijkstra.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/road_geometry.cc" "src/graph/CMakeFiles/crowdrtse_graph.dir/road_geometry.cc.o" "gcc" "src/graph/CMakeFiles/crowdrtse_graph.dir/road_geometry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
