file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_graph.dir/bfs.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/bfs.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/coloring.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/coloring.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/connected_components.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/connected_components.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/dijkstra.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/dijkstra.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/generators.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/generators.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/graph.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/graph.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/graph_io.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/crowdrtse_graph.dir/road_geometry.cc.o"
  "CMakeFiles/crowdrtse_graph.dir/road_geometry.cc.o.d"
  "libcrowdrtse_graph.a"
  "libcrowdrtse_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
