# Empty compiler generated dependencies file for crowdrtse_graph.
# This may be replaced when dependencies are built.
