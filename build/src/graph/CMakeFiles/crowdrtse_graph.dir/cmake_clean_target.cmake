file(REMOVE_RECURSE
  "libcrowdrtse_graph.a"
)
