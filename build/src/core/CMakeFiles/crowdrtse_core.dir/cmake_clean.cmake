file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_core.dir/congestion_monitor.cc.o"
  "CMakeFiles/crowdrtse_core.dir/congestion_monitor.cc.o.d"
  "CMakeFiles/crowdrtse_core.dir/crowd_rtse.cc.o"
  "CMakeFiles/crowdrtse_core.dir/crowd_rtse.cc.o.d"
  "CMakeFiles/crowdrtse_core.dir/theta_tuner.cc.o"
  "CMakeFiles/crowdrtse_core.dir/theta_tuner.cc.o.d"
  "libcrowdrtse_core.a"
  "libcrowdrtse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
