file(REMOVE_RECURSE
  "libcrowdrtse_core.a"
)
