# Empty dependencies file for crowdrtse_core.
# This may be replaced when dependencies are built.
