file(REMOVE_RECURSE
  "CMakeFiles/crowdrtse_traffic.dir/history_io.cc.o"
  "CMakeFiles/crowdrtse_traffic.dir/history_io.cc.o.d"
  "CMakeFiles/crowdrtse_traffic.dir/history_store.cc.o"
  "CMakeFiles/crowdrtse_traffic.dir/history_store.cc.o.d"
  "CMakeFiles/crowdrtse_traffic.dir/traffic_simulator.cc.o"
  "CMakeFiles/crowdrtse_traffic.dir/traffic_simulator.cc.o.d"
  "libcrowdrtse_traffic.a"
  "libcrowdrtse_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdrtse_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
