
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/history_io.cc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/history_io.cc.o" "gcc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/history_io.cc.o.d"
  "/root/repo/src/traffic/history_store.cc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/history_store.cc.o" "gcc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/history_store.cc.o.d"
  "/root/repo/src/traffic/traffic_simulator.cc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/traffic_simulator.cc.o" "gcc" "src/traffic/CMakeFiles/crowdrtse_traffic.dir/traffic_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
