file(REMOVE_RECURSE
  "libcrowdrtse_traffic.a"
)
