# Empty dependencies file for crowdrtse_traffic.
# This may be replaced when dependencies are built.
