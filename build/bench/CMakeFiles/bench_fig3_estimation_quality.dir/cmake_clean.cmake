file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_estimation_quality.dir/bench_fig3_estimation_quality.cc.o"
  "CMakeFiles/bench_fig3_estimation_quality.dir/bench_fig3_estimation_quality.cc.o.d"
  "bench_fig3_estimation_quality"
  "bench_fig3_estimation_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_estimation_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
