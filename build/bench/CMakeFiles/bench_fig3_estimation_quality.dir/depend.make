# Empty dependencies file for bench_fig3_estimation_quality.
# This may be replaced when dependencies are built.
