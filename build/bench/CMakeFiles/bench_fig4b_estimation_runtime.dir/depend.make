# Empty dependencies file for bench_fig4b_estimation_runtime.
# This may be replaced when dependencies are built.
