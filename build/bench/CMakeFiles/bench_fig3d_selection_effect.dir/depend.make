# Empty dependencies file for bench_fig3d_selection_effect.
# This may be replaced when dependencies are built.
