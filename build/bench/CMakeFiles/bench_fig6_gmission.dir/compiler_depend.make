# Empty compiler generated dependencies file for bench_fig6_gmission.
# This may be replaced when dependencies are built.
