file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gmission.dir/bench_fig6_gmission.cc.o"
  "CMakeFiles/bench_fig6_gmission.dir/bench_fig6_gmission.cc.o.d"
  "bench_fig6_gmission"
  "bench_fig6_gmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
