# Empty compiler generated dependencies file for bench_fig2_ocs_objective.
# This may be replaced when dependencies are built.
