# Empty compiler generated dependencies file for bench_fig4a_ocs_runtime.
# This may be replaced when dependencies are built.
