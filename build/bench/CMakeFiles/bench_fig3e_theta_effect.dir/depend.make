# Empty dependencies file for bench_fig3e_theta_effect.
# This may be replaced when dependencies are built.
