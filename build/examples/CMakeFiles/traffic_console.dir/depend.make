# Empty dependencies file for traffic_console.
# This may be replaced when dependencies are built.
