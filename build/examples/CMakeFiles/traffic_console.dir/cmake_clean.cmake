file(REMOVE_RECURSE
  "CMakeFiles/traffic_console.dir/traffic_console.cpp.o"
  "CMakeFiles/traffic_console.dir/traffic_console.cpp.o.d"
  "traffic_console"
  "traffic_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
