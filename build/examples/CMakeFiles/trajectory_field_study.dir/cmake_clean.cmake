file(REMOVE_RECURSE
  "CMakeFiles/trajectory_field_study.dir/trajectory_field_study.cpp.o"
  "CMakeFiles/trajectory_field_study.dir/trajectory_field_study.cpp.o.d"
  "trajectory_field_study"
  "trajectory_field_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_field_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
