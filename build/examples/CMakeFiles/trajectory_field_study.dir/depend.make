# Empty dependencies file for trajectory_field_study.
# This may be replaced when dependencies are built.
