# Empty compiler generated dependencies file for city_map_render.
# This may be replaced when dependencies are built.
