file(REMOVE_RECURSE
  "CMakeFiles/city_map_render.dir/city_map_render.cpp.o"
  "CMakeFiles/city_map_render.dir/city_map_render.cpp.o.d"
  "city_map_render"
  "city_map_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_map_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
