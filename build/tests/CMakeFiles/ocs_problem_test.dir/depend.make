# Empty dependencies file for ocs_problem_test.
# This may be replaced when dependencies are built.
