file(REMOVE_RECURSE
  "CMakeFiles/ocs_problem_test.dir/ocs_problem_test.cc.o"
  "CMakeFiles/ocs_problem_test.dir/ocs_problem_test.cc.o.d"
  "ocs_problem_test"
  "ocs_problem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
