file(REMOVE_RECURSE
  "CMakeFiles/baselines_ridge_test.dir/baselines_ridge_test.cc.o"
  "CMakeFiles/baselines_ridge_test.dir/baselines_ridge_test.cc.o.d"
  "baselines_ridge_test"
  "baselines_ridge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_ridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
