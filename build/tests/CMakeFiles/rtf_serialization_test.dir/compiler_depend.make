# Empty compiler generated dependencies file for rtf_serialization_test.
# This may be replaced when dependencies are built.
