file(REMOVE_RECURSE
  "CMakeFiles/rtf_serialization_test.dir/rtf_serialization_test.cc.o"
  "CMakeFiles/rtf_serialization_test.dir/rtf_serialization_test.cc.o.d"
  "rtf_serialization_test"
  "rtf_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
