file(REMOVE_RECURSE
  "CMakeFiles/baselines_grmc_test.dir/baselines_grmc_test.cc.o"
  "CMakeFiles/baselines_grmc_test.dir/baselines_grmc_test.cc.o.d"
  "baselines_grmc_test"
  "baselines_grmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_grmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
