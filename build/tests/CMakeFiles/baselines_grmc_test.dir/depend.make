# Empty dependencies file for baselines_grmc_test.
# This may be replaced when dependencies are built.
