file(REMOVE_RECURSE
  "CMakeFiles/gsp_uncertainty_test.dir/gsp_uncertainty_test.cc.o"
  "CMakeFiles/gsp_uncertainty_test.dir/gsp_uncertainty_test.cc.o.d"
  "gsp_uncertainty_test"
  "gsp_uncertainty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_uncertainty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
