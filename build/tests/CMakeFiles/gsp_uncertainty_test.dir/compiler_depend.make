# Empty compiler generated dependencies file for gsp_uncertainty_test.
# This may be replaced when dependencies are built.
