file(REMOVE_RECURSE
  "CMakeFiles/ocs_property_test.dir/ocs_property_test.cc.o"
  "CMakeFiles/ocs_property_test.dir/ocs_property_test.cc.o.d"
  "ocs_property_test"
  "ocs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
