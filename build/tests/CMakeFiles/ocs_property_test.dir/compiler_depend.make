# Empty compiler generated dependencies file for ocs_property_test.
# This may be replaced when dependencies are built.
