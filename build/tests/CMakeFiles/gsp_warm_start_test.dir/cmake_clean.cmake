file(REMOVE_RECURSE
  "CMakeFiles/gsp_warm_start_test.dir/gsp_warm_start_test.cc.o"
  "CMakeFiles/gsp_warm_start_test.dir/gsp_warm_start_test.cc.o.d"
  "gsp_warm_start_test"
  "gsp_warm_start_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_warm_start_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
