file(REMOVE_RECURSE
  "CMakeFiles/crowd_simulator_test.dir/crowd_simulator_test.cc.o"
  "CMakeFiles/crowd_simulator_test.dir/crowd_simulator_test.cc.o.d"
  "crowd_simulator_test"
  "crowd_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
