
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtf_model_test.cc" "tests/CMakeFiles/rtf_model_test.dir/rtf_model_test.cc.o" "gcc" "tests/CMakeFiles/rtf_model_test.dir/rtf_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/crowdrtse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/crowdrtse_server.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/crowdrtse_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/crowdrtse_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/gsp/CMakeFiles/crowdrtse_gsp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/crowdrtse_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/rtf/CMakeFiles/crowdrtse_rtf.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/crowdrtse_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/crowdrtse_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/crowdrtse_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/crowdrtse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crowdrtse_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
