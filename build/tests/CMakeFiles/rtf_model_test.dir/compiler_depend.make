# Empty compiler generated dependencies file for rtf_model_test.
# This may be replaced when dependencies are built.
