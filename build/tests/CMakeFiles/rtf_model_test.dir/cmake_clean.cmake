file(REMOVE_RECURSE
  "CMakeFiles/rtf_model_test.dir/rtf_model_test.cc.o"
  "CMakeFiles/rtf_model_test.dir/rtf_model_test.cc.o.d"
  "rtf_model_test"
  "rtf_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
