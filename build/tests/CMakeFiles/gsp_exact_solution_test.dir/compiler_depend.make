# Empty compiler generated dependencies file for gsp_exact_solution_test.
# This may be replaced when dependencies are built.
