file(REMOVE_RECURSE
  "CMakeFiles/gsp_exact_solution_test.dir/gsp_exact_solution_test.cc.o"
  "CMakeFiles/gsp_exact_solution_test.dir/gsp_exact_solution_test.cc.o.d"
  "gsp_exact_solution_test"
  "gsp_exact_solution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_exact_solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
