file(REMOVE_RECURSE
  "CMakeFiles/baselines_knn_days_test.dir/baselines_knn_days_test.cc.o"
  "CMakeFiles/baselines_knn_days_test.dir/baselines_knn_days_test.cc.o.d"
  "baselines_knn_days_test"
  "baselines_knn_days_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_knn_days_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
