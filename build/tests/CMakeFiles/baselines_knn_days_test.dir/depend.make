# Empty dependencies file for baselines_knn_days_test.
# This may be replaced when dependencies are built.
