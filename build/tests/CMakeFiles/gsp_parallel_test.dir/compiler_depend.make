# Empty compiler generated dependencies file for gsp_parallel_test.
# This may be replaced when dependencies are built.
