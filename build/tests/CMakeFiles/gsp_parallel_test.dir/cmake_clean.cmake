file(REMOVE_RECURSE
  "CMakeFiles/gsp_parallel_test.dir/gsp_parallel_test.cc.o"
  "CMakeFiles/gsp_parallel_test.dir/gsp_parallel_test.cc.o.d"
  "gsp_parallel_test"
  "gsp_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
