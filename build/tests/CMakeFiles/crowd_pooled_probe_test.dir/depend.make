# Empty dependencies file for crowd_pooled_probe_test.
# This may be replaced when dependencies are built.
