file(REMOVE_RECURSE
  "CMakeFiles/crowd_pooled_probe_test.dir/crowd_pooled_probe_test.cc.o"
  "CMakeFiles/crowd_pooled_probe_test.dir/crowd_pooled_probe_test.cc.o.d"
  "crowd_pooled_probe_test"
  "crowd_pooled_probe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_pooled_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
