# Empty dependencies file for estimator_contract_test.
# This may be replaced when dependencies are built.
