file(REMOVE_RECURSE
  "CMakeFiles/estimator_contract_test.dir/estimator_contract_test.cc.o"
  "CMakeFiles/estimator_contract_test.dir/estimator_contract_test.cc.o.d"
  "estimator_contract_test"
  "estimator_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
