file(REMOVE_RECURSE
  "CMakeFiles/integration_day_in_the_life_test.dir/integration_day_in_the_life_test.cc.o"
  "CMakeFiles/integration_day_in_the_life_test.dir/integration_day_in_the_life_test.cc.o.d"
  "integration_day_in_the_life_test"
  "integration_day_in_the_life_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_day_in_the_life_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
