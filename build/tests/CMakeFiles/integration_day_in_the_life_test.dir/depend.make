# Empty dependencies file for integration_day_in_the_life_test.
# This may be replaced when dependencies are built.
