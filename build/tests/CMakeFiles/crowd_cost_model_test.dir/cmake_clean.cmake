file(REMOVE_RECURSE
  "CMakeFiles/crowd_cost_model_test.dir/crowd_cost_model_test.cc.o"
  "CMakeFiles/crowd_cost_model_test.dir/crowd_cost_model_test.cc.o.d"
  "crowd_cost_model_test"
  "crowd_cost_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
