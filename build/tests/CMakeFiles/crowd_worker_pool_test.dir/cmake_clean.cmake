file(REMOVE_RECURSE
  "CMakeFiles/crowd_worker_pool_test.dir/crowd_worker_pool_test.cc.o"
  "CMakeFiles/crowd_worker_pool_test.dir/crowd_worker_pool_test.cc.o.d"
  "crowd_worker_pool_test"
  "crowd_worker_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_worker_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
