# Empty compiler generated dependencies file for crowd_trajectory_test.
# This may be replaced when dependencies are built.
