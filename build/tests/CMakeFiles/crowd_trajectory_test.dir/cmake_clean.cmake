file(REMOVE_RECURSE
  "CMakeFiles/crowd_trajectory_test.dir/crowd_trajectory_test.cc.o"
  "CMakeFiles/crowd_trajectory_test.dir/crowd_trajectory_test.cc.o.d"
  "crowd_trajectory_test"
  "crowd_trajectory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_trajectory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
