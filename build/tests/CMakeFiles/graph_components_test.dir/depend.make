# Empty dependencies file for graph_components_test.
# This may be replaced when dependencies are built.
