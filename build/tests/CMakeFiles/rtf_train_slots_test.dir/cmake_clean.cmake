file(REMOVE_RECURSE
  "CMakeFiles/rtf_train_slots_test.dir/rtf_train_slots_test.cc.o"
  "CMakeFiles/rtf_train_slots_test.dir/rtf_train_slots_test.cc.o.d"
  "rtf_train_slots_test"
  "rtf_train_slots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_train_slots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
