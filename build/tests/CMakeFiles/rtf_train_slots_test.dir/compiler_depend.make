# Empty compiler generated dependencies file for rtf_train_slots_test.
# This may be replaced when dependencies are built.
