# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rtf_train_slots_test.
