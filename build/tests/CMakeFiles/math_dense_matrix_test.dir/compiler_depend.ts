# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for math_dense_matrix_test.
