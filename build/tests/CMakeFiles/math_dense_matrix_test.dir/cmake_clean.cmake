file(REMOVE_RECURSE
  "CMakeFiles/math_dense_matrix_test.dir/math_dense_matrix_test.cc.o"
  "CMakeFiles/math_dense_matrix_test.dir/math_dense_matrix_test.cc.o.d"
  "math_dense_matrix_test"
  "math_dense_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_dense_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
