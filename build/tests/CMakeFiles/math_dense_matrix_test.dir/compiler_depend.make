# Empty compiler generated dependencies file for math_dense_matrix_test.
# This may be replaced when dependencies are built.
