file(REMOVE_RECURSE
  "CMakeFiles/graph_bfs_test.dir/graph_bfs_test.cc.o"
  "CMakeFiles/graph_bfs_test.dir/graph_bfs_test.cc.o.d"
  "graph_bfs_test"
  "graph_bfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_bfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
