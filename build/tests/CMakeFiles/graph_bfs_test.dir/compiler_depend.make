# Empty compiler generated dependencies file for graph_bfs_test.
# This may be replaced when dependencies are built.
