# Empty dependencies file for rtf_moment_accumulator_test.
# This may be replaced when dependencies are built.
