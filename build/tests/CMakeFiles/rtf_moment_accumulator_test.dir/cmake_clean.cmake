file(REMOVE_RECURSE
  "CMakeFiles/rtf_moment_accumulator_test.dir/rtf_moment_accumulator_test.cc.o"
  "CMakeFiles/rtf_moment_accumulator_test.dir/rtf_moment_accumulator_test.cc.o.d"
  "rtf_moment_accumulator_test"
  "rtf_moment_accumulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_moment_accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
