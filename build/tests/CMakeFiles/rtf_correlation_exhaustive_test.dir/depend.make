# Empty dependencies file for rtf_correlation_exhaustive_test.
# This may be replaced when dependencies are built.
