# Empty dependencies file for server_query_engine_test.
# This may be replaced when dependencies are built.
