file(REMOVE_RECURSE
  "CMakeFiles/server_query_engine_test.dir/server_query_engine_test.cc.o"
  "CMakeFiles/server_query_engine_test.dir/server_query_engine_test.cc.o.d"
  "server_query_engine_test"
  "server_query_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_query_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
