# Empty dependencies file for crowd_calibration_test.
# This may be replaced when dependencies are built.
