file(REMOVE_RECURSE
  "CMakeFiles/crowd_calibration_test.dir/crowd_calibration_test.cc.o"
  "CMakeFiles/crowd_calibration_test.dir/crowd_calibration_test.cc.o.d"
  "crowd_calibration_test"
  "crowd_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
