# Empty dependencies file for baselines_periodic_test.
# This may be replaced when dependencies are built.
