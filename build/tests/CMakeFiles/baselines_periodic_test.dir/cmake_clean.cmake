file(REMOVE_RECURSE
  "CMakeFiles/baselines_periodic_test.dir/baselines_periodic_test.cc.o"
  "CMakeFiles/baselines_periodic_test.dir/baselines_periodic_test.cc.o.d"
  "baselines_periodic_test"
  "baselines_periodic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_periodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
