# Empty compiler generated dependencies file for graph_road_geometry_test.
# This may be replaced when dependencies are built.
