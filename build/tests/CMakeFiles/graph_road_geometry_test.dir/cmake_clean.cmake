file(REMOVE_RECURSE
  "CMakeFiles/graph_road_geometry_test.dir/graph_road_geometry_test.cc.o"
  "CMakeFiles/graph_road_geometry_test.dir/graph_road_geometry_test.cc.o.d"
  "graph_road_geometry_test"
  "graph_road_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_road_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
