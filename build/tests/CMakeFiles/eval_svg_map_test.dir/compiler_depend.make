# Empty compiler generated dependencies file for eval_svg_map_test.
# This may be replaced when dependencies are built.
