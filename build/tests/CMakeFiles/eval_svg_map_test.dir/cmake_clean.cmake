file(REMOVE_RECURSE
  "CMakeFiles/eval_svg_map_test.dir/eval_svg_map_test.cc.o"
  "CMakeFiles/eval_svg_map_test.dir/eval_svg_map_test.cc.o.d"
  "eval_svg_map_test"
  "eval_svg_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_svg_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
