file(REMOVE_RECURSE
  "CMakeFiles/rtf_ccd_trainer_test.dir/rtf_ccd_trainer_test.cc.o"
  "CMakeFiles/rtf_ccd_trainer_test.dir/rtf_ccd_trainer_test.cc.o.d"
  "rtf_ccd_trainer_test"
  "rtf_ccd_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_ccd_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
