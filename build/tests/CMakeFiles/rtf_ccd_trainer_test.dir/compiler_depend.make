# Empty compiler generated dependencies file for rtf_ccd_trainer_test.
# This may be replaced when dependencies are built.
