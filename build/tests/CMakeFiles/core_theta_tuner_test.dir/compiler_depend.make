# Empty compiler generated dependencies file for core_theta_tuner_test.
# This may be replaced when dependencies are built.
