file(REMOVE_RECURSE
  "CMakeFiles/crowd_gmission_test.dir/crowd_gmission_test.cc.o"
  "CMakeFiles/crowd_gmission_test.dir/crowd_gmission_test.cc.o.d"
  "crowd_gmission_test"
  "crowd_gmission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_gmission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
