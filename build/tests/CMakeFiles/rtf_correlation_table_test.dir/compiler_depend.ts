# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rtf_correlation_table_test.
