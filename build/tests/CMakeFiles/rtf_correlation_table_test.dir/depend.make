# Empty dependencies file for rtf_correlation_table_test.
# This may be replaced when dependencies are built.
