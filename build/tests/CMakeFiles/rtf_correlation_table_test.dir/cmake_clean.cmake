file(REMOVE_RECURSE
  "CMakeFiles/rtf_correlation_table_test.dir/rtf_correlation_table_test.cc.o"
  "CMakeFiles/rtf_correlation_table_test.dir/rtf_correlation_table_test.cc.o.d"
  "rtf_correlation_table_test"
  "rtf_correlation_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtf_correlation_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
