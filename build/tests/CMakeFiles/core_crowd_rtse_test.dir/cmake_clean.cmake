file(REMOVE_RECURSE
  "CMakeFiles/core_crowd_rtse_test.dir/core_crowd_rtse_test.cc.o"
  "CMakeFiles/core_crowd_rtse_test.dir/core_crowd_rtse_test.cc.o.d"
  "core_crowd_rtse_test"
  "core_crowd_rtse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_crowd_rtse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
