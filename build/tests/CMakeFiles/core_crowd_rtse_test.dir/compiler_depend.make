# Empty compiler generated dependencies file for core_crowd_rtse_test.
# This may be replaced when dependencies are built.
