file(REMOVE_RECURSE
  "CMakeFiles/traffic_simulator_test.dir/traffic_simulator_test.cc.o"
  "CMakeFiles/traffic_simulator_test.dir/traffic_simulator_test.cc.o.d"
  "traffic_simulator_test"
  "traffic_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
