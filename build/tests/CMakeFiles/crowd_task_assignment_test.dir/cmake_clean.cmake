file(REMOVE_RECURSE
  "CMakeFiles/crowd_task_assignment_test.dir/crowd_task_assignment_test.cc.o"
  "CMakeFiles/crowd_task_assignment_test.dir/crowd_task_assignment_test.cc.o.d"
  "crowd_task_assignment_test"
  "crowd_task_assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_task_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
