# Empty compiler generated dependencies file for crowd_task_assignment_test.
# This may be replaced when dependencies are built.
