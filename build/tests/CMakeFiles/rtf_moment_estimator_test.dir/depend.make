# Empty dependencies file for rtf_moment_estimator_test.
# This may be replaced when dependencies are built.
