file(REMOVE_RECURSE
  "CMakeFiles/baselines_lasso_test.dir/baselines_lasso_test.cc.o"
  "CMakeFiles/baselines_lasso_test.dir/baselines_lasso_test.cc.o.d"
  "baselines_lasso_test"
  "baselines_lasso_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_lasso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
