# Empty dependencies file for baselines_lasso_test.
# This may be replaced when dependencies are built.
