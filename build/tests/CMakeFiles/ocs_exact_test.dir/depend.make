# Empty dependencies file for ocs_exact_test.
# This may be replaced when dependencies are built.
