file(REMOVE_RECURSE
  "CMakeFiles/ocs_exact_test.dir/ocs_exact_test.cc.o"
  "CMakeFiles/ocs_exact_test.dir/ocs_exact_test.cc.o.d"
  "ocs_exact_test"
  "ocs_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
