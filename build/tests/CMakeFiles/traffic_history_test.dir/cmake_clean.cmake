file(REMOVE_RECURSE
  "CMakeFiles/traffic_history_test.dir/traffic_history_test.cc.o"
  "CMakeFiles/traffic_history_test.dir/traffic_history_test.cc.o.d"
  "traffic_history_test"
  "traffic_history_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
