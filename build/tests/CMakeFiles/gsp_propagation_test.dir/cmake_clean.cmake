file(REMOVE_RECURSE
  "CMakeFiles/gsp_propagation_test.dir/gsp_propagation_test.cc.o"
  "CMakeFiles/gsp_propagation_test.dir/gsp_propagation_test.cc.o.d"
  "gsp_propagation_test"
  "gsp_propagation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsp_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
