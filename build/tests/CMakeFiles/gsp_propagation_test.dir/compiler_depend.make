# Empty compiler generated dependencies file for gsp_propagation_test.
# This may be replaced when dependencies are built.
