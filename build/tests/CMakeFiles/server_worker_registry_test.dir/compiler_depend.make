# Empty compiler generated dependencies file for server_worker_registry_test.
# This may be replaced when dependencies are built.
