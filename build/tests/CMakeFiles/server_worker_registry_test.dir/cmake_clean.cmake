file(REMOVE_RECURSE
  "CMakeFiles/server_worker_registry_test.dir/server_worker_registry_test.cc.o"
  "CMakeFiles/server_worker_registry_test.dir/server_worker_registry_test.cc.o.d"
  "server_worker_registry_test"
  "server_worker_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_worker_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
