# Empty dependencies file for math_linear_solver_test.
# This may be replaced when dependencies are built.
