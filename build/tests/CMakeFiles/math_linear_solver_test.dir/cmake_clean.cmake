file(REMOVE_RECURSE
  "CMakeFiles/math_linear_solver_test.dir/math_linear_solver_test.cc.o"
  "CMakeFiles/math_linear_solver_test.dir/math_linear_solver_test.cc.o.d"
  "math_linear_solver_test"
  "math_linear_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_linear_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
