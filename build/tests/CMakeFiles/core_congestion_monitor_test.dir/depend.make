# Empty dependencies file for core_congestion_monitor_test.
# This may be replaced when dependencies are built.
