file(REMOVE_RECURSE
  "CMakeFiles/ocs_greedy_test.dir/ocs_greedy_test.cc.o"
  "CMakeFiles/ocs_greedy_test.dir/ocs_greedy_test.cc.o.d"
  "ocs_greedy_test"
  "ocs_greedy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
