# Empty dependencies file for ocs_greedy_test.
# This may be replaced when dependencies are built.
