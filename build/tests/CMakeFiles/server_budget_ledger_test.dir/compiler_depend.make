# Empty compiler generated dependencies file for server_budget_ledger_test.
# This may be replaced when dependencies are built.
