file(REMOVE_RECURSE
  "CMakeFiles/server_budget_ledger_test.dir/server_budget_ledger_test.cc.o"
  "CMakeFiles/server_budget_ledger_test.dir/server_budget_ledger_test.cc.o.d"
  "server_budget_ledger_test"
  "server_budget_ledger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_budget_ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
