# Empty dependencies file for traffic_history_io_test.
# This may be replaced when dependencies are built.
