file(REMOVE_RECURSE
  "CMakeFiles/graph_dijkstra_test.dir/graph_dijkstra_test.cc.o"
  "CMakeFiles/graph_dijkstra_test.dir/graph_dijkstra_test.cc.o.d"
  "graph_dijkstra_test"
  "graph_dijkstra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
