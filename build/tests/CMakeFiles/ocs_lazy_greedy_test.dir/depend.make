# Empty dependencies file for ocs_lazy_greedy_test.
# This may be replaced when dependencies are built.
