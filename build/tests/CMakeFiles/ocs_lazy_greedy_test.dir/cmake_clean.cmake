file(REMOVE_RECURSE
  "CMakeFiles/ocs_lazy_greedy_test.dir/ocs_lazy_greedy_test.cc.o"
  "CMakeFiles/ocs_lazy_greedy_test.dir/ocs_lazy_greedy_test.cc.o.d"
  "ocs_lazy_greedy_test"
  "ocs_lazy_greedy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocs_lazy_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
