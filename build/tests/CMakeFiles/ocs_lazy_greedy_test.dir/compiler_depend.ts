# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ocs_lazy_greedy_test.
