// traffic_console: a file-based command-line front end over the library,
// mirroring how an operator would run the offline and online stages as
// separate jobs.
//
//   traffic_console generate-network <roads> <seed> <out.edges>
//   traffic_console simulate-history <net.edges> <days> <seed> <out.hist>
//   traffic_console train-model      <net.edges> <in.hist> <out.rtf>
//   traffic_console export-day       <in.hist> <day> <out.csv>
//   traffic_console serve-demo       <net.edges> <in.hist> <queries> <budget>
//   traffic_console --scenario       <pack.scn> [single|sharded|both] [seed]
//
// With no arguments it runs the full pipeline in a temp directory as a
// self-demo.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/crowd_rtse.h"
#include "core/theta_tuner.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "rtf/moment_estimator.h"
#include "rtf/rtf_serialization.h"
#include "scenario/pack.h"
#include "scenario/runner.h"
#include "server/budget_ledger.h"
#include "server/query_engine.h"
#include "server/worker_registry.h"
#include "traffic/history_io.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdrtse;  // NOLINT — example brevity

namespace {

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int GenerateNetwork(int roads, uint64_t seed, const std::string& out) {
  util::Rng rng(seed);
  graph::RoadNetworkOptions options;
  options.num_roads = roads;
  const auto network = graph::RoadNetwork(options, rng);
  if (!network.ok()) return Fail(network.status());
  if (auto s = graph::WriteEdgeListFile(out, *network); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s: %d roads, %d adjacencies\n", out.c_str(),
              network->num_roads(), network->num_edges());
  return 0;
}

int SimulateHistory(const std::string& net_path, int days, uint64_t seed,
                    const std::string& out) {
  const auto network = graph::ReadEdgeListFile(net_path);
  if (!network.ok()) return Fail(network.status());
  traffic::TrafficModelOptions options;
  options.num_days = days;
  const traffic::TrafficSimulator simulator(*network, options, seed);
  const traffic::HistoryStore history = simulator.GenerateHistory();
  if (auto s = traffic::HistorySerializer::SaveToFile(history, out);
      !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s: %zu records (%d days x %d slots x %d roads)\n",
              out.c_str(), history.num_records(), history.num_days(),
              history.num_slots(), history.num_roads());
  return 0;
}

int TrainModel(const std::string& net_path, const std::string& hist_path,
               const std::string& out) {
  const auto network = graph::ReadEdgeListFile(net_path);
  if (!network.ok()) return Fail(network.status());
  const auto history = traffic::HistorySerializer::LoadFromFile(hist_path);
  if (!history.ok()) return Fail(history.status());
  const auto model = rtf::EstimateByMoments(*network, *history, {});
  if (!model.ok()) return Fail(model.status());
  if (auto s = rtf::RtfSerializer::SaveToFile(*model, out); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s: RTF over %d roads x %d slots\n", out.c_str(),
              model->num_roads(), model->num_slots());
  return 0;
}

int ExportDay(const std::string& hist_path, int day,
              const std::string& out) {
  const auto history = traffic::HistorySerializer::LoadFromFile(hist_path);
  if (!history.ok()) return Fail(history.status());
  const auto records = traffic::ExtractDay(*history, day);
  if (records.empty()) {
    return Fail(util::Status::OutOfRange("day out of range"));
  }
  std::ofstream file(out, std::ios::trunc);
  if (!file) return Fail(util::Status::IoError("cannot open " + out));
  file << traffic::RecordsToCsv(records);
  std::printf("wrote %s: %zu records of day %d\n", out.c_str(),
              records.size(), day);
  return 0;
}

int ServeDemo(const std::string& net_path, const std::string& hist_path,
              int num_queries, int budget, uint64_t world_seed) {
  const auto network = graph::ReadEdgeListFile(net_path);
  if (!network.ok()) return Fail(network.status());
  const auto history = traffic::HistorySerializer::LoadFromFile(hist_path);
  if (!history.ok()) return Fail(history.status());

  auto system = core::CrowdRtse::BuildOffline(*network, *history, {});
  if (!system.ok()) return Fail(system.status());

  // Today's "real" traffic: one more simulated day beyond the history.
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = history->num_days();
  const traffic::TrafficSimulator simulator(*network, traffic_options,
                                            world_seed);
  const traffic::DayMatrix today =
      simulator.GenerateEvaluationDay();

  server::WorkerRegistryOptions registry_options;
  registry_options.num_workers = network->num_roads() * 3;
  server::WorkerRegistry registry(*network, registry_options, 5);
  server::BudgetLedger ledger(/*campaign_budget=*/budget * num_queries,
                              /*per_query_cap=*/budget);
  const crowd::CostModel costs =
      crowd::CostModel::Constant(network->num_roads(), 2);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  server::QueryEngine engine(*system, registry, ledger, costs, crowd_sim);

  util::Rng rng(17);
  for (int q = 0; q < num_queries; ++q) {
    server::QueryRequest request;
    request.slot = rng.UniformInt(0, traffic::kSlotsPerDay - 1);
    for (int pick : rng.SampleWithoutReplacement(network->num_roads(), 8)) {
      request.queried.push_back(pick);
    }
    const auto response = engine.Serve(request, today);
    if (!response.ok()) return Fail(response.status());
    const auto quality = eval::ComputeQuality(
        [&] {
          std::vector<double> all(
              static_cast<size_t>(network->num_roads()), 0.0);
          for (size_t i = 0; i < request.queried.size(); ++i) {
            all[static_cast<size_t>(request.queried[i])] =
                response->queried_speeds[i];
          }
          return all;
        }(),
        today.SlotSpeeds(request.slot), request.queried);
    std::printf(
        "query %lld  slot %3d  probed %2zu roads  paid %2d  MAPE %.3f  "
        "(ocs %.1fms, gsp %.1fms)\n",
        static_cast<long long>(response->query_id), request.slot,
        response->probed_roads.size(), response->paid, quality->mape,
        response->ocs_millis, response->gsp_millis);
    registry.AdvanceSlot();
  }
  std::printf("%s\n%s\n", engine.stats().Report().c_str(),
              ledger.Report().c_str());
  return 0;
}

int TuneThetaCommand(const std::string& net_path,
                     const std::string& hist_path, int budget) {
  const auto network = graph::ReadEdgeListFile(net_path);
  if (!network.ok()) return Fail(network.status());
  const auto history = traffic::HistorySerializer::LoadFromFile(hist_path);
  if (!history.ok()) return Fail(history.status());
  core::ThetaTunerOptions options;
  options.budget = budget;
  options.query_size = std::min(50, network->num_roads() / 2);
  options.validation_days = std::min(3, history->num_days() / 3);
  if (options.validation_days < 1) {
    return Fail(util::Status::FailedPrecondition(
        "history too short to hold out validation days"));
  }
  const crowd::CostModel costs =
      crowd::CostModel::Constant(network->num_roads(), 2);
  const auto tuned = core::TuneTheta(*network, *history, costs, options);
  if (!tuned.ok()) return Fail(tuned.status());
  for (const core::ThetaScore& score : tuned->scores) {
    std::printf("theta %.2f -> validation MAPE %.4f%s\n", score.theta,
                score.mape,
                score.theta == tuned->best_theta ? "   <-- tuned" : "");
  }
  return 0;
}

// Replays a declarative .scn stress pack (scenarios/ in the repo) against
// the serving stack and prints the per-phase envelope verdicts. The same
// packs run in CI via tools/scenario_runner; this is the operator's view.
int RunScenarioPack(const std::string& pack_path, const std::string& engine,
                    uint64_t seed) {
  const auto pack = scenario::LoadPackFile(pack_path);
  if (!pack.ok()) return Fail(pack.status());
  std::vector<scenario::RunnerOptions::EngineKind> kinds;
  if (engine == "single" || engine == "both") {
    kinds.push_back(scenario::RunnerOptions::EngineKind::kSingle);
  }
  if (engine == "sharded" || engine == "both") {
    kinds.push_back(scenario::RunnerOptions::EngineKind::kSharded);
  }
  if (kinds.empty()) {
    return Fail(util::Status::InvalidArgument(
        "engine must be single, sharded, or both; got '" + engine + "'"));
  }
  bool all_passed = true;
  for (const auto kind : kinds) {
    scenario::RunnerOptions options;
    options.engine = kind;
    options.seed = seed;
    const auto report = scenario::RunScenario(*pack, options);
    if (!report.ok()) return Fail(report.status());
    std::printf("%s", report->Summary().c_str());
    all_passed = all_passed && report->AllPassed();
  }
  return all_passed ? 0 : 1;
}

int SelfDemo() {
  const std::string dir = "/tmp/crowdrtse_console";
  (void)std::system(("mkdir -p " + dir).c_str());
  const std::string net = dir + "/city.edges";
  const std::string hist = dir + "/city.hist";
  std::printf("== self demo: generate -> simulate -> train -> serve ==\n");
  if (int rc = GenerateNetwork(180, 42, net); rc != 0) return rc;
  if (int rc = SimulateHistory(net, 10, 7, hist); rc != 0) return rc;
  if (int rc = TrainModel(net, hist, dir + "/city.rtf"); rc != 0) return rc;
  if (int rc = ExportDay(hist, 0, dir + "/day0.csv"); rc != 0) return rc;
  if (int rc = TuneThetaCommand(net, hist, 20); rc != 0) return rc;
  return ServeDemo(net, hist, 5, 12, /*world_seed=*/7);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const auto arg_int = [&](size_t i) {
    return *util::ParseInt(args.at(i));
  };
  if (args.empty()) return SelfDemo();
  const std::string& command = args[0];
  if (command == "generate-network" && args.size() == 4) {
    return GenerateNetwork(arg_int(1),
                           static_cast<uint64_t>(arg_int(2)), args[3]);
  }
  if (command == "simulate-history" && args.size() == 5) {
    return SimulateHistory(args[1], arg_int(2),
                           static_cast<uint64_t>(arg_int(3)), args[4]);
  }
  if (command == "train-model" && args.size() == 4) {
    return TrainModel(args[1], args[2], args[3]);
  }
  if (command == "export-day" && args.size() == 4) {
    return ExportDay(args[1], arg_int(2), args[3]);
  }
  if (command == "tune-theta" && args.size() == 4) {
    return TuneThetaCommand(args[1], args[2], arg_int(3));
  }
  if (command == "serve-demo" && args.size() == 6) {
    return ServeDemo(args[1], args[2], arg_int(3), arg_int(4),
                     static_cast<uint64_t>(arg_int(5)));
  }
  if ((command == "--scenario" || command == "scenario") &&
      args.size() >= 2 && args.size() <= 4) {
    const std::string engine = args.size() >= 3 ? args[2] : "single";
    const uint64_t seed =
        args.size() == 4 ? static_cast<uint64_t>(arg_int(3)) : 0;
    return RunScenarioPack(args[1], engine, seed);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  traffic_console                               (self demo)\n"
               "  traffic_console generate-network R SEED OUT\n"
               "  traffic_console simulate-history NET DAYS SEED OUT\n"
               "  traffic_console train-model NET HIST OUT\n"
               "  traffic_console export-day HIST DAY OUT\n"
               "  traffic_console tune-theta NET HIST BUDGET\n"
               "  traffic_console serve-demo NET HIST QUERIES BUDGET SEED\n"
               "    (SEED must match the simulate-history seed)\n"
               "  traffic_console --scenario PACK [single|sharded|both] "
               "[seed]\n"
               "    (replays a scenarios/*.scn stress pack)\n");
  return 2;
}
