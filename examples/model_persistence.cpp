// Model persistence: the deployment split of the offline/online stages.
//
// An offline job trains the RTF once and writes both the network and the
// model to disk; the online service later loads them back (no history
// needed at serving time) and answers queries immediately. This example
// runs both halves in one process and verifies the round trip bit-exactly.
//
// Build & run:  ./build/examples/model_persistence
#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "gsp/propagation.h"
#include "rtf/moment_estimator.h"
#include "rtf/rtf_serialization.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

using namespace crowdrtse;  // NOLINT — example brevity

int main() {
  const std::string graph_path = "/tmp/crowdrtse_network.edges";
  const std::string model_path = "/tmp/crowdrtse_rtf.bin";

  // ---------------- offline trainer process ----------------------------
  {
    util::Rng rng(77);
    graph::RoadNetworkOptions net_options;
    net_options.num_roads = 150;
    const graph::Graph network = *graph::RoadNetwork(net_options, rng);
    const traffic::TrafficSimulator simulator(network, {}, 13);
    const traffic::HistoryStore history = simulator.GenerateHistory();
    const auto model = rtf::EstimateByMoments(network, history, {});
    if (!model.ok()) return 1;

    if (!graph::WriteEdgeListFile(graph_path, network).ok()) return 1;
    if (!rtf::RtfSerializer::SaveToFile(*model, model_path).ok()) return 1;
    std::printf("offline: trained RTF over %d roads x %d slots, saved to "
                "%s (%zu bytes)\n",
                model->num_roads(), model->num_slots(), model_path.c_str(),
                rtf::RtfSerializer::Serialize(*model).size());
  }

  // ---------------- online serving process -----------------------------
  {
    const auto network = graph::ReadEdgeListFile(graph_path);
    if (!network.ok()) {
      std::printf("failed to load network: %s\n",
                  network.status().ToString().c_str());
      return 1;
    }
    const auto model = rtf::RtfSerializer::LoadFromFile(*network, model_path);
    if (!model.ok()) {
      std::printf("failed to load model: %s\n",
                  model.status().ToString().c_str());
      return 1;
    }
    std::printf("online: loaded network (%d roads) and model (%d slots)\n",
                network->num_roads(), model->num_slots());

    // Serve one propagation straight from the loaded model: three probes
    // reporting heavy congestion on roads 10, 60, 110 at 09:00.
    const int slot = traffic::SlotOfTime(9, 0);
    const std::vector<graph::RoadId> probes{10, 60, 110};
    std::vector<double> speeds;
    for (graph::RoadId r : probes) {
      speeds.push_back(0.5 * model->Mu(slot, r));
    }
    const gsp::SpeedPropagator propagator(*model, {});
    const auto result = propagator.Propagate(slot, probes, speeds);
    if (!result.ok()) return 1;
    std::printf(
        "served a query: GSP converged in %d sweeps; road 11 estimate "
        "%.1f km/h (periodic mean %.1f)\n",
        result->sweeps, result->speeds[11], model->Mu(slot, 11));
  }

  std::remove(graph_path.c_str());
  std::remove(model_path.c_str());
  return 0;
}
