// Quickstart: the whole CrowdRTSE pipeline in one file.
//
//   1. build a road network and simulate a month of traffic history;
//   2. offline stage — train the RTF graphical model from the history;
//   3. online stage — answer a realtime speed query: select crowdsourced
//      roads (OCS), probe them through a simulated crowd, and propagate the
//      probes over the network (GSP);
//   4. compare the estimate against the simulated ground truth.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/crowd_rtse.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdrtse;  // NOLINT — example brevity

int main() {
  // --- 1. a synthetic city: 200 roads, 30 days of 5-minute records -----
  util::Rng rng(2024);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 200;
  const graph::Graph network = *graph::RoadNetwork(net_options, rng);

  traffic::TrafficModelOptions traffic_options;  // defaults: rush hours,
  const traffic::TrafficSimulator simulator(     // incidents, 30 days
      network, traffic_options, /*seed=*/7);
  const traffic::HistoryStore history = simulator.GenerateHistory();
  std::printf("network: %d roads, %d adjacencies; history: %zu records\n",
              network.num_roads(), network.num_edges(),
              history.num_records());

  // --- 2. offline: train the Realtime Traffic-speed Field --------------
  core::CrowdRtseConfig config;
  config.theta = 0.92;  // redundancy threshold for OCS
  auto system = core::CrowdRtse::BuildOffline(network, history, config);
  if (!system.ok()) {
    std::printf("offline build failed: %s\n",
                system.status().ToString().c_str());
    return 1;
  }

  // --- 3. online: one realtime query at 08:15 --------------------------
  const int slot = traffic::SlotOfTime(8, 15);
  const traffic::DayMatrix truth = simulator.GenerateEvaluationDay();

  // The user asks for 12 specific roads; workers are spread over the city.
  std::vector<graph::RoadId> queried;
  for (int pick : util::Rng(5).SampleWithoutReplacement(200, 12)) {
    queried.push_back(pick);
  }
  std::vector<graph::RoadId> worker_roads;
  for (graph::RoadId r = 0; r < network.num_roads(); r += 2) {
    worker_roads.push_back(r);  // workers on every other road
  }
  const crowd::CostModel costs = crowd::CostModel::Constant(200, 2);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(99));

  auto outcome = system->AnswerQuery(slot, queried, worker_roads, costs,
                                     /*budget=*/16, crowd_sim, truth);
  if (!outcome.ok()) {
    std::printf("query failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nOCS selected %zu roads (objective %.2f, paid %d answer units)\n",
      outcome->selection.roads.size(), outcome->selection.objective,
      outcome->round.total_paid);
  std::printf("GSP converged after %d sweeps\n\n", outcome->estimate.sweeps);

  // --- 4. estimate vs ground truth on the queried roads ----------------
  eval::TablePrinter table(
      {"road", "estimate km/h", "truth km/h", "APE", "hops from probe"});
  for (graph::RoadId r : queried) {
    const double estimate =
        outcome->estimate.speeds[static_cast<size_t>(r)];
    const double actual = truth.At(slot, r);
    table.AddRow({std::to_string(r), util::FormatDouble(estimate, 1),
                  util::FormatDouble(actual, 1),
                  util::FormatDouble(
                      eval::AbsolutePercentageError(estimate, actual), 3),
                  std::to_string(
                      outcome->estimate.hops[static_cast<size_t>(r)])});
  }
  table.Print();

  const auto quality = eval::ComputeQuality(
      outcome->estimate.speeds, truth.SlotSpeeds(slot), queried);
  std::printf("\nMAPE %.4f   FER(0.2) %.4f over %zu queried roads\n",
              quality->mape, quality->fer, quality->cases);
  return 0;
}
