// Trajectory field study: ground the crowdsourced probes in actual worker
// movement, the way the paper's gMission experiment collected data
// ("workers are asked to travel along such roads" and their speed is
// computed from localisation).
//
// A fleet of commuters drives random trips through the morning rush; each
// completed road traversal yields one speed answer (length / time + GPS
// noise). For the 08:15 slot we aggregate the answers per road, feed the
// probed roads to GSP, and compare the resulting city-wide estimate with
// (a) direct stationary probing and (b) the periodic forecast.
//
// Build & run:  ./build/examples/trajectory_field_study
#include <cstdio>
#include <map>
#include <vector>

#include "crowd/aggregation.h"
#include "crowd/trajectory.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "graph/generators.h"
#include "graph/road_geometry.h"
#include "gsp/propagation.h"
#include "rtf/moment_estimator.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdrtse;  // NOLINT — example brevity

int main() {
  // --- world ------------------------------------------------------------
  util::Rng rng(2025);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 250;
  const graph::Graph network = *graph::RoadNetwork(net_options, rng);
  util::Rng len_rng(3);
  const auto geometry =
      graph::RoadGeometry::UniformRandom(250, 0.15, 0.9, len_rng);
  if (!geometry.ok()) return 1;
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 15;
  const traffic::TrafficSimulator simulator(network, traffic_options, 7);
  const traffic::HistoryStore history = simulator.GenerateHistory();
  const auto model = rtf::EstimateByMoments(network, history, {});
  if (!model.ok()) return 1;
  const traffic::DayMatrix today = simulator.GenerateEvaluationDay();

  // --- the commuter fleet ------------------------------------------------
  const int slot = traffic::SlotOfTime(8, 15);
  crowd::TrajectorySimOptions trip_options;
  trip_options.measurement_noise_kmh = 1.5;
  crowd::TrajectorySimulator trips(network, *geometry, today, trip_options,
                                   11);
  std::map<graph::RoadId, std::vector<crowd::SpeedAnswer>> answers_by_road;
  int completed_trips = 0;
  int total_answers = 0;
  util::Rng depart_rng(13);
  for (crowd::WorkerId w = 0; w < 150; ++w) {
    // Departures spread over the half hour before the query slot.
    const double depart =
        8.0 * 60.0 - depart_rng.UniformDouble(0.0, 30.0) + 15.0;
    const auto trip = trips.SimulateRandomTrip(w, depart);
    if (!trip.ok() || trip->empty()) continue;
    ++completed_trips;
    for (const crowd::SpeedAnswer& answer :
         trips.AnswersInSlot(*trip, slot)) {
      answers_by_road[answer.road].push_back(answer);
      ++total_answers;
    }
  }
  std::printf(
      "fleet: %d completed trips produced %d in-slot answers covering %zu "
      "roads\n",
      completed_trips, total_answers, answers_by_road.size());

  // --- aggregate per road and propagate ----------------------------------
  std::vector<graph::RoadId> probed_roads;
  std::vector<double> probed_speeds;
  for (const auto& [road, answers] : answers_by_road) {
    const auto fused = crowd::AggregateAnswers(
        answers, crowd::AggregationPolicy::kTrimmedMean);
    if (!fused.ok()) continue;
    probed_roads.push_back(road);
    probed_speeds.push_back(*fused);
  }
  const gsp::SpeedPropagator propagator(*model, {});
  const auto trajectory_estimate =
      propagator.Propagate(slot, probed_roads, probed_speeds);
  if (!trajectory_estimate.ok()) return 1;

  // Reference 1: stationary probing of the same roads at the same cost.
  std::vector<double> direct_speeds;
  util::Rng probe_rng(17);
  for (graph::RoadId r : probed_roads) {
    direct_speeds.push_back(today.At(slot, r) + probe_rng.Normal(0.0, 1.5));
  }
  const auto direct_estimate =
      propagator.Propagate(slot, probed_roads, direct_speeds);
  if (!direct_estimate.ok()) return 1;

  // Reference 2: the periodic forecast.
  std::vector<double> periodic(static_cast<size_t>(network.num_roads()));
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    periodic[static_cast<size_t>(r)] = model->Mu(slot, r);
  }

  // --- city-wide comparison ----------------------------------------------
  std::vector<graph::RoadId> all_roads;
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    all_roads.push_back(r);
  }
  const auto truth_speeds = today.SlotSpeeds(slot);
  eval::TablePrinter table({"probing", "MAPE", "FER(0.2)"});
  for (const auto& [label, estimate] :
       std::vector<std::pair<std::string, const std::vector<double>*>>{
           {"trajectory-derived", &trajectory_estimate->speeds},
           {"stationary probes", &direct_estimate->speeds},
           {"periodic forecast", &periodic}}) {
    const auto quality =
        eval::ComputeQuality(*estimate, truth_speeds, all_roads);
    table.AddRow({label, util::FormatDouble(quality->mape, 4),
                  util::FormatDouble(quality->fer, 4)});
  }
  table.Print();
  std::printf(
      "\n(trajectory-derived probes are slightly noisier than stationary "
      "ones — a traversal averages the road over its crossing time — but "
      "close; both far ahead of the periodic forecast)\n");
  return 0;
}
