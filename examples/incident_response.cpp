// Incident response: the accidental-variance scenario from the paper's
// introduction. A severe accident collapses speeds on a cluster of roads;
// purely periodic estimation (Per) keeps predicting the usual profile and
// misses it, while CrowdRTSE's crowdsourced probes + GSP propagation pick
// the congestion up — including on roads nobody probed.
//
// Build & run:  ./build/examples/incident_response
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/congestion_monitor.h"
#include "core/crowd_rtse.h"
#include "eval/table_printer.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdrtse;  // NOLINT — example brevity

int main() {
  // A city with NO random incidents in its history: the accident below is
  // genuinely unprecedented, so periodicity cannot have learned it.
  util::Rng rng(11);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 250;
  const graph::Graph network = *graph::RoadNetwork(net_options, rng);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.incident_rate_per_road_day = 0.0;
  const traffic::TrafficSimulator simulator(network, traffic_options, 3);
  const traffic::HistoryStore history = simulator.GenerateHistory();

  core::CrowdRtseConfig config;
  auto system = core::CrowdRtse::BuildOffline(network, history, config);
  if (!system.ok()) return 1;

  // --- stage the accident ----------------------------------------------
  // Today at 17:30, road 42 and its neighbourhood collapse to ~25% of the
  // normal speed (crash blocking two lanes; spillover to 1 hop).
  const int slot = traffic::SlotOfTime(17, 30);
  traffic::DayMatrix today = simulator.GenerateEvaluationDay();
  const graph::RoadId crash_road = 42;
  const auto affected = graph::RoadsWithinHops(network, {crash_road}, 1);
  for (graph::RoadId r : affected) {
    const double factor = r == crash_road ? 0.25 : 0.45;
    today.At(slot, r) *= factor;
  }
  std::printf("accident staged on road %d at 17:30; %zu roads affected\n",
              crash_road, affected.size());

  // --- the traffic centre queries the accident district -----------------
  const std::vector<graph::RoadId> queried =
      graph::RoadsWithinHops(network, {crash_road}, 3);
  std::vector<graph::RoadId> worker_roads;
  for (graph::RoadId r = 0; r < network.num_roads(); r += 3) {
    worker_roads.push_back(r);
  }
  const crowd::CostModel costs =
      crowd::CostModel::Constant(network.num_roads(), 3);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(17));
  auto outcome = system->AnswerQuery(slot, queried, worker_roads, costs,
                                     /*budget=*/21, crowd_sim, today);
  if (!outcome.ok()) return 1;

  // --- compare CrowdRTSE vs the periodic forecast -----------------------
  eval::TablePrinter table({"road", "normal km/h", "now km/h",
                            "CrowdRTSE", "Per", "probed?"});
  double crowdrtse_err = 0.0;
  double periodic_err = 0.0;
  for (graph::RoadId r : affected) {
    const double mu = system->model().Mu(slot, r);
    const double now = today.At(slot, r);
    const double est = outcome->estimate.speeds[static_cast<size_t>(r)];
    const bool probed =
        std::find(outcome->selection.roads.begin(),
                  outcome->selection.roads.end(),
                  r) != outcome->selection.roads.end();
    crowdrtse_err += std::abs(est - now);
    periodic_err += std::abs(mu - now);
    table.AddRow({std::to_string(r), util::FormatDouble(mu, 1),
                  util::FormatDouble(now, 1), util::FormatDouble(est, 1),
                  util::FormatDouble(mu, 1), probed ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "\nmean absolute error on the accident cluster: CrowdRTSE %.1f km/h, "
      "periodic forecast %.1f km/h\n",
      crowdrtse_err / static_cast<double>(affected.size()),
      periodic_err / static_cast<double>(affected.size()));

  // --- congestion alarms via the monitor ---------------------------------
  const core::CongestionMonitor monitor(system->model());
  const auto alarms = monitor.Scan(slot, outcome->estimate.speeds,
                                   outcome->estimate.hops);
  if (!alarms.ok()) return 1;
  std::printf("\ncongestion alarms (most severe first):\n");
  for (const core::CongestionAlarm& alarm : *alarms) {
    std::printf(
        "  road %3d  %-9s  %5.1f km/h vs expected %5.1f  (%.0f%%, %d hops "
        "from probe)\n",
        alarm.road, core::CongestionLevelName(alarm.level),
        alarm.estimated_kmh, alarm.expected_kmh, 100.0 * alarm.speed_ratio,
        alarm.hops_from_probe);
  }
  std::printf("(ground truth affected roads:");
  for (graph::RoadId r : affected) std::printf(" %d", r);
  std::printf(")\n");
  return 0;
}
