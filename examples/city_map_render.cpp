// City map rendering: produce an SVG snapshot of what CrowdRTSE believes
// about the city right now — roads coloured by estimated speed vs their
// periodic expectation (green = free flow, red = blocked), probed roads
// ringed in white. Stages an accident so the picture has something to say.
//
// Build & run:  ./build/examples/city_map_render
// Output:       /tmp/crowdrtse_map.svg  (open in any browser)
#include <cstdio>
#include <vector>

#include "core/crowd_rtse.h"
#include "eval/svg_map.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"

using namespace crowdrtse;  // NOLINT — example brevity

int main() {
  // --- world with coordinates -------------------------------------------
  util::Rng rng(321);
  std::vector<std::pair<double, double>> positions;
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 400;
  const graph::Graph network =
      *graph::RoadNetwork(net_options, rng, &positions);
  traffic::TrafficModelOptions traffic_options;
  traffic_options.num_days = 12;
  traffic_options.incident_rate_per_road_day = 0.0;
  const traffic::TrafficSimulator simulator(network, traffic_options, 5);
  const traffic::HistoryStore history = simulator.GenerateHistory();
  auto system = core::CrowdRtse::BuildOffline(network, history, {});
  if (!system.ok()) return 1;

  // --- today, with a staged accident near the map centre ------------------
  const int slot = traffic::SlotOfTime(17, 45);
  traffic::DayMatrix today = simulator.GenerateEvaluationDay();
  graph::RoadId crash = 0;
  double best = 1e9;
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    const double dx = positions[static_cast<size_t>(r)].first - 0.5;
    const double dy = positions[static_cast<size_t>(r)].second - 0.5;
    if (dx * dx + dy * dy < best) {
      best = dx * dx + dy * dy;
      crash = r;
    }
  }
  for (graph::RoadId r : graph::RoadsWithinHops(network, {crash}, 2)) {
    today.At(slot, r) *= (r == crash ? 0.2 : 0.45);
  }

  // --- query the whole city ------------------------------------------------
  const crowd::CostModel costs =
      crowd::CostModel::Constant(network.num_roads(), 2);
  crowd::CrowdSimulator crowd_sim({}, util::Rng(9));
  std::vector<graph::RoadId> queried;
  for (graph::RoadId r = 0; r < network.num_roads(); r += 4) {
    queried.push_back(r);
  }
  std::vector<graph::RoadId> workers;
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    workers.push_back(r);
  }
  auto outcome = system->AnswerQuery(slot, queried, workers, costs,
                                     /*budget=*/60, crowd_sim, today);
  if (!outcome.ok()) return 1;

  // --- render ----------------------------------------------------------------
  std::vector<double> ratio(static_cast<size_t>(network.num_roads()), 1.0);
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    const double expected = system->model().Mu(slot, r);
    if (expected > 0.0) {
      ratio[static_cast<size_t>(r)] =
          outcome->estimate.speeds[static_cast<size_t>(r)] / expected;
    }
  }
  eval::SvgMapOptions map_options;
  map_options.title =
      "CrowdRTSE 17:45 — estimated speed vs periodic expectation "
      "(white ring = probed road)";
  const std::string path = "/tmp/crowdrtse_map.svg";
  const auto status = eval::WriteSvgMap(
      path, network, positions, ratio, outcome->selection.roads,
      map_options);
  if (!status.ok()) {
    std::printf("render failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s (%d roads, %zu probed; accident staged on road %d — look "
      "for the red cluster at the map centre)\n",
      path.c_str(), network.num_roads(), outcome->selection.roads.size(),
      crash);
  return 0;
}
