// Campaign planner: how much crowdsourcing budget does a city need?
//
// A dispatcher planning a monitoring campaign sweeps the per-query budget
// and measures, on held-out days, the estimation quality bought by each
// extra answer-unit — once with CrowdRTSE's Hybrid-Greedy selection and
// once with naive random selection. The printed table is the "knee curve"
// used to pick the cheapest budget meeting a MAPE target.
//
// Build & run:  ./build/examples/campaign_planner
#include <cstdio>
#include <vector>

#include "core/crowd_rtse.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "graph/generators.h"
#include "ocs/greedy_selectors.h"
#include "traffic/traffic_simulator.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdrtse;  // NOLINT — example brevity

namespace {

constexpr double kTargetMape = 0.05;

}  // namespace

int main() {
  util::Rng rng(31);
  graph::RoadNetworkOptions net_options;
  net_options.num_roads = 300;
  const graph::Graph network = *graph::RoadNetwork(net_options, rng);
  const traffic::TrafficSimulator simulator(network, {}, 5);
  const traffic::HistoryStore history = simulator.GenerateHistory();

  core::CrowdRtseConfig config;
  auto system = core::CrowdRtse::BuildOffline(network, history, config);
  if (!system.ok()) return 1;

  // The campaign covers the whole downtown: 60 queried roads; workers are
  // wherever they happen to be (uniform over the city); answers cost 1..5
  // units depending on the road.
  std::vector<graph::RoadId> queried;
  for (int pick : util::Rng(8).SampleWithoutReplacement(300, 60)) {
    queried.push_back(pick);
  }
  util::Rng cost_rng(9);
  const auto costs =
      crowd::CostModel::UniformRandom(network.num_roads(), 1, 5, cost_rng);
  std::vector<graph::RoadId> worker_roads;
  for (graph::RoadId r = 0; r < network.num_roads(); ++r) {
    worker_roads.push_back(r);
  }

  eval::TablePrinter table({"budget", "MAPE hybrid", "MAPE random",
                            "probes hybrid", "meets 5% target"});
  int knee_budget = -1;
  for (int budget : {0, 10, 20, 40, 60, 90, 120}) {
    eval::QualityAccumulator hybrid_acc;
    eval::QualityAccumulator random_acc;
    size_t probes = 0;
    // Average over three held-out evaluation days at the evening rush.
    for (int day = 0; day < 3; ++day) {
      const traffic::DayMatrix truth = simulator.GenerateEvaluationDay(day);
      const int slot = traffic::SlotOfTime(18, 0);
      crowd::CrowdSimulator crowd_sim({}, util::Rng(1000 + day));
      auto outcome =
          system->AnswerQuery(slot, queried, worker_roads, *costs, budget,
                              crowd_sim, truth);
      if (!outcome.ok()) return 1;
      probes = outcome->selection.roads.size();
      hybrid_acc.Add(*eval::ComputeQuality(outcome->estimate.speeds,
                                           truth.SlotSpeeds(slot), queried));

      // Random selection through the same pipeline, same budget.
      auto corr = system->CorrelationsFor(slot);
      auto problem = ocs::OcsProblem::Create(
          **corr, queried, system->SigmaWeights(slot, queried), worker_roads,
          *costs, budget, config.theta);
      util::Rng pick_rng(2000 + day);
      const ocs::OcsSolution random = ocs::RandomSelect(*problem, pick_rng);
      crowd::CrowdSimulator random_sim({}, util::Rng(1000 + day));
      auto round = random_sim.Probe(random.roads, *costs, truth, slot);
      std::vector<double> probed;
      for (const auto& p : round->probes) probed.push_back(p.probed_kmh);
      auto estimate = system->Estimate(slot, random.roads, probed);
      random_acc.Add(*eval::ComputeQuality(estimate->speeds,
                                           truth.SlotSpeeds(slot), queried));
    }
    const double hybrid_mape = hybrid_acc.Mean().mape;
    if (knee_budget < 0 && hybrid_mape <= kTargetMape) knee_budget = budget;
    table.AddRow({std::to_string(budget),
                  util::FormatDouble(hybrid_mape, 4),
                  util::FormatDouble(random_acc.Mean().mape, 4),
                  std::to_string(probes),
                  hybrid_mape <= kTargetMape ? "yes" : "no"});
  }
  table.Print();
  if (knee_budget >= 0) {
    std::printf(
        "\nrecommended campaign budget: %d answer-units per query (first "
        "budget meeting MAPE <= %.2f with Hybrid-Greedy selection)\n",
        knee_budget, kTargetMape);
  } else {
    std::printf("\nno tested budget met the %.2f MAPE target\n", kTargetMape);
  }
  return 0;
}
